//! Formatters that print the paper's tables from grid results.

use crate::harness::GridResult;
use tsda_augment::taxonomy::PaperTechnique;
use tsda_core::characteristics::DatasetCharacteristics;

/// Table I: which role each baseline algorithm plays.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("TABLE I: Task accomplished by each baseline algorithm\n");
    out.push_str(&format!("{:<15} {:<18} {:<10}\n", "Algorithm", "Feature-Extractor", "Classifier"));
    out.push_str(&format!("{:<15} {:<18} {:<10}\n", "ROCKET", "X", ""));
    out.push_str(&format!("{:<15} {:<18} {:<10}\n", "InceptionTime", "X", "X"));
    out
}

/// Table II: methodology family of each baseline.
pub fn table2() -> String {
    let mut out = String::new();
    out.push_str("TABLE II: Methodology of each baseline algorithm\n");
    out.push_str(&format!(
        "{:<15} {:<10} {:<15} {:<13}\n",
        "Algorithm", "DL-based", "Ensemble-based", "Kernel-based"
    ));
    out.push_str(&format!("{:<15} {:<10} {:<15} {:<13}\n", "ROCKET + RR", "", "", "X"));
    out.push_str(&format!("{:<15} {:<10} {:<15} {:<13}\n", "InceptionTime", "X", "X", ""));
    out
}

/// Table III: one row per dataset of characteristics.
pub fn table3(rows: &[(String, DatasetCharacteristics)]) -> String {
    let mut out = String::new();
    out.push_str("TABLE III: Characteristics of the multivariate imbalanced datasets\n");
    out.push_str(&format!(
        "{:<23} {:>9} {:>10} {:>5} {:>7} {:>10} {:>9} {:>9} {:>13} {:>10}\n",
        "Dataset",
        "n_classes",
        "Train_size",
        "Dim",
        "Length",
        "Var_train",
        "Var_test",
        "Im_ratio",
        "d_train_test",
        "prop_miss"
    ));
    for (name, c) in rows {
        out.push_str(&format!(
            "{:<23} {:>9} {:>10} {:>5} {:>7} {:>10.2} {:>9.2} {:>9.2} {:>13.2} {:>10.2}\n",
            name,
            c.n_classes,
            c.train_size,
            c.dim,
            c.length,
            c.var_train,
            c.var_test,
            c.imbalance_degree,
            c.train_test_distance,
            c.missing_proportion
        ));
    }
    out
}

/// Tables IV/V: accuracy per dataset × technique plus relative
/// improvement, with the average improvement footer the paper reports.
pub fn accuracy_table(title: &str, model_label: &str, rows: &[GridResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<23} {:>9}", "Dataset", model_label));
    for t in PaperTechnique::ALL {
        out.push_str(&format!(" {:>11}", t.label()));
    }
    out.push_str(&format!(" {:>14}\n", "Improvement(%)"));
    for r in rows {
        out.push_str(&format!("{:<23} {:>9.2}", r.dataset, r.baseline));
        for (_, acc) in &r.technique_acc {
            out.push_str(&format!(" {:>11.2}", acc));
        }
        out.push_str(&format!(" {:>14.2}\n", r.improvement_pct));
    }
    let avg: f64 = tsda_core::math::sum_stable(rows.iter().map(|r| r.improvement_pct))
        / rows.len().max(1) as f64;
    out.push_str(&format!("{:<23} {:>9}", "Average Improvement", "-"));
    for _ in PaperTechnique::ALL {
        out.push_str(&format!(" {:>11}", "-"));
    }
    out.push_str(&format!(" {:>14.2}\n", avg));
    out
}

/// Table VI: count of datasets on which each technique group improves
/// over the baseline, per model. Noise counts if *any* of its three
/// levels improves.
pub fn table6(rocket: &[GridResult], inception: &[GridResult]) -> String {
    let count = |rows: &[GridResult], group: &str| -> usize {
        rows.iter()
            .filter(|r| {
                PaperTechnique::ALL.iter().any(|t| {
                    t.table6_group() == group
                        && r.technique_acc
                            .iter()
                            .find(|(name, _)| name == t.label())
                            .is_some_and(|(_, acc)| *acc > r.baseline)
                })
            })
            .count()
    };
    let mut out = String::new();
    out.push_str("TABLE VI: Count of improvement occurrences over baseline\n");
    out.push_str(&format!(
        "{:<24} {:>8} {:>15}\n",
        "Augmentation Technique", "ROCKET", "InceptionTime"
    ));
    for group in ["SMOTE", "TimeGAN", "Noise"] {
        out.push_str(&format!(
            "{:<24} {:>8} {:>15}\n",
            group,
            count(rocket, group),
            count(inception, group)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row(name: &str, baseline: f64, accs: [f64; 5]) -> GridResult {
        GridResult {
            dataset: name.into(),
            baseline,
            technique_acc: PaperTechnique::ALL
                .iter()
                .zip(accs)
                .map(|(t, a)| (t.label().to_string(), a))
                .collect(),
            improvement_pct: {
                let best = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (best - baseline) / baseline * 100.0
            },
        }
    }

    #[test]
    fn table1_and_2_mention_both_models() {
        assert!(table1().contains("ROCKET"));
        assert!(table2().contains("InceptionTime"));
        assert!(table2().contains("Kernel-based"));
    }

    #[test]
    fn accuracy_table_includes_average_footer() {
        let rows = vec![
            fake_row("A", 80.0, [81.0, 79.0, 78.0, 82.0, 80.5]),
            fake_row("B", 90.0, [89.0, 88.0, 87.0, 89.5, 89.9]),
        ];
        let text = accuracy_table("TABLE IV", "ROCKET", &rows);
        assert!(text.contains("Average Improvement"));
        // A improves by 2.5%, B degrades by −0.11%; average ≈ 1.19.
        assert!(text.contains("1.19") || text.contains("1.20"), "{text}");
    }

    #[test]
    fn table6_counts_noise_as_any_level() {
        // Only noise_5 improves on A; noise counts once.
        let rocket = vec![fake_row("A", 80.0, [79.0, 79.5, 80.5, 79.0, 79.0])];
        let inception = vec![fake_row("A", 80.0, [79.0, 79.0, 79.0, 81.0, 82.0])];
        let text = table6(&rocket, &inception);
        let lines: Vec<&str> = text.lines().collect();
        let noise_line = lines.iter().find(|l| l.starts_with("Noise")).unwrap();
        assert!(noise_line.contains('1'), "{noise_line}");
        let smote_line = lines.iter().find(|l| l.starts_with("SMOTE")).unwrap();
        // SMOTE improves for inception only.
        let cols: Vec<&str> = smote_line.split_whitespace().collect();
        assert_eq!(cols[1], "0");
        assert_eq!(cols[2], "1");
    }

    #[test]
    fn table3_formats_all_columns() {
        let c = DatasetCharacteristics {
            n_classes: 4,
            train_size: 100,
            dim: 3,
            length: 50,
            var_train: 0.15,
            var_test: 0.16,
            imbalance_degree: 2.0,
            train_test_distance: 1.5,
            missing_proportion: 0.0,
        };
        let text = table3(&[("Toy".into(), c)]);
        assert!(text.contains("Toy"));
        assert!(text.contains("Im_ratio"));
    }
}
