//! Reproduce Table V: InceptionTime accuracy per dataset × augmentation
//! plus the best-technique relative improvement.
//!
//! Usage:
//!   `table5_inceptiontime [--paper-scale] [--seed N] [--runs N] [--datasets A,B]`

use tsda_bench::harness::{parse_datasets, run_grid, GridConfig, ModelKind};
use tsda_bench::report::save_results;
use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_bench::tables::accuracy_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = ScaleProfile::from_args(&args);
    let (seed, runs) = parse_seed_runs(&args, if profile == ScaleProfile::Paper { 5 } else { 2 });
    let cfg = GridConfig {
        profile,
        seed,
        runs,
        model: ModelKind::InceptionTime,
        datasets: parse_datasets(&args),
    };
    eprintln!(
        "Table V grid: scale={}, seed={seed}, runs={runs}",
        profile.label()
    );
    let mut log = |msg: &str| eprintln!("{msg}");
    let rows = run_grid(&cfg, &mut log);
    print!(
        "{}",
        accuracy_table(
            "TABLE V: Accuracy for InceptionTime baseline model, and relative improvement",
            "InT",
            &rows
        )
    );
    match save_results("table5_inceptiontime", &rows) {
        Ok(p) => eprintln!("results saved to {}", p.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
}
