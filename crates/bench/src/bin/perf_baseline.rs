//! Performance baseline for the parallel compute layer: times the hot
//! paths the GEMM/pool rework targets, at CI scale, and writes
//! `BENCH_perf.json` (op, size, ns/iter, threads) plus the headline
//! speedups of the lowered kernels over the retained reference
//! implementations.
//!
//! ```text
//! cargo run --release -p tsda-bench --bin perf_baseline [--out BENCH_perf.json]
//! ```
//!
//! Thread count comes from the usual knob (`TSDA_THREADS`, default:
//! available parallelism); the speedup figures compare the GEMM-lowered
//! kernels against the scalar seed implementations on the same machine
//! in the same process.

use serde::Serialize;
use std::time::Instant;
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::{dtw_distance_matrix, Classifier};
use tsda_core::parallel::num_threads;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};
use tsda_linalg::Matrix;
use tsda_neuro::layers::{Conv1d, Layer};
use tsda_neuro::tensor::Tensor;
use tsda_signal::dtw::DtwOptions;

#[derive(Serialize)]
struct Row {
    op: String,
    size: String,
    ns_per_iter: f64,
    threads: usize,
}

#[derive(Serialize)]
struct Speedups {
    conv1d_forward: f64,
    matmul_256: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    rows: Vec<Row>,
    speedup: Speedups,
}

/// Best-of-3 samples, each long enough to dominate timer noise.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut iters = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed.as_millis() >= 40 || iters >= 1 << 20 {
                best = best.min(elapsed.as_nanos() as f64 / f64::from(iters));
                break;
            }
            iters *= 2;
        }
    }
    best
}

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = seeded(seed);
    let n: usize = shape.iter().product();
    Tensor::from_flat(shape, (0..n).map(|_| normal(&mut rng, 0.0, 1.0) as f32).collect())
}

fn random_dataset(n: usize, dims: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::empty(2);
    for i in 0..n {
        let dims: Vec<Vec<f64>> = (0..dims)
            .map(|_| (0..len).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        ds.push(Mts::from_dims(dims), i % 2);
    }
    ds
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let threads = num_threads();
    let mut rows = Vec::new();
    let push = |rows: &mut Vec<Row>, op: &str, size: &str, ns: f64| {
        println!("{op:<28} {size:<24} {ns:>14.0} ns/iter  ({threads} threads)");
        rows.push(Row { op: op.to_string(), size: size.to_string(), ns_per_iter: ns, threads });
    };

    // Conv1d forward/backward: InceptionTime-module scale, batch 16.
    let mut rng = seeded(11);
    let mut conv = Conv1d::new(8, 16, 9, true, &mut rng);
    let x = random_tensor(&[16, 8, 128], 12);
    let conv_size = "b16 c8->16 k9 t128";
    let fwd_gemm = time_ns(|| {
        std::hint::black_box(conv.forward(&x, true));
    });
    push(&mut rows, "conv1d_forward_gemm", conv_size, fwd_gemm);
    let fwd_ref = time_ns(|| {
        std::hint::black_box(conv.forward_reference(&x));
    });
    push(&mut rows, "conv1d_forward_reference", conv_size, fwd_ref);
    let gout = random_tensor(&[16, 16, 128], 13);
    conv.forward(&x, true);
    let bwd_gemm = time_ns(|| {
        std::hint::black_box(conv.backward(&gout));
    });
    push(&mut rows, "conv1d_backward_gemm", conv_size, bwd_gemm);

    // Dense matmul, tiled-parallel vs the seed triple loop.
    let a = Matrix::from_vec(256, 256, {
        let mut rng = seeded(14);
        (0..256 * 256).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
    });
    let b = Matrix::from_vec(256, 256, {
        let mut rng = seeded(15);
        (0..256 * 256).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
    });
    let mm_tiled = time_ns(|| {
        std::hint::black_box(a.matmul(&b));
    });
    push(&mut rows, "matmul_tiled", "256x256x256", mm_tiled);
    let mm_naive = time_ns(|| {
        std::hint::black_box(a.matmul_naive(&b));
    });
    push(&mut rows, "matmul_naive", "256x256x256", mm_naive);

    // ROCKET transform at the CI profile's scale.
    let ds = random_dataset(32, 3, 128, 16);
    let mut rocket = Rocket::new(RocketConfig { n_kernels: 300, ..RocketConfig::default() });
    rocket.fit(&ds, None, &mut seeded(17));
    let rocket_ns = time_ns(|| {
        std::hint::black_box(rocket.transform(&ds));
    });
    push(&mut rows, "rocket_transform", "32 series x 300 kernels", rocket_ns);

    // Pairwise banded DTW distance matrix.
    let queries = random_dataset(40, 2, 64, 18);
    let dtw_ns = time_ns(|| {
        std::hint::black_box(dtw_distance_matrix(
            &queries,
            &queries,
            DtwOptions { band_fraction: Some(0.1) },
        ));
    });
    push(&mut rows, "dtw_matrix", "40x40 len 64 band 0.1", dtw_ns);

    let report = Report {
        threads,
        speedup: Speedups {
            conv1d_forward: fwd_ref / fwd_gemm,
            matmul_256: mm_naive / mm_tiled,
        },
        rows,
    };
    println!(
        "\nspeedups: conv1d_forward {:.2}x, matmul_256 {:.2}x",
        report.speedup.conv1d_forward, report.speedup.matmul_256
    );
    let json = serde_json::to_string_pretty(&report).expect("serialise perf report");
    std::fs::write(&out_path, json + "\n").expect("write perf report");
    println!("wrote {out_path}");
}
