//! Performance baseline — and regression contract — for the compute
//! layer: times the hot paths the SIMD/GEMM rework targets, at CI
//! scale, and writes `BENCH_perf.json` (op, size, ns/iter, threads)
//! plus the headline speedups of the lowered kernels over the retained
//! reference implementations.
//!
//! ```text
//! # measure and write BENCH_perf.json
//! cargo run --release -p tsda-bench --bin perf_baseline [--out BENCH_perf.json]
//!
//! # measure and fail (exit 1) on regression vs the committed baseline
//! cargo run --release -p tsda-bench --bin perf_baseline -- \
//!     --check [--baseline BENCH_perf.baseline.json] [--tolerance-pct 25]
//!
//! # refresh the committed baseline after an intentional perf change
//! cargo run --release -p tsda-bench --bin perf_baseline -- --write-baseline
//! ```
//!
//! Rows are measured in two passes pinned through
//! [`ThreadLimit::set`]: every op at 1 thread, then the
//! parallel-sensitive ops again at 4 threads, so the contract covers
//! both the kernel and the pool-scaling regressions. `--check` keys
//! rows by `(op, size, threads)` and fails when a current row exceeds
//! its baseline by more than the tolerance *or* when the row sets
//! drift apart (a missing row means the contract silently stopped
//! covering something — refresh with `--write-baseline`).
//!
//! Timings are best-of-3 in-process; the tolerance absorbs machine
//! noise, not algorithmic regressions. CI runs with a generous
//! tolerance (see `.github/workflows/ci.yml`).

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tsda_augment::basic::time::Scaling;
use tsda_augment::SeriesTransform;
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::{dtw_distance_matrix, Classifier};
use tsda_core::parallel::ThreadLimit;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};
use tsda_linalg::{simd, Matrix};
use tsda_neuro::layers::{BatchNorm1d, Conv1d, Layer};
use tsda_neuro::tensor::Tensor;
use tsda_signal::dtw::DtwOptions;

#[derive(Serialize, Deserialize)]
struct Row {
    op: String,
    size: String,
    ns_per_iter: f64,
    threads: usize,
}

#[derive(Serialize, Deserialize)]
struct Speedups {
    conv1d_forward: f64,
    matmul_256: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    threads: usize,
    #[serde(default)]
    simd_level: String,
    rows: Vec<Row>,
    speedup: Speedups,
}

/// Best-of-3 samples, each long enough to dominate timer noise.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut iters = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed.as_millis() >= 40 || iters >= 1 << 20 {
                best = best.min(elapsed.as_nanos() as f64 / f64::from(iters));
                break;
            }
            iters *= 2;
        }
    }
    best
}

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = seeded(seed);
    let n: usize = shape.iter().product();
    Tensor::from_flat(shape, (0..n).map(|_| normal(&mut rng, 0.0, 1.0) as f32).collect())
}

fn random_dataset(n: usize, dims: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::empty(2);
    for i in 0..n {
        let dims: Vec<Vec<f64>> = (0..dims)
            .map(|_| (0..len).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        ds.push(Mts::from_dims(dims), i % 2);
    }
    ds
}

/// One measurement pass at a pinned worker count. The `full` pass adds
/// the reference implementations and the serial micro-ops (pooling,
/// batch-norm, augment) whose timings are thread-independent; the
/// scaling pass repeats only the pool-parallel ops. Returns
/// `(conv_fwd_gemm, conv_fwd_ref, mm_tiled, mm_naive)` from the full
/// pass for the headline speedups.
fn bench_pass(threads: usize, full: bool, rows: &mut Vec<Row>) -> (f64, f64, f64, f64) {
    ThreadLimit::set(threads);
    let mut push = |op: &str, size: &str, ns: f64| {
        println!("{op:<28} {size:<24} {ns:>14.0} ns/iter  ({threads} threads)");
        rows.push(Row { op: op.to_string(), size: size.to_string(), ns_per_iter: ns, threads });
    };

    // Conv1d forward/backward: InceptionTime-module scale, batch 16.
    let mut rng = seeded(11);
    let mut conv = Conv1d::new(8, 16, 9, true, &mut rng);
    let x = random_tensor(&[16, 8, 128], 12);
    let conv_size = "b16 c8->16 k9 t128";
    let fwd_gemm = time_ns(|| {
        std::hint::black_box(conv.forward(&x, true));
    });
    push("conv1d_forward_gemm", conv_size, fwd_gemm);
    let mut fwd_ref = f64::NAN;
    if full {
        fwd_ref = time_ns(|| {
            std::hint::black_box(conv.forward_reference(&x));
        });
        push("conv1d_forward_reference", conv_size, fwd_ref);
        let gout = random_tensor(&[16, 16, 128], 13);
        conv.forward(&x, true);
        let bwd_gemm = time_ns(|| {
            std::hint::black_box(conv.backward(&gout));
        });
        push("conv1d_backward_gemm", conv_size, bwd_gemm);
    }

    // Dense matmul, tiled-parallel vs the seed triple loop.
    let a = Matrix::from_vec(256, 256, {
        let mut rng = seeded(14);
        (0..256 * 256).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
    });
    let b = Matrix::from_vec(256, 256, {
        let mut rng = seeded(15);
        (0..256 * 256).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
    });
    let mm_tiled = time_ns(|| {
        std::hint::black_box(a.matmul(&b));
    });
    push("matmul_tiled", "256x256x256", mm_tiled);
    let mut mm_naive = f64::NAN;
    if full {
        mm_naive = time_ns(|| {
            std::hint::black_box(a.matmul_naive(&b));
        });
        push("matmul_naive", "256x256x256", mm_naive);
    }

    // ROCKET transform at the CI profile's scale.
    let ds = random_dataset(32, 3, 128, 16);
    let mut rocket = Rocket::new(RocketConfig { n_kernels: 300, ..RocketConfig::default() });
    rocket.fit(&ds, None, &mut seeded(17));
    let rocket_ns = time_ns(|| {
        std::hint::black_box(rocket.transform(&ds));
    });
    push("rocket_transform", "32 series x 300 kernels", rocket_ns);

    // Pairwise banded DTW distance matrix.
    let queries = random_dataset(40, 2, 64, 18);
    let dtw_ns = time_ns(|| {
        std::hint::black_box(dtw_distance_matrix(
            &queries,
            &queries,
            DtwOptions { band_fraction: Some(0.1) },
        ));
    });
    push("dtw_matrix", "40x40 len 64 band 0.1", dtw_ns);

    if full {
        // ROCKET's pooling kernel in isolation (PPV + max over a conv
        // output buffer) — separates pooling regressions from the
        // convolution accumulation above.
        let buf: Vec<f64> = {
            let mut rng = seeded(19);
            (0..8192).map(|_| normal(&mut rng, 0.0, 1.0)).collect()
        };
        let pool_ns = time_ns(|| {
            std::hint::black_box(simd::ppv_max_f64(&buf));
        });
        push("rocket_pooling", "len 8192", pool_ns);

        // Batch-norm training forward (stats + normalise + affine).
        let mut bn = BatchNorm1d::new(16);
        let bx = random_tensor(&[16, 16, 128], 20);
        let bn_ns = time_ns(|| {
            std::hint::black_box(bn.forward(&bx, true));
        });
        push("batchnorm_forward", "b16 c16 t128", bn_ns);

        // One per-element augment transform (NaN-masked scaling).
        let series = random_dataset(1, 3, 4096, 21).series()[0].clone();
        let scaler = Scaling { sigma: 0.1 };
        let mut aug_rng = seeded(22);
        let aug_ns = time_ns(|| {
            std::hint::black_box(scaler.transform(&series, &mut aug_rng));
        });
        push("aug_scaling", "3 dims x 4096", aug_ns);
    }

    (fwd_gemm, fwd_ref, mm_tiled, mm_naive)
}

/// Compare `current` against `baseline`, keyed by `(op, size, threads)`.
/// Returns the failure messages (empty = contract holds).
fn check(current: &Report, baseline: &Report, tolerance_pct: f64) -> Vec<String> {
    let key = |r: &Row| (r.op.clone(), r.size.clone(), r.threads);
    let base: std::collections::BTreeMap<_, f64> =
        baseline.rows.iter().map(|r| (key(r), r.ns_per_iter)).collect();
    let cur: std::collections::BTreeMap<_, f64> =
        current.rows.iter().map(|r| (key(r), r.ns_per_iter)).collect();
    let mut failures = Vec::new();
    for (k, &cur_ns) in &cur {
        match base.get(k) {
            None => failures.push(format!(
                "{}/{} @{}t: no baseline row (refresh with --write-baseline)",
                k.0, k.1, k.2
            )),
            Some(&base_ns) => {
                let limit = base_ns * (1.0 + tolerance_pct / 100.0);
                let ratio = cur_ns / base_ns;
                let verdict = if cur_ns > limit { "FAIL" } else { "ok" };
                println!(
                    "{verdict:<4} {:<28} {:<24} {:>2}t  {cur_ns:>14.0} vs {base_ns:>14.0} ns ({ratio:.2}x)",
                    k.0, k.1, k.2
                );
                if cur_ns > limit {
                    failures.push(format!(
                        "{}/{} @{}t: {cur_ns:.0} ns exceeds baseline {base_ns:.0} ns by {:.1}% (tolerance {tolerance_pct}%)",
                        k.0, k.1, k.2,
                        (ratio - 1.0) * 100.0
                    ));
                }
            }
        }
    }
    for k in base.keys() {
        if !cur.contains_key(k) {
            failures.push(format!(
                "{}/{} @{}t: baseline row not measured any more (refresh with --write-baseline)",
                k.0, k.1, k.2
            ));
        }
    }
    failures
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_perf.baseline.json".to_string());
    let tolerance_pct: f64 = flag_value(&args, "--tolerance-pct")
        .map(|v| v.parse().expect("--tolerance-pct expects a number"))
        .unwrap_or(25.0);
    let do_check = args.iter().any(|a| a == "--check");
    let write_baseline = args.iter().any(|a| a == "--write-baseline");

    let mut rows = Vec::new();
    let (fwd_gemm, fwd_ref, mm_tiled, mm_naive) = bench_pass(1, true, &mut rows);
    println!();
    bench_pass(4, false, &mut rows);
    ThreadLimit::clear();

    let report = Report {
        threads: 1,
        simd_level: simd::level().name().to_string(),
        speedup: Speedups {
            conv1d_forward: fwd_ref / fwd_gemm,
            matmul_256: mm_naive / mm_tiled,
        },
        rows,
    };
    println!(
        "\nsimd level {}; speedups: conv1d_forward {:.2}x, matmul_256 {:.2}x",
        report.simd_level, report.speedup.conv1d_forward, report.speedup.matmul_256
    );
    let json = serde_json::to_string_pretty(&report).expect("serialise perf report");
    std::fs::write(&out_path, json.clone() + "\n").expect("write perf report");
    println!("wrote {out_path}");
    if write_baseline {
        std::fs::write(&baseline_path, json + "\n").expect("write perf baseline");
        println!("wrote {baseline_path}");
    }

    if do_check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline: Report =
            serde_json::from_str(&text).expect("parse baseline perf report");
        println!("\nchecking against {baseline_path} (tolerance {tolerance_pct}%)");
        let failures = check(&report, &baseline, tolerance_pct);
        if failures.is_empty() {
            println!("perf contract holds: every row within {tolerance_pct}% of baseline");
        } else {
            eprintln!("\nperf contract violated:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
