//! Bonus figure: per-dataset sample series rendered as ASCII sparklines,
//! showing the distinct waveform families of the simulated archive.
//!
//! Usage: `figure_series_gallery [--seed N]`

use tsda_bench::scale::parse_seed_runs;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::{generate, GenOptions};

const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '·'
            } else if hi > lo {
                BLOCKS[(((v - lo) / (hi - lo)) * 7.0).round() as usize]
            } else {
                BLOCKS[0]
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seed, _) = parse_seed_runs(&args, 1);
    println!("Simulated UCR/UEA archive — one series per dataset (dim 0, ci scale)\n");
    for meta in &ALL_DATASETS {
        let data = generate(meta, &GenOptions::ci(seed));
        let s = &data.train.series()[0];
        let take = s.len().min(72);
        println!(
            "{:<23} [{} classes, {:>3} train, {:>3} dims] {}",
            meta.name,
            meta.n_classes,
            data.train.len(),
            data.train.n_dims(),
            sparkline(&s.dim(0)[..take])
        );
    }
}
