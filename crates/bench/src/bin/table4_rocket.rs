//! Reproduce Table IV: ROCKET accuracy per dataset × augmentation plus
//! the best-technique relative improvement.
//!
//! Usage:
//!   `table4_rocket [--paper-scale] [--seed N] [--runs N] [--datasets A,B]`

use tsda_bench::harness::{parse_datasets, run_grid, GridConfig, ModelKind};
use tsda_bench::report::save_results;
use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_bench::tables::accuracy_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = ScaleProfile::from_args(&args);
    let (seed, runs) = parse_seed_runs(&args, if profile == ScaleProfile::Paper { 5 } else { 2 });
    let cfg = GridConfig {
        profile,
        seed,
        runs,
        model: ModelKind::Rocket,
        datasets: parse_datasets(&args),
    };
    eprintln!(
        "Table IV grid: scale={}, seed={seed}, runs={runs}",
        profile.label()
    );
    let mut log = |msg: &str| eprintln!("{msg}");
    let rows = run_grid(&cfg, &mut log);
    print!(
        "{}",
        accuracy_table(
            "TABLE IV: Accuracy for ROCKET baseline model, and relative improvement",
            "ROCKET",
            &rows
        )
    );
    match save_results("table4_rocket", &rows) {
        Ok(p) => eprintln!("results saved to {}", p.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
}
