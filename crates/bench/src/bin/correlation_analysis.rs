//! The paper's §IV-C correlation study: relate each Table III dataset
//! characteristic to the measured relative gain. Uses saved Table IV/V
//! results when available, otherwise runs the ROCKET grid.
//!
//! Usage: `correlation_analysis [--paper-scale] [--seed N] [--runs N]`

use tsda_bench::analysis::{correlate, correlation_table};
use tsda_bench::harness::{run_grid, GridConfig, GridResult, ModelKind};
use tsda_bench::report::load_results;
use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_core::characteristics::DatasetCharacteristics;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::generate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = ScaleProfile::from_args(&args);
    let (seed, runs) = parse_seed_runs(&args, if profile == ScaleProfile::Paper { 5 } else { 2 });

    let characteristics: Vec<(String, DatasetCharacteristics)> = ALL_DATASETS
        .iter()
        .map(|meta| {
            let data = generate(meta, &profile.gen_options(seed));
            (meta.name.to_string(), DatasetCharacteristics::compute(&data))
        })
        .collect();

    for (model, saved) in [
        (ModelKind::Rocket, "table4_rocket"),
        (ModelKind::InceptionTime, "table5_inceptiontime"),
    ] {
        let rows: Vec<GridResult> = match load_results(saved) {
            Some(stored) => {
                eprintln!("using saved results for {saved}");
                stored.into_iter().map(|r| r.into_grid_result()).collect()
            }
            None if model == ModelKind::Rocket => {
                eprintln!("no saved {saved}; running the ROCKET grid…");
                let cfg = GridConfig { profile, seed, runs, model, datasets: Vec::new() };
                let mut log = |m: &str| eprintln!("{m}");
                run_grid(&cfg, &mut log)
            }
            None => {
                eprintln!("no saved {saved}; skipping (run table5_inceptiontime first)");
                continue;
            }
        };
        if rows.len() < 3 {
            eprintln!("not enough rows for correlations ({})", rows.len());
            continue;
        }
        println!("=== {} ===", model.label());
        print!("{}", correlation_table(&correlate(&rows, &characteristics)));
        println!();
    }
}
