//! Calibration helper: measure the ROCKET baseline accuracy of every
//! simulated dataset and print it against the paper's Table IV baseline,
//! so the simulator knobs (separation / noise / sample_jitter) can be
//! tuned to land in the right difficulty regime.
//!
//! Usage: `calibrate_baselines [--seed N]`

use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_classify::rocket::Rocket;
use tsda_classify::traits::Classifier;
use tsda_core::rng::seeded;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::generate;

/// The paper's Table IV ROCKET baselines, in registry order.
const PAPER: [f64; 13] = [
    98.52, 89.16, 98.99, 41.29, 52.20, 58.71, 73.76, 63.84, 82.43, 97.87, 90.66, 85.39, 96.20,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seed, _) = parse_seed_runs(&args, 1);
    println!("{:<23} {:>8} {:>9} {:>7}", "dataset", "paper", "measured", "delta");
    let mut total_abs = 0.0;
    for (meta, paper) in ALL_DATASETS.iter().zip(PAPER) {
        let data = generate(meta, &ScaleProfile::Ci.gen_options(seed));
        let mut model = Rocket::new(ScaleProfile::Ci.rocket());
        let acc =
            model.fit_score(&data.train, None, &data.test, &mut seeded(seed ^ 0xAB)) * 100.0;
        total_abs += (acc - paper).abs();
        println!("{:<23} {:>8.2} {:>9.2} {:>+7.1}", meta.name, paper, acc, acc - paper);
    }
    println!("\nmean |delta|: {:.1}", total_abs / 13.0);
}
