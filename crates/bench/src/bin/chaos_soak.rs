//! Chaos soak: hammer a fault-injected `tsda-serve` instance with
//! retrying clients and verify the serving contract end to end —
//! zero lost requests, zero label divergence from offline
//! `Classifier::predict`, and every fault kind actually fired. Writes
//! `BENCH_chaos.json` and exits nonzero on any violation, so CI can run
//! it as a gate.
//!
//! ```text
//! cargo run --release -p tsda-bench --bin chaos_soak \
//!   [--seed N] [--clients N] [--rounds N] [--out BENCH_chaos.json]
//! ```
//!
//! The fault schedule is a pure function of the seed (see
//! `tsda_serve::faults`), so a reported failure replays exactly under
//! the same seed and client/round counts.

use serde::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsda_classify::persist::{load_model_bytes, SavedModel};
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_core::rng::seeded;
use tsda_core::{Dataset, Label, Mts};
use tsda_datasets::ts_format::format_series_line;
use tsda_serve::batcher::BatchConfig;
use tsda_serve::client::{RetryPolicy, RetryingClient};
use tsda_serve::faults::FaultPlan;
use tsda_serve::registry::{ModelEntry, ModelRegistry};
use tsda_serve::server::{serve, ServerConfig};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Two sine classes with random phase: small enough to train in
/// milliseconds, separable enough that labels are stable.
fn toy_problem(seed: u64) -> (Dataset, Dataset) {
    let make = |split_seed: u64| {
        use rand::Rng;
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(split_seed);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.75 };
            for _ in 0..12 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                let dims = (0..2)
                    .map(|d| {
                        (0..24)
                            .map(|t| ((t as f64) * freq + phase + d as f64).sin())
                            .collect()
                    })
                    .collect();
                ds.push(Mts::from_dims(dims), c);
            }
        }
        ds
    };
    (make(seed), make(seed ^ 0xdead_beef))
}

/// ROCKET through a save/load cycle plus its offline test-set labels —
/// the ground truth every served label must match bit-for-bit.
fn build_registry(seed: u64) -> (ModelRegistry, Vec<Label>, Dataset) {
    let (train, test) = toy_problem(seed);
    let mut rocket = Rocket::new(RocketConfig { n_kernels: 60, ..RocketConfig::default() });
    rocket.fit(&train, None, &mut seeded(5));
    let offline = rocket.predict(&test);
    let bytes = SavedModel::Rocket(rocket).save_bytes().expect("save model");
    let loaded = load_model_bytes(&bytes).expect("reload model");
    let mut registry = ModelRegistry::new();
    registry.insert(ModelEntry::from_saved("rocket", loaded, None).expect("register model"));
    (registry, offline, test)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = flag(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    let clients: usize = flag(&args, "--clients").and_then(|v| v.parse().ok()).unwrap_or(4);
    let rounds: usize = flag(&args, "--rounds").and_then(|v| v.parse().ok()).unwrap_or(6);
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_chaos.json".to_string());
    assert!(seed != 0, "--seed 0 disables fault injection; pick a nonzero seed");

    eprintln!("chaos soak: seed {seed}, {clients} clients × {rounds} rounds");
    let plan = Arc::new(FaultPlan::seeded(seed));
    let (registry, offline, test) = build_registry(21);
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // Small, fast batches so the worker-stall and shed sites see
            // many events within the soak budget.
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
            faults: Some(Arc::clone(&plan)),
            admission: None,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();
    let policy = RetryPolicy { max_attempts: 16, jitter_seed: seed, ..RetryPolicy::default() };

    let t0 = Instant::now();
    let mut workers = Vec::new();
    for worker in 0..clients {
        let addr = addr.clone();
        let test = test.clone();
        let offline = offline.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new(addr, policy, &format!("soak-{worker}"));
            let (mut sent, mut lost, mut mismatched) = (0u64, 0u64, 0u64);
            for round in 0..rounds {
                for (i, s) in test.series().iter().enumerate() {
                    let id = (worker * 1_000_000 + round * 1000 + i) as u64;
                    sent += 1;
                    match client.predict(id, "rocket", &format_series_line(s)) {
                        Ok(reply) if reply.ok => {
                            if reply.label != Some(offline[i]) {
                                mismatched += 1;
                            }
                        }
                        Ok(_) | Err(_) => lost += 1,
                    }
                }
            }
            (sent, lost, mismatched, client.counters())
        }));
    }

    let (mut sent, mut lost, mut mismatched) = (0u64, 0u64, 0u64);
    let (mut retries, mut reconnects, mut shed_backoffs) = (0u64, 0u64, 0u64);
    for w in workers {
        let (s, l, m, counters) = w.join().expect("soak client panicked");
        sent += s;
        lost += l;
        mismatched += m;
        retries += counters.retries;
        reconnects += counters.reconnects;
        shed_backoffs += counters.shed_backoffs;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let snap = handle.stats().snapshot();
    handle.shutdown();

    let exercised_all = plan.exercised_all();
    let ok = lost == 0 && mismatched == 0 && exercised_all && plan.injected_total() > 0;
    eprintln!(
        "{sent} requests in {wall_s:.2}s: {lost} lost, {mismatched} mismatched, \
         {retries} retries, {reconnects} reconnects, {shed_backoffs} shed backoffs"
    );
    eprintln!("faults: {}", plan.summary());

    let report = Value::Object(vec![
        ("seed".into(), Value::Num(seed as f64)),
        ("clients".into(), Value::Num(clients as f64)),
        ("rounds".into(), Value::Num(rounds as f64)),
        ("wall_s".into(), Value::Num(wall_s)),
        ("requests".into(), Value::Num(sent as f64)),
        ("lost".into(), Value::Num(lost as f64)),
        ("label_mismatches".into(), Value::Num(mismatched as f64)),
        ("retries".into(), Value::Num(retries as f64)),
        ("reconnects".into(), Value::Num(reconnects as f64)),
        ("shed_backoffs".into(), Value::Num(shed_backoffs as f64)),
        ("exercised_all_fault_kinds".into(), Value::Bool(exercised_all)),
        ("server".into(), snap.to_value()),
        ("faults".into(), plan.to_value()),
        ("ok".into(), Value::Bool(ok)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialise chaos report");
    std::fs::write(&out_path, json + "\n").expect("write chaos report");
    eprintln!("wrote {out_path}");

    if !ok {
        eprintln!("chaos soak FAILED: the serving contract was violated (see above)");
        std::process::exit(1);
    }
    println!("chaos soak passed: {sent} requests, 0 lost, 0 mismatched, all fault kinds fired");
}
