//! Sweep the committed `pipelines.toml` policies over the Table III
//! synthetic generators: for every (dataset, pipeline) cell a fast
//! ROCKET is trained on the original training set and on the training
//! set doubled with pipeline-augmented copies, and the policy's
//! relative gain G_r (Eq. 3, ×100) over the baseline is reported.
//!
//! This is the serving-side counterpart of Table IV: the same declarative
//! pipelines the `augment` endpoint executes, scored offline so a policy
//! choice can be grounded in measured gains rather than folklore.
//!
//! Usage:
//!   `augment_sweep [--paper-scale] [--seed N] [--runs N] [--datasets A,B]
//!                  [--pipelines FILE] [--out FILE]`

use serde::Value;
use tsda_augment::declarative::{AugPipeline, PipelineConfig};
use tsda_bench::harness::parse_datasets;
use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_classify::rocket::Rocket;
use tsda_classify::traits::Classifier;
use tsda_core::metrics::relative_gain;
use tsda_core::rng::{derive_seed, seeded};
use tsda_core::Dataset;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::generate;

/// One dataset row of the sweep.
struct SweepRow {
    dataset: String,
    /// Baseline accuracy (%) averaged over runs.
    baseline: f64,
    /// Per-policy (accuracy %, G_r %) in pipeline order.
    policies: Vec<(f64, f64)>,
}

/// Original training set plus one augmented copy of every sample —
/// labels ride along, so class balance is preserved exactly.
fn doubled(train: &Dataset, pipe: &AugPipeline, seed: u64) -> Dataset {
    let mut out = train.clone();
    for (s, &label) in pipe.run(train.series(), seed).into_iter().zip(train.labels()) {
        out.push(s, label);
    }
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = ScaleProfile::from_args(&args);
    let (seed, runs) = parse_seed_runs(&args, if profile == ScaleProfile::Paper { 5 } else { 2 });
    let datasets = parse_datasets(&args);
    let toml_path =
        flag_value(&args, "--pipelines").unwrap_or_else(|| "pipelines.toml".to_string());
    let out_path =
        flag_value(&args, "--out").unwrap_or_else(|| "results/augment_sweep.json".to_string());

    let text = std::fs::read_to_string(&toml_path)
        .unwrap_or_else(|e| panic!("reading {toml_path}: {e}"));
    let cfg = PipelineConfig::parse(&text).unwrap_or_else(|e| panic!("parsing {toml_path}: {e:?}"));
    let pipes = AugPipeline::from_config(&cfg).expect("pipeline config builds");
    let names: Vec<String> = pipes.iter().map(|p| p.name().to_string()).collect();
    eprintln!(
        "augment sweep: scale={}, seed={seed}, runs={runs}, policies=[{}]",
        profile.label(),
        names.join(", ")
    );

    let n_variants = pipes.len() + 1;
    let mut rows = Vec::new();
    for meta in ALL_DATASETS.iter().filter(|m| datasets.is_empty() || datasets.contains(&m.name.to_string()))
    {
        let data = generate(meta, &profile.gen_options(seed));
        // One cell per (run, variant); variant 0 is the baseline. Cells
        // are independent — every cell derives its own RNG from the
        // master seed — so they fan out on the shared pool and the
        // accuracies are identical at any thread count.
        let cells = tsda_core::parallel::Pool::global().par_map_indexed(
            runs * n_variants,
            |idx| -> f64 {
                let run = idx / n_variants;
                let variant = idx % n_variants;
                let run_seed = derive_seed(seed, &format!("{}/augsweep/run{run}", meta.name));
                let mut model = Rocket::new(profile.rocket());
                let train = if variant == 0 {
                    data.train.clone()
                } else {
                    let pipe = &pipes[variant - 1];
                    doubled(&data.train, pipe, derive_seed(run_seed, pipe.name()))
                };
                let mut rng = seeded(derive_seed(run_seed, &format!("fit/{variant}")));
                model.fit_score(&train, None, &data.test, &mut rng) * 100.0
            },
        );
        let mean_of = |variant: usize| -> f64 {
            let accs: Vec<f64> =
                (0..runs).map(|run| cells[run * n_variants + variant]).collect();
            tsda_core::math::sum_stable(accs.iter().copied()) / accs.len().max(1) as f64
        };
        let baseline = mean_of(0);
        let policies: Vec<(f64, f64)> = (1..n_variants)
            .map(|v| {
                let acc = mean_of(v);
                (acc, relative_gain(baseline, acc) * 100.0)
            })
            .collect();
        eprintln!("  {}: baseline {baseline:.2}%", meta.name);
        rows.push(SweepRow { dataset: meta.name.to_string(), baseline, policies });
    }

    // Text table: dataset × (baseline, per-policy G_r).
    let mut table = String::new();
    table.push_str("Policy sweep: relative gain G_r (%) of each served pipeline over baseline ROCKET\n");
    table.push_str(&format!("{:<22} {:>10}", "Dataset", "Baseline%"));
    for n in &names {
        table.push_str(&format!(" {:>10}", format!("G_r {n}")));
    }
    table.push('\n');
    for row in &rows {
        table.push_str(&format!("{:<22} {:>10.2}", row.dataset, row.baseline));
        for (_, gain) in &row.policies {
            table.push_str(&format!(" {:>10.2}", gain));
        }
        table.push('\n');
    }
    // Per-policy mean G_r across datasets — the one-line policy ranking.
    table.push_str(&format!("{:<22} {:>10}", "mean", ""));
    for p in 0..names.len() {
        let mean = tsda_core::math::sum_stable(rows.iter().map(|r| r.policies[p].1))
            / rows.len().max(1) as f64;
        table.push_str(&format!(" {:>10.2}", mean));
    }
    table.push('\n');
    print!("{table}");

    // JSON report next to the other bench artifacts.
    let json_rows: Vec<Value> = rows
        .iter()
        .map(|r| {
            let policies: Vec<(String, Value)> = names
                .iter()
                .zip(&r.policies)
                .map(|(n, (acc, gain))| {
                    (
                        n.clone(),
                        Value::Object(vec![
                            ("accuracy".to_string(), Value::Num(*acc)),
                            ("gain_pct".to_string(), Value::Num(*gain)),
                        ]),
                    )
                })
                .collect();
            Value::Object(vec![
                ("dataset".to_string(), Value::Str(r.dataset.clone())),
                ("baseline".to_string(), Value::Num(r.baseline)),
                ("policies".to_string(), Value::Object(policies)),
            ])
        })
        .collect();
    let report = Value::Object(vec![
        ("scale".to_string(), Value::Str(profile.label().to_string())),
        ("seed".to_string(), Value::Num(seed as f64)),
        ("runs".to_string(), Value::Num(runs as f64)),
        ("pipelines".to_string(), Value::Array(names.iter().cloned().map(Value::Str).collect())),
        ("rows".to_string(), Value::Array(json_rows)),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
    }
    std::fs::write(&out_path, rendered).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("results saved to {out_path}");
}
