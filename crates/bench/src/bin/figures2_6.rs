//! Reproduce Figures 2–6: the 2-D two-class illustrations of noise
//! injection, SMOTE, TimeGAN, the range technique and OHIT. Emits one
//! CSV per figure plus an ASCII preview.
//!
//! Usage: `figures2_6 [--seed N] [--out DIR]` (default `target/figures`).

use std::path::PathBuf;
use tsda_bench::figures::{all_figures, ascii_scatter, figure_points};
use tsda_bench::report::save_text_at;
use tsda_bench::scale::parse_seed_runs;
use tsda_augment::oversample::Smote;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seed, _) = parse_seed_runs(&args, 1);
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    for (name, csv) in all_figures(seed) {
        let path = out_dir.join(format!("{name}.csv"));
        match save_text_at(&path, &csv) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {name}: {e}"),
        }
    }
    println!("\nASCII preview of Figure 3 (SMOTE: o=class1, x=class2, *=generated):\n");
    let pts = figure_points(&Smote::default(), seed, false);
    print!("{}", ascii_scatter(&pts, 64, 20));
}
