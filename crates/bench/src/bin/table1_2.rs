//! Reproduce Tables I and II: baseline-model methodology metadata.

fn main() {
    print!("{}", tsda_bench::tables::table1());
    println!();
    print!("{}", tsda_bench::tables::table2());
}
