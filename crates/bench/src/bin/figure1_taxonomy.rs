//! Reproduce Figure 1: the augmentation-technique taxonomy, rendered as
//! an ASCII tree with each leaf annotated with its implementation name.

use tsda_augment::taxonomy::taxonomy;

fn main() {
    let t = taxonomy();
    println!(
        "Figure 1: taxonomy of time series data augmentation techniques \
         ({} implemented leaves)\n",
        t.implemented_count()
    );
    print!("{}", t.render());
}
