//! Reproduce Table VI: per-technique counts of datasets improved over
//! baseline, for both models.
//!
//! Reads the JSON saved by `table4_rocket` and `table5_inceptiontime`
//! when available; otherwise runs both grids.

use tsda_bench::harness::{run_grid, GridConfig, GridResult, ModelKind};
use tsda_bench::report::load_results;
use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_bench::tables::table6;

fn rows_for(model: ModelKind, name: &str, args: &[String]) -> Vec<GridResult> {
    if let Some(stored) = load_results(name) {
        eprintln!("using saved results for {name}");
        return stored.into_iter().map(|r| r.into_grid_result()).collect();
    }
    let profile = ScaleProfile::from_args(args);
    let (seed, runs) = parse_seed_runs(args, if profile == ScaleProfile::Paper { 5 } else { 2 });
    eprintln!("no saved results for {name}; running the grid…");
    let cfg = GridConfig { profile, seed, runs, model, datasets: Vec::new() };
    let mut log = |msg: &str| eprintln!("{msg}");
    run_grid(&cfg, &mut log)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rocket = rows_for(ModelKind::Rocket, "table4_rocket", &args);
    let inception = rows_for(ModelKind::InceptionTime, "table5_inceptiontime", &args);
    print!("{}", table6(&rocket, &inception));
}
