//! Reproduce Table III: the nine characteristics of every dataset,
//! computed on the generated archive.
//!
//! Usage: `table3_characteristics [--paper-scale] [--seed N]`

use tsda_bench::scale::{parse_seed_runs, ScaleProfile};
use tsda_core::characteristics::DatasetCharacteristics;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::generate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = ScaleProfile::from_args(&args);
    let (seed, _) = parse_seed_runs(&args, 1);
    eprintln!("generating archive at {} scale, seed {seed}…", profile.label());
    let rows: Vec<(String, DatasetCharacteristics)> = ALL_DATASETS
        .iter()
        .map(|meta| {
            let data = generate(meta, &profile.gen_options(seed));
            (meta.name.to_string(), DatasetCharacteristics::compute(&data))
        })
        .collect();
    print!("{}", tsda_bench::tables::table3(&rows));
}
