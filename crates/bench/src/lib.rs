//! Experiment harness reproducing every table and figure of the paper.
//!
//! Binaries (one per table/figure; see DESIGN.md's experiment index):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_2` | Tables I & II (methodology metadata) |
//! | `table3_characteristics` | Table III (dataset characteristics) |
//! | `table4_rocket` | Table IV (ROCKET accuracies + relative gain) |
//! | `table5_inceptiontime` | Table V (InceptionTime accuracies) |
//! | `table6_improvement_counts` | Table VI (improvement counts) |
//! | `figure1_taxonomy` | Figure 1 (the taxonomy tree) |
//! | `figures2_6` | Figures 2–6 (technique illustrations, CSV) |
//! | `correlation_analysis` | §IV-C characteristic–gain correlations |
//!
//! All binaries accept `--paper-scale` to switch from the laptop profile
//! to the paper's full sizes, `--seed <n>`, and `--runs <n>` (the paper
//! averages 5 runs).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod figures;
pub mod harness;
pub mod report;
pub mod scale;
pub mod tables;

pub use harness::{run_grid, GridConfig, GridResult};
pub use scale::ScaleProfile;
