//! Result persistence: JSON dumps of grid results so Tables IV–VI can be
//! recombined without rerunning, plus a tiny results-directory helper.

use crate::harness::GridResult;
use std::path::{Path, PathBuf};
use tsda_core::TsdaError;

/// The default results directory (`target/tsda-results`).
pub fn results_dir() -> PathBuf {
    PathBuf::from("target").join("tsda-results")
}

/// Write grid results as JSON under the results directory.
pub fn save_results(name: &str, rows: &[GridResult]) -> Result<PathBuf, TsdaError> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(rows)
        .map_err(|e| TsdaError::Io(format!("serialising results: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Load previously saved grid results, if present.
pub fn load_results(name: &str) -> Option<Vec<StoredRow>> {
    let path = results_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Deserialised form of [`GridResult`] (kept separate so the stored
/// schema is explicit and versionable).
#[derive(Debug, Clone, serde::Deserialize)]
pub struct StoredRow {
    /// Dataset name.
    pub dataset: String,
    /// Baseline accuracy (%).
    pub baseline: f64,
    /// Technique label → accuracy (%).
    pub technique_acc: Vec<(String, f64)>,
    /// Best-technique relative improvement (%).
    pub improvement_pct: f64,
}

impl StoredRow {
    /// Convert back to a [`GridResult`] for the table formatters.
    pub fn into_grid_result(self) -> GridResult {
        GridResult {
            dataset: self.dataset,
            baseline: self.baseline,
            technique_acc: self.technique_acc,
            improvement_pct: self.improvement_pct,
        }
    }
}

/// Write arbitrary text under the results directory.
pub fn save_text(name: &str, content: &str) -> Result<PathBuf, TsdaError> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Write text to an explicit path, creating parent directories.
pub fn save_text_at(path: &Path, content: &str) -> Result<(), TsdaError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_rows() -> Vec<GridResult> {
        vec![GridResult {
            dataset: "Toy".into(),
            baseline: 80.0,
            technique_acc: vec![("smote".into(), 82.0)],
            improvement_pct: 2.5,
        }]
    }

    #[test]
    fn save_load_round_trips() {
        let rows = fake_rows();
        let path = save_results("unit_test_rows", &rows).unwrap();
        assert!(path.exists());
        let loaded = load_results("unit_test_rows").unwrap();
        assert_eq!(loaded.len(), 1);
        let back = loaded.into_iter().next().unwrap().into_grid_result();
        assert_eq!(back.dataset, "Toy");
        assert_eq!(back.improvement_pct, 2.5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_results_load_as_none() {
        assert!(load_results("definitely_not_there").is_none());
    }
}
