//! The experiment grid: dataset × augmentation × model × runs,
//! implementing the paper's protocol (§IV-C/D):
//!
//! * the archive's train/test division is fixed;
//! * each augmentation technique balances the training set perfectly;
//! * InceptionTime validates on a stratified split of the *original*
//!   training data — augmented series never enter validation;
//! * accuracies are averaged over `runs` seeded runs (paper: 5);
//! * the per-dataset "Improvement (%)" column is the relative gain
//!   (Eq. 3) of the best augmented variant over the baseline.

use crate::scale::ScaleProfile;
use serde::Serialize;
use tsda_augment::balance::augment_to_balance;
use tsda_augment::taxonomy::PaperTechnique;
use tsda_classify::inception::InceptionTime;
use tsda_classify::rocket::Rocket;
use tsda_classify::traits::Classifier;
use tsda_core::metrics::relative_gain;
use tsda_core::rng::{derive_seed, seeded};
use tsda_core::Dataset;
use tsda_datasets::registry::{DatasetMeta, ALL_DATASETS};
use tsda_datasets::synth::generate;

/// Which baseline model the grid trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// ROCKET + ridge (Table IV).
    Rocket,
    /// InceptionTime (Table V).
    InceptionTime,
}

impl ModelKind {
    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Rocket => "ROCKET",
            ModelKind::InceptionTime => "InceptionTime",
        }
    }

    fn build(self, profile: ScaleProfile) -> Box<dyn Classifier> {
        match self {
            ModelKind::Rocket => Box::new(Rocket::new(profile.rocket())),
            ModelKind::InceptionTime => Box::new(InceptionTime::new(profile.inception())),
        }
    }

    /// Whether this model consumes a validation split (the paper's
    /// InceptionTime protocol).
    fn uses_validation(self) -> bool {
        matches!(self, ModelKind::InceptionTime)
    }
}

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Scale profile.
    pub profile: ScaleProfile,
    /// Master seed.
    pub seed: u64,
    /// Runs to average (paper: 5).
    pub runs: usize,
    /// Model under test.
    pub model: ModelKind,
    /// Restrict to these dataset names (empty = all 13).
    pub datasets: Vec<String>,
}

/// Result row for one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct GridResult {
    /// Dataset name.
    pub dataset: String,
    /// Baseline accuracy (%) averaged over runs.
    pub baseline: f64,
    /// Per-technique accuracy (%), Table IV/V column order.
    pub technique_acc: Vec<(String, f64)>,
    /// Relative improvement (%) of the best technique over baseline
    /// (Eq. 3 × 100; negative when nothing improves).
    pub improvement_pct: f64,
}

impl GridResult {
    /// Techniques whose average accuracy strictly beats the baseline.
    pub fn improving_techniques(&self) -> Vec<&str> {
        self.technique_acc
            .iter()
            .filter(|(_, acc)| *acc > self.baseline)
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

/// Run one (dataset, model) cell: baseline + the five paper techniques.
///
/// The `runs × (1 + techniques)` grid cells are embarrassingly
/// parallel — every cell's RNG is derived from the master seed and the
/// cell's own labels — so they are fanned out on the shared pool. The
/// accuracies match the old serial loop exactly for any thread count;
/// log messages are collected per cell and emitted in deterministic
/// order after the cells join.
pub fn run_dataset(
    meta: &DatasetMeta,
    cfg: &GridConfig,
    log: &mut dyn FnMut(&str),
) -> GridResult {
    let data = generate(meta, &cfg.profile.gen_options(cfg.seed));
    let n_variants = PaperTechnique::ALL.len() + 1;

    // Per-run training/validation splits, derived serially so the RNG
    // use is identical to the historical per-run loop. The validation
    // split is cut from the ORIGINAL training data once per run;
    // augmentation only ever sees the training part.
    let splits: Vec<(u64, Dataset, Option<Dataset>)> = (0..cfg.runs)
        .map(|run| {
            let run_seed =
                derive_seed(cfg.seed, &format!("{}/{}/run{run}", meta.name, cfg.model.label()));
            let (fit_train, validation) = if cfg.model.uses_validation() {
                let mut rng = seeded(derive_seed(run_seed, "valsplit"));
                let (tr, val) = data.train.stratified_split(2.0 / 3.0, &mut rng);
                (tr, Some(val))
            } else {
                (data.train.clone(), None)
            };
            (run_seed, fit_train, validation)
        })
        .collect();

    // Cell index → (run, variant); variant 0 is the baseline, 1.. the
    // paper techniques. Each cell returns (accuracy %, warning).
    let cells = tsda_core::parallel::Pool::global().par_map_indexed(
        cfg.runs * n_variants,
        |idx| -> (f64, Option<String>) {
            let (run_seed, fit_train, validation) = &splits[idx / n_variants];
            let variant = idx % n_variants;
            let mut model = cfg.model.build(cfg.profile);
            if variant == 0 {
                let mut rng = seeded(derive_seed(*run_seed, "baseline"));
                let acc = model.fit_score(fit_train, validation.as_ref(), &data.test, &mut rng);
                return (acc * 100.0, None);
            }
            let technique = &PaperTechnique::ALL[variant - 1];
            let aug = technique.build(cfg.profile.paper_augmenters());
            let mut aug_rng = seeded(derive_seed(*run_seed, technique.label()));
            let mut warning = None;
            let augmented = match augment_to_balance(fit_train, aug.as_ref(), &mut aug_rng) {
                Ok(ds) => ds,
                Err(e) => {
                    warning = Some(format!(
                        "  ! {} on {}: {e}; falling back to original training set",
                        technique.label(),
                        meta.name
                    ));
                    fit_train.clone()
                }
            };
            let mut rng = seeded(derive_seed(*run_seed, &format!("fit/{}", technique.label())));
            let acc = model.fit_score(&augmented, validation.as_ref(), &data.test, &mut rng);
            (acc * 100.0, warning)
        },
    );

    let mut baseline_accs = Vec::with_capacity(cfg.runs);
    let mut technique_accs: Vec<Vec<f64>> = vec![Vec::new(); PaperTechnique::ALL.len()];
    for (run, run_cells) in cells.chunks(n_variants).enumerate() {
        for (variant, (acc, warning)) in run_cells.iter().enumerate() {
            if let Some(w) = warning {
                log(w);
            }
            if variant == 0 {
                baseline_accs.push(*acc);
            } else {
                technique_accs[variant - 1].push(*acc);
            }
        }
        log(&format!("  {} run {}/{} done", meta.name, run + 1, cfg.runs));
    }

    let mean = |v: &[f64]| tsda_core::math::sum_stable(v.iter().copied()) / v.len().max(1) as f64;
    let baseline = mean(&baseline_accs);
    let technique_acc: Vec<(String, f64)> = PaperTechnique::ALL
        .iter()
        .zip(&technique_accs)
        .map(|(t, accs)| (t.label().to_string(), mean(accs)))
        .collect();
    let best = technique_acc
        .iter()
        .map(|(_, a)| *a)
        .fold(f64::NEG_INFINITY, f64::max);
    GridResult {
        dataset: meta.name.to_string(),
        baseline,
        technique_acc,
        improvement_pct: relative_gain(baseline, best) * 100.0,
    }
}

/// Run the whole grid for the configured model.
pub fn run_grid(cfg: &GridConfig, log: &mut dyn FnMut(&str)) -> Vec<GridResult> {
    ALL_DATASETS
        .iter()
        .filter(|m| cfg.datasets.is_empty() || cfg.datasets.iter().any(|d| d == m.name))
        .map(|m| {
            log(&format!("dataset {}", m.name));
            run_dataset(m, cfg, log)
        })
        .collect()
}

/// Parse `--datasets a,b,c` from CLI args.
pub fn parse_datasets(args: &[String]) -> Vec<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--datasets" {
            if let Some(v) = it.next() {
                return v.split(',').map(|s| s.trim().to_string()).collect();
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_datasets::registry::DatasetId;

    fn quiet() -> impl FnMut(&str) {
        |_: &str| {}
    }

    #[test]
    fn rocket_cell_produces_complete_row() {
        let cfg = GridConfig {
            profile: ScaleProfile::Ci,
            seed: 3,
            runs: 1,
            model: ModelKind::Rocket,
            datasets: vec![],
        };
        let meta = DatasetMeta::get(DatasetId::RacketSports);
        let mut log = quiet();
        let row = run_dataset(meta, &cfg, &mut log);
        assert_eq!(row.dataset, "RacketSports");
        assert_eq!(row.technique_acc.len(), 5);
        assert!(row.baseline > 25.0, "baseline {}", row.baseline); // beats 4-class chance
        assert!(row.technique_acc.iter().all(|(_, a)| (0.0..=100.0).contains(a)));
    }

    #[test]
    fn improvement_sign_matches_best_technique() {
        let cfg = GridConfig {
            profile: ScaleProfile::Ci,
            seed: 5,
            runs: 1,
            model: ModelKind::Rocket,
            datasets: vec![],
        };
        let meta = DatasetMeta::get(DatasetId::Epilepsy);
        let mut log = quiet();
        let row = run_dataset(meta, &cfg, &mut log);
        let best = row
            .technique_acc
            .iter()
            .map(|(_, a)| *a)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best > row.baseline, row.improvement_pct > 0.0);
    }

    #[test]
    fn parse_datasets_splits_on_comma() {
        let args: Vec<String> = ["--datasets", "LSST,Epilepsy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_datasets(&args), vec!["LSST", "Epilepsy"]);
        assert!(parse_datasets(&[]).is_empty());
    }

    #[test]
    fn grid_respects_dataset_filter() {
        let cfg = GridConfig {
            profile: ScaleProfile::Ci,
            seed: 9,
            runs: 1,
            model: ModelKind::Rocket,
            datasets: vec!["RacketSports".into()],
        };
        let mut log = quiet();
        let rows = run_grid(&cfg, &mut log);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].dataset, "RacketSports");
    }
}
