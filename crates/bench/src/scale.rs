//! Scale profiles: the laptop-sized default grid vs. the paper's full
//! protocol. EXPERIMENTS.md records which profile produced each number.

use tsda_classify::inception::InceptionTimeConfig;
use tsda_classify::rocket::RocketConfig;
use tsda_datasets::synth::GenOptions;
use tsda_neuro::train::TrainConfig;

/// How big to run the experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleProfile {
    /// Laptop profile: reduced dataset sizes (×0.12, length ≤ 96, dims
    /// ≤ 24), 500 ROCKET kernels, small InceptionTime, short TimeGAN.
    Ci,
    /// The paper's §IV protocol: Table III sizes, 10 000 kernels,
    /// 200-epoch InceptionTime ensemble of 5, TimeGAN 2500/2500/1000.
    Paper,
}

impl ScaleProfile {
    /// Parse from CLI args: `--paper-scale` selects [`ScaleProfile::Paper`].
    pub fn from_args(args: &[String]) -> ScaleProfile {
        if args.iter().any(|a| a == "--paper-scale") {
            ScaleProfile::Paper
        } else {
            ScaleProfile::Ci
        }
    }

    /// Dataset generation options for this profile.
    pub fn gen_options(self, seed: u64) -> GenOptions {
        match self {
            ScaleProfile::Ci => GenOptions::ci(seed),
            ScaleProfile::Paper => GenOptions::paper(seed),
        }
    }

    /// ROCKET configuration for this profile.
    pub fn rocket(self) -> RocketConfig {
        match self {
            ScaleProfile::Ci => RocketConfig { n_kernels: 300, ..RocketConfig::default() },
            ScaleProfile::Paper => RocketConfig::paper(),
        }
    }

    /// InceptionTime configuration for this profile.
    pub fn inception(self) -> InceptionTimeConfig {
        match self {
            ScaleProfile::Ci => InceptionTimeConfig {
                filters: 4,
                depth: 3,
                kernel_sizes: [19, 9, 5],
                ensemble: 2,
                train: TrainConfig { max_epochs: 50, batch_size: 16, patience: 15, lr: 1e-2 },
                use_lr_range_test: true,
                ..InceptionTimeConfig::default()
            },
            ScaleProfile::Paper => InceptionTimeConfig::paper(),
        }
    }

    /// Whether augmenters should use their paper-scale budgets
    /// (TimeGAN's 2500/2500/1000 iterations).
    pub fn paper_augmenters(self) -> bool {
        matches!(self, ScaleProfile::Paper)
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ScaleProfile::Ci => "ci",
            ScaleProfile::Paper => "paper",
        }
    }
}

/// Parse `--seed <n>` (default 7) and `--runs <n>` (default profile
/// dependent) from CLI args.
pub fn parse_seed_runs(args: &[String], default_runs: usize) -> (u64, usize) {
    let mut seed = 7u64;
    let mut runs = default_runs;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                if let Some(v) = it.next() {
                    seed = v.parse().unwrap_or(seed);
                }
            }
            "--runs" => {
                if let Some(v) = it.next() {
                    runs = v.parse().unwrap_or(runs);
                }
            }
            _ => {}
        }
    }
    (seed, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_flag_is_recognised() {
        let args = vec!["--paper-scale".to_string()];
        assert_eq!(ScaleProfile::from_args(&args), ScaleProfile::Paper);
        assert_eq!(ScaleProfile::from_args(&[]), ScaleProfile::Ci);
    }

    #[test]
    fn seed_and_runs_parse() {
        let args: Vec<String> = ["--seed", "42", "--runs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_seed_runs(&args, 5), (42, 3));
        assert_eq!(parse_seed_runs(&[], 5), (7, 5));
    }

    #[test]
    fn profiles_differ_in_budget() {
        assert!(ScaleProfile::Paper.rocket().n_kernels > ScaleProfile::Ci.rocket().n_kernels);
        assert!(
            ScaleProfile::Paper.inception().ensemble > ScaleProfile::Ci.inception().ensemble
        );
    }
}
