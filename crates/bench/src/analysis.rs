//! Characteristic–gain correlation analysis.
//!
//! §IV-C of the paper: the baseline models run on augmented and
//! non-augmented datasets "trying to capture some correlations between
//! G and the aforementioned properties" (the Table III
//! characteristics). This module computes those correlations — Pearson
//! and Spearman between each dataset characteristic and the per-dataset
//! relative gain — which is how the paper supports its "no
//! one-size-fits-all" conclusion.

use crate::harness::GridResult;
use tsda_core::characteristics::DatasetCharacteristics;

/// Pearson correlation coefficient; 0 for degenerate inputs.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation length mismatch");
    let n = x.len() as f64;
    if x.len() < 2 {
        return 0.0;
    }
    let mx = tsda_core::math::sum_stable(x.iter().copied()) / n;
    let my = tsda_core::math::sum_stable(y.iter().copied()) / n;
    let sxy = tsda_core::math::sum_stable(x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)));
    let sxx = tsda_core::math::sum_stable(x.iter().map(|a| (a - mx) * (a - mx)));
    let syy = tsda_core::math::sum_stable(y.iter().map(|b| (b - my) * (b - my)));
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Average ranks with ties sharing the mean rank.
fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap());
    let mut out = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

/// One row of the correlation report.
#[derive(Debug, Clone)]
pub struct CorrelationRow {
    /// Characteristic name (Table III column).
    pub characteristic: &'static str,
    /// Pearson r against relative improvement.
    pub pearson: f64,
    /// Spearman ρ against relative improvement.
    pub spearman: f64,
}

/// Correlate every Table III characteristic with the per-dataset
/// best-technique relative improvement of a grid run. `characteristics`
/// must be keyed by the same dataset names as `rows`.
pub fn correlate(
    rows: &[GridResult],
    characteristics: &[(String, DatasetCharacteristics)],
) -> Vec<CorrelationRow> {
    let gains: Vec<f64> = rows.iter().map(|r| r.improvement_pct).collect();
    let lookup = |f: &dyn Fn(&DatasetCharacteristics) -> f64| -> Vec<f64> {
        rows.iter()
            .map(|r| {
                characteristics
                    .iter()
                    .find(|(name, _)| *name == r.dataset)
                    .map(|(_, c)| f(c))
                    .expect("characteristics cover every grid dataset")
            })
            .collect()
    };
    let columns: Vec<(&'static str, Vec<f64>)> = vec![
        ("n_classes", lookup(&|c| c.n_classes as f64)),
        ("Train_size", lookup(&|c| c.train_size as f64)),
        ("Dim", lookup(&|c| c.dim as f64)),
        ("Length", lookup(&|c| c.length as f64)),
        ("Var_train", lookup(&|c| c.var_train)),
        ("Im_ratio", lookup(&|c| c.imbalance_degree)),
        ("d_train_test", lookup(&|c| c.train_test_distance)),
        ("prop_miss", lookup(&|c| c.missing_proportion)),
        ("baseline_acc", rows.iter().map(|r| r.baseline).collect()),
    ];
    columns
        .into_iter()
        .map(|(name, vals)| CorrelationRow {
            characteristic: name,
            pearson: pearson(&vals, &gains),
            spearman: spearman(&vals, &gains),
        })
        .collect()
}

/// Render the correlation table.
pub fn correlation_table(rows: &[CorrelationRow]) -> String {
    let mut out = String::new();
    out.push_str("Correlation of dataset characteristics with relative gain G_r\n");
    out.push_str(&format!("{:<14} {:>10} {:>10}\n", "property", "Pearson", "Spearman"));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10.3} {:>10.3}\n",
            r.characteristic, r.pearson, r.spearman
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_augment::taxonomy::PaperTechnique;

    #[test]
    fn pearson_detects_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_invariant_to_monotone_transforms() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn correlate_produces_a_row_per_characteristic() {
        let mk = |name: &str, gain: f64, size: usize| {
            (
                GridResult {
                    dataset: name.to_string(),
                    baseline: 80.0,
                    technique_acc: PaperTechnique::ALL
                        .iter()
                        .map(|t| (t.label().to_string(), 80.0 + gain))
                        .collect(),
                    improvement_pct: gain,
                },
                (
                    name.to_string(),
                    DatasetCharacteristics {
                        n_classes: 2,
                        train_size: size,
                        dim: 3,
                        length: 50,
                        var_train: 0.2,
                        var_test: 0.2,
                        imbalance_degree: 1.0,
                        train_test_distance: 1.0,
                        missing_proportion: 0.0,
                    },
                ),
            )
        };
        let (rows, chars): (Vec<_>, Vec<_>) = vec![
            mk("A", 3.0, 50),
            mk("B", 2.0, 100),
            mk("C", 1.0, 200),
        ]
        .into_iter()
        .unzip();
        let corr = correlate(&rows, &chars);
        assert_eq!(corr.len(), 9);
        let train_size = corr.iter().find(|r| r.characteristic == "Train_size").unwrap();
        // Gains fall as size grows in this synthetic setup.
        assert!(train_size.spearman < -0.9, "{train_size:?}");
        let table = correlation_table(&corr);
        assert!(table.contains("Im_ratio"));
    }
}
