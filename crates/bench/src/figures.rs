//! Figures 2–6: the paper's 2-D illustrations of each taxonomy branch.
//!
//! Each figure shows two classes and the points one technique generates:
//! noise injection (Fig. 2), SMOTE (Fig. 3), TimeGAN (Fig. 4), the
//! label-preserving range technique (Fig. 5) and OHIT (Fig. 6). The
//! functions here produce the underlying point sets as CSV so any plotter
//! can regenerate the figures; the two classes are length-2 univariate
//! series, i.e. literal 2-D points.

use tsda_augment::basic::time::NoiseInjection;
use tsda_augment::generative::timegan::{TimeGan, TimeGanConfig};
use tsda_augment::oversample::Smote;
use tsda_augment::preserve::label::RangeNoise;
use tsda_augment::preserve::structure::Ohit;
use tsda_augment::Augmenter;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};

/// A labelled 2-D point for the figure CSVs.
#[derive(Debug, Clone)]
pub struct FigurePoint {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// `class1`, `class2`, or `generated`.
    pub kind: &'static str,
}

/// The two-class 2-D toy dataset all five figures share: class 1 around
/// (−1.5, −1), class 2 around (+1.5, +1), with class 2 in the minority
/// (the class the techniques augment). For Figure 6, class 2 is bimodal.
pub fn toy_dataset(seed: u64, bimodal_minority: bool) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::empty(2);
    for _ in 0..30 {
        ds.push(
            Mts::univariate(vec![
                -1.5 + normal(&mut rng, 0.0, 0.45),
                -1.0 + normal(&mut rng, 0.0, 0.45),
            ]),
            0,
        );
    }
    for i in 0..12 {
        let (cx, cy) = if bimodal_minority && i % 2 == 0 {
            (2.4, 0.2)
        } else {
            (1.5, 1.0)
        };
        ds.push(
            Mts::univariate(vec![
                cx + normal(&mut rng, 0.0, 0.3),
                cy + normal(&mut rng, 0.0, 0.3),
            ]),
            1,
        );
    }
    ds
}

/// Generate the point set for one figure given the augmentation
/// technique applied to the toy minority class.
pub fn figure_points(aug: &dyn Augmenter, seed: u64, bimodal: bool) -> Vec<FigurePoint> {
    let ds = toy_dataset(seed, bimodal);
    let mut rng = seeded(seed ^ 0xF16);
    let generated = aug
        .synthesize(&ds, 1, 18, &mut rng)
        .expect("toy dataset satisfies every technique's requirements");
    let mut out = Vec::new();
    for (s, l) in ds.iter() {
        out.push(FigurePoint {
            x: s.value(0, 0),
            y: s.value(0, 1),
            kind: if l == 0 { "class1" } else { "class2" },
        });
    }
    for s in &generated {
        out.push(FigurePoint { x: s.value(0, 0), y: s.value(0, 1), kind: "generated" });
    }
    out
}

/// All five figures: `(figure label, CSV content)`.
pub fn all_figures(seed: u64) -> Vec<(&'static str, String)> {
    let quick_gan = TimeGan::new(TimeGanConfig {
        hidden: 8,
        latent: 4,
        iters_embedding: 120,
        iters_supervised: 80,
        iters_joint: 60,
        ..TimeGanConfig::default()
    });
    let figures: Vec<(&'static str, Box<dyn Augmenter>, bool)> = vec![
        ("figure2_noise_injection", Box::new(NoiseInjection::level(1.0)), false),
        ("figure3_smote", Box::new(Smote::default()), false),
        ("figure4_timegan", Box::new(quick_gan), false),
        ("figure5_range_technique", Box::new(RangeNoise::default()), false),
        ("figure6_ohit", Box::new(Ohit::default()), true),
    ];
    figures
        .into_iter()
        .map(|(name, aug, bimodal)| (name, to_csv(&figure_points(aug.as_ref(), seed, bimodal))))
        .collect()
}

/// Serialise points to CSV (`x,y,kind`).
pub fn to_csv(points: &[FigurePoint]) -> String {
    let mut out = String::from("x,y,kind\n");
    for p in points {
        out.push_str(&format!("{:.4},{:.4},{}\n", p.x, p.y, p.kind));
    }
    out
}

/// Quick textual scatter (rows of characters) so figures are inspectable
/// without a plotter. `width × height` character grid.
pub fn ascii_scatter(points: &[FigurePoint], width: usize, height: usize) -> String {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let mut grid = vec![vec![' '; width]; height];
    for p in points {
        let cx = ((p.x - min_x) / (max_x - min_x + 1e-12) * (width - 1) as f64) as usize;
        let cy = ((p.y - min_y) / (max_y - min_y + 1e-12) * (height - 1) as f64) as usize;
        let ch = match p.kind {
            "class1" => 'o',
            "class2" => 'x',
            _ => '*',
        };
        // Generated points overwrite; originals never overwrite generated.
        let cell = &mut grid[height - 1 - cy][cx];
        if *cell == ' ' || ch == '*' {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_dataset_is_imbalanced_two_class() {
        let ds = toy_dataset(1, false);
        assert_eq!(ds.class_counts(), vec![30, 12]);
        assert_eq!(ds.series()[0].shape(), (1, 2));
    }

    #[test]
    fn smote_figure_points_lie_between_minority_points() {
        let pts = figure_points(&Smote::default(), 2, false);
        let gen: Vec<&FigurePoint> = pts.iter().filter(|p| p.kind == "generated").collect();
        assert_eq!(gen.len(), 18);
        for p in gen {
            assert!(p.x > 0.0, "SMOTE left the minority hull: {p:?}");
        }
    }

    #[test]
    fn range_figure_points_stay_on_minority_side() {
        let pts = figure_points(&RangeNoise::default(), 3, false);
        for p in pts.iter().filter(|p| p.kind == "generated") {
            // The decision boundary of the toy problem is roughly the
            // anti-diagonal through the origin.
            assert!(p.x + p.y > -0.4, "crossed the boundary: {p:?}");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let pts = figure_points(&NoiseInjection::level(1.0), 4, false);
        let csv = to_csv(&pts);
        assert!(csv.starts_with("x,y,kind\n"));
        assert_eq!(csv.lines().count(), pts.len() + 1);
    }

    #[test]
    fn ascii_scatter_renders_all_kinds() {
        let pts = figure_points(&Smote::default(), 5, false);
        let art = ascii_scatter(&pts, 40, 16);
        assert!(art.contains('o') && art.contains('x') && art.contains('*'));
    }
}
