//! Criterion benchmarks of the substrate crates: FFT, DTW, EMD, ridge
//! LOOCV, eigendecomposition, and the GRU forward/backward step.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use tsda_core::rng::seeded;
use tsda_core::Mts;
use tsda_linalg::matrix::Matrix;
use tsda_linalg::solve::RidgeLoocv;
use tsda_linalg::SymmetricEig;
use tsda_neuro::layers::{Gru, Layer};
use tsda_neuro::tensor::Tensor;
use tsda_signal::dtw::{dtw_distance, DtwOptions};
use tsda_signal::emd::{emd, EmdOptions};
use tsda_signal::fft::fft_real;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    let signal: Vec<f64> = (0..1024).map(|t| (t as f64 * 0.05).sin()).collect();
    group.bench_function("fft_1024", |b| b.iter(|| fft_real(&signal)));

    let odd_signal: Vec<f64> = signal[..1000].to_vec();
    group.bench_function("fft_bluestein_1000", |b| b.iter(|| fft_real(&odd_signal)));

    let a = Mts::univariate((0..256).map(|t| (t as f64 * 0.1).sin()).collect());
    let b2 = Mts::univariate((0..256).map(|t| (t as f64 * 0.11).cos()).collect());
    group.bench_function("dtw_256_banded", |b| {
        b.iter(|| dtw_distance(&a, &b2, DtwOptions { band_fraction: Some(0.1) }))
    });

    let noisy: Vec<f64> = (0..512)
        .map(|t| (t as f64 * 0.4).sin() + 0.4 * (t as f64 * 0.05).sin())
        .collect();
    group.bench_function("emd_512", |b| {
        b.iter(|| emd(&noisy, EmdOptions { max_imfs: 4, ..EmdOptions::default() }))
    });

    let mut rng = seeded(1);
    let x = Matrix::from_fn(120, 80, |_, _| rng.gen_range(-1.0..1.0));
    let y = Matrix::from_fn(120, 3, |_, _| rng.gen_range(-1.0..1.0));
    group.bench_function("ridge_loocv_120x80", |b| {
        b.iter(|| RidgeLoocv::default().fit(&x, &y))
    });

    let sym = {
        let mut m = x.gram();
        m.add_diagonal(1.0);
        m
    };
    group.bench_function("eig_jacobi_80", |b| b.iter(|| SymmetricEig::new(&sym)));

    group.bench_function("gru_fwd_bwd_16x20x8", |b| {
        let mut gru = Gru::new(8, 16, &mut rng);
        let input =
            Tensor::from_flat(&[16, 20, 8], (0..16 * 20 * 8).map(|v| (v % 7) as f32 * 0.1).collect());
        b.iter(|| {
            let out = gru.forward(&input, true);
            gru.zero_grad();
            gru.backward(&out)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
