//! Criterion benchmarks of every augmentation family's throughput on a
//! fixed synthetic workload (RacketSports-like: 4 classes, 6 dims,
//! length 30).

use criterion::{criterion_group, criterion_main, Criterion};
use tsda_augment::basic::frequency::{AmplitudePerturb, SpecAugmentMask};
use tsda_augment::basic::time::{GuidedWarp, NoiseInjection, TimeWarp};
use tsda_augment::decompose_aug::StlBootstrap;
use tsda_augment::generative::probabilistic::GaussianHmm;
use tsda_augment::generative::statistical::{ArResidualSampler, KernelDensitySampler};
use tsda_augment::generative::timegan::{TimeGan, TimeGanConfig};
use tsda_augment::oversample::{Adasyn, Smote};
use tsda_augment::preserve::label::RangeNoise;
use tsda_augment::preserve::structure::{Inos, Ohit};
use tsda_augment::Augmenter;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};

fn workload() -> tsda_core::Dataset {
    generate(DatasetMeta::get(DatasetId::RacketSports), &GenOptions::ci(42)).train
}

fn bench_augmenters(c: &mut Criterion) {
    let ds = workload();
    let minority = 3; // the smallest class of the imbalanced profile
    let count = 10;
    let mut group = c.benchmark_group("augmenters");
    group.sample_size(10);

    let cases: Vec<(&str, Box<dyn Augmenter>)> = vec![
        ("noise_1", Box::new(NoiseInjection::level(1.0))),
        ("time_warp", Box::new(TimeWarp::default())),
        ("guided_warp", Box::new(GuidedWarp::default())),
        ("amplitude_perturb", Box::new(AmplitudePerturb::default())),
        ("specaugment", Box::new(SpecAugmentMask::default())),
        ("smote", Box::new(Smote::default())),
        ("adasyn", Box::new(Adasyn::default())),
        ("stl_bootstrap", Box::new(StlBootstrap::default())),
        ("kde", Box::new(KernelDensitySampler::default())),
        ("ar_residual", Box::new(ArResidualSampler::default())),
        ("gaussian_hmm", Box::new(GaussianHmm { states: 3, iterations: 5 })),
        ("range_noise", Box::new(RangeNoise::default())),
        ("ohit", Box::new(Ohit::default())),
        ("inos", Box::new(Inos::default())),
        (
            "timegan_tiny",
            Box::new(TimeGan::new(TimeGanConfig {
                hidden: 6,
                latent: 4,
                iters_embedding: 20,
                iters_supervised: 15,
                iters_joint: 10,
                ..TimeGanConfig::default()
            })),
        ),
    ];

    for (name, aug) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = seeded(7);
                aug.synthesize(&ds, minority, count, &mut rng)
                    .expect("benchmark workload satisfies every technique")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_augmenters);
criterion_main!(benches);
