//! Criterion benchmarks of the classifiers: ROCKET transform + ridge
//! fit, InceptionTime forward/backward, and 1-NN DTW prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use tsda_classify::inception::{InceptionTime, InceptionTimeConfig};
use tsda_classify::knn_dtw::KnnDtw;
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};
use tsda_neuro::train::TrainConfig;

fn bench_classifiers(c: &mut Criterion) {
    let data = generate(DatasetMeta::get(DatasetId::RacketSports), &GenOptions::ci(42));
    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);

    group.bench_function("rocket_fit_300_kernels", |b| {
        b.iter(|| {
            let mut rocket = Rocket::new(RocketConfig { n_kernels: 300, ..RocketConfig::default() });
            rocket.fit(&data.train, None, &mut seeded(1));
            rocket
        })
    });

    group.bench_function("rocket_predict", |b| {
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 300, ..RocketConfig::default() });
        rocket.fit(&data.train, None, &mut seeded(2));
        b.iter(|| rocket.predict(&data.test))
    });

    group.bench_function("inception_fit_small", |b| {
        b.iter(|| {
            let cfg = InceptionTimeConfig {
                filters: 2,
                depth: 3,
                kernel_sizes: [9, 5, 3],
                ensemble: 1,
                train: TrainConfig { max_epochs: 3, batch_size: 16, patience: 3, lr: 1e-2 },
                use_lr_range_test: false,
                ..InceptionTimeConfig::default()
            };
            let mut model = InceptionTime::new(cfg);
            model.fit(&data.train, None, &mut seeded(3));
            model
        })
    });

    group.bench_function("knn_dtw_predict", |b| {
        let mut knn = KnnDtw::new(Some(0.1));
        knn.fit(&data.train, None, &mut seeded(4));
        b.iter(|| knn.predict(&data.test))
    });

    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
