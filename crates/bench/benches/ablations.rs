//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! ROCKET feature type, ridge alpha selection, noise level, SMOTE k,
//! OHIT shrinkage, TimeGAN iteration budget.
//!
//! These measure *runtime* under Criterion; the accompanying accuracy
//! ablations live in the `ablation_accuracy` example.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use tsda_augment::basic::time::NoiseInjection;
use tsda_augment::generative::timegan::{TimeGan, TimeGanConfig};
use tsda_augment::oversample::Smote;
use tsda_augment::preserve::structure::Ohit;
use tsda_augment::Augmenter;
use tsda_core::rng::seeded;
use tsda_datasets::registry::{DatasetId, DatasetMeta};
use tsda_datasets::synth::{generate, GenOptions};
use tsda_classify::rocket::{Rocket, RocketConfig, RocketFeatures};
use tsda_classify::traits::Classifier;
use tsda_linalg::cov::shrinkage_covariance;
use tsda_linalg::matrix::Matrix;
use tsda_linalg::solve::RidgeLoocv;

fn bench_ablations(c: &mut Criterion) {
    let data = generate(DatasetMeta::get(DatasetId::RacketSports), &GenOptions::ci(42));
    let train = &data.train;
    let minority = 3;

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Noise level sweep (accuracy impact measured in the example; here:
    // the cost is level-independent, which the bench demonstrates).
    for level in [0.5, 1.0, 3.0, 5.0] {
        group.bench_function(format!("noise_level_{level}"), |b| {
            let aug = NoiseInjection::level(level);
            b.iter(|| aug.synthesize(train, minority, 10, &mut seeded(1)).unwrap())
        });
    }

    // SMOTE k sweep: neighbour search cost grows with k only mildly.
    for k in [1usize, 3, 5, 10] {
        group.bench_function(format!("smote_k_{k}"), |b| {
            let aug = Smote { k };
            b.iter(|| aug.synthesize(train, minority, 10, &mut seeded(2)).unwrap())
        });
    }

    // OHIT kNN parameter (drives cluster granularity and covariance count).
    for k in [3usize, 5, 8] {
        group.bench_function(format!("ohit_k_{k}"), |b| {
            let aug = Ohit { k };
            b.iter(|| aug.synthesize(train, minority, 10, &mut seeded(3)).unwrap())
        });
    }

    // ROCKET feature type: PPV-only halves the feature matrix.
    for (label, features) in [("ppv_max", RocketFeatures::PpvAndMax), ("ppv_only", RocketFeatures::PpvOnly)] {
        group.bench_function(format!("rocket_features_{label}"), |b| {
            b.iter(|| {
                let mut rocket = Rocket::new(RocketConfig {
                    n_kernels: 150,
                    n_threads: 2,
                    features,
                });
                rocket.fit(train, None, &mut seeded(9));
                rocket
            })
        });
    }

    // Ridge: fixed alpha vs LOOCV sweep.
    let mut rng = seeded(4);
    let x = Matrix::from_fn(100, 60, |_, _| rng.gen_range(-1.0..1.0));
    let y = Matrix::from_fn(100, 2, |_, _| rng.gen_range(-1.0..1.0));
    group.bench_function("ridge_fixed_alpha", |b| {
        b.iter(|| RidgeLoocv::fixed(1.0).fit(&x, &y))
    });
    group.bench_function("ridge_loocv_10_alphas", |b| {
        b.iter(|| RidgeLoocv::default().fit(&x, &y))
    });

    // Shrinkage covariance cost vs plain covariance in the
    // high-dimensional small-sample regime OHIT faces.
    let small = Matrix::from_fn(8, 120, |_, _| rng.gen_range(-1.0..1.0));
    group.bench_function("shrinkage_cov_8x120", |b| {
        b.iter(|| shrinkage_covariance(&small))
    });

    // TimeGAN iteration budget.
    for (label, iters) in [("tiny", 10usize), ("small", 40)] {
        group.bench_function(format!("timegan_{label}"), |b| {
            let aug = TimeGan::new(TimeGanConfig {
                hidden: 6,
                latent: 4,
                iters_embedding: iters,
                iters_supervised: iters,
                iters_joint: iters / 2,
                ..TimeGanConfig::default()
            });
            b.iter(|| aug.synthesize(train, minority, 4, &mut seeded(5)).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
