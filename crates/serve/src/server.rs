//! The TCP accept loop and per-connection request handlers.
//!
//! `serve` binds, spawns the batch workers and the accept thread, and
//! returns a [`ServerHandle`] immediately — callers (the `tsda_serve`
//! bin, the smoke test) decide when to stop by flipping the handle's
//! shutdown flag. The accept socket runs non-blocking so the loop can
//! poll that flag; each connection gets its own thread answering one
//! response per request, in order, so clients may pipeline freely.
//!
//! Connections negotiate their protocol from the first bytes: a
//! [`proto2::PREAMBLE`] switches the connection to length-prefixed
//! binary frames (protocol v2); anything else is newline-delimited
//! JSON. The mode is fixed for the connection's lifetime — see
//! [`crate::proto2`] for the framing rules.
//!
//! Shutdown drains: when the flag flips, each connection handler does a
//! final non-blocking read pass and answers every complete request
//! (line or frame) it has already received before closing, and the
//! batch workers run until every queue is empty — a request the server
//! *accepted* is a request it answers, even under shutdown.
//!
//! When [`ServerConfig::faults`] carries a
//! [`FaultPlan`](crate::faults::FaultPlan), the handlers corrupt
//! request bytes, delay/tear/drop response writes, stall workers, and
//! shed submits on the plan's deterministic schedule (see
//! [`crate::faults`]). When [`ServerConfig::admission`] is set, predict
//! requests pass a per-client token bucket first and may be refused
//! with `throttled` replies (see [`crate::admission`]).

use crate::admission::{Admission, AdmissionConfig};
use crate::batcher::{BatchConfig, Batcher, SubmitError};
use crate::faults::{self, FaultPlan};
use crate::pipelines::PipelineRegistry;
use crate::proto2;
use crate::protocol::{
    augment_response_into, decode_series, error_response, error_response_into,
    overloaded_response_into, parse_request, predict_response_into, result_response_into,
    throttled_response_into, Request,
};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tsda_core::{Mts, TsdaError};

/// Server knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Micro-batcher flush policy.
    pub batch: BatchConfig,
    /// Optional deterministic fault-injection plan (None = fault-free).
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional per-client admission quota (None = admit everything).
    pub admission: Option<AdmissionConfig>,
    /// Named augmentation pipelines served through the `augment` op
    /// (None = the op answers "unknown pipeline" for every name).
    pub pipelines: Option<Arc<PipelineRegistry>>,
}

impl ServerConfig {
    /// The default production config on a concrete bind address.
    pub fn on(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), ..Self::default() }
    }
}

/// A running server: the bound address plus the stop lever.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters for this server.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Request shutdown and block until the accept loop, connection
    /// handlers, and batch workers have drained. Every request already
    /// read from a socket is answered before its connection closes;
    /// every job already queued is predicted before its worker exits.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind and start serving. Returns once the socket is listening; the
/// accept loop, connection handlers, and batch workers all run on
/// background threads until [`ServerHandle::shutdown`].
pub fn serve(registry: ModelRegistry, config: ServerConfig) -> Result<ServerHandle, TsdaError> {
    if registry.is_empty() && config.pipelines.as_ref().is_none_or(|p| p.is_empty()) {
        return Err(TsdaError::InvalidParameter(
            "serve needs at least one model or augmentation pipeline".into(),
        ));
    }
    let addr_spec = if config.addr.is_empty() { "127.0.0.1:7878" } else { config.addr.as_str() };
    let listener = TcpListener::bind(addr_spec)
        .map_err(|e| TsdaError::InvalidParameter(format!("bind {addr_spec}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| TsdaError::InvalidParameter(format!("local_addr: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| TsdaError::InvalidParameter(format!("set_nonblocking: {e}")))?;

    let registry = Arc::new(registry);
    let pipelines = config.pipelines.unwrap_or_else(|| Arc::new(PipelineRegistry::new()));
    let stats = Arc::new(ServerStats::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let faults = config.faults.clone();
    let admission = config.admission.map(|c| Arc::new(Admission::new(c)));
    let batcher = Arc::new(Batcher::start(
        Arc::clone(&registry),
        Arc::clone(&pipelines),
        Arc::clone(&stats),
        config.batch,
        faults.clone(),
    )?);

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let registry = Arc::clone(&registry);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("tsda-accept".into())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &registry,
                    &pipelines,
                    &stats,
                    &batcher,
                    &shutdown,
                    faults.as_ref(),
                    admission.as_ref(),
                );
                // Sole owner now that the loop exited and every
                // connection thread is joined: drop the queues so the
                // workers drain and exit, then join them.
                if let Ok(b) = Arc::try_unwrap(batcher).map_err(|_| ()) {
                    b.shutdown();
                }
            })
            .map_err(|e| TsdaError::InvalidParameter(format!("spawn accept thread: {e}")))?
    };

    Ok(ServerHandle { addr, shutdown, stats, accept_thread: Some(accept_thread) })
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<ModelRegistry>,
    pipelines: &Arc<PipelineRegistry>,
    stats: &Arc<ServerStats>,
    batcher: &Arc<Batcher>,
    shutdown: &Arc<AtomicBool>,
    faults: Option<&Arc<FaultPlan>>,
    admission: Option<&Arc<Admission>>,
) {
    let mut conn_threads = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Response lines are small; without TCP_NODELAY Nagle
                // holds them for the peer's delayed ACK (~40ms).
                stream.set_nodelay(true).ok();
                let registry = Arc::clone(registry);
                let pipelines = Arc::clone(pipelines);
                let stats = Arc::clone(stats);
                let batcher = Arc::clone(batcher);
                let shutdown = Arc::clone(shutdown);
                let faults = faults.cloned();
                let admission = admission.cloned();
                if let Ok(t) = std::thread::Builder::new().name("tsda-conn".into()).spawn(
                    move || {
                        handle_connection(
                            stream,
                            &registry,
                            &pipelines,
                            &stats,
                            &batcher,
                            &shutdown,
                            faults.as_deref(),
                            admission.as_deref(),
                        )
                    },
                ) {
                    conn_threads.push(t);
                }
                // Opportunistically reap finished handlers so a
                // long-lived server doesn't accumulate join handles.
                conn_threads.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Everything a connection handler needs to answer requests, bundled so
/// the per-protocol paths share one signature.
struct ConnCtx<'a> {
    registry: &'a ModelRegistry,
    pipelines: &'a PipelineRegistry,
    stats: &'a ServerStats,
    batcher: &'a Batcher,
    faults: Option<&'a FaultPlan>,
    admission: Option<&'a Admission>,
    /// Admission key: the peer IP (reconnecting keeps the same bucket).
    peer: String,
}

/// The wire protocol a connection settled on.
enum Mode {
    /// No request bytes seen yet.
    Undecided,
    /// Newline-delimited JSON (protocol v1).
    Ndjson,
    /// Length-prefixed binary frames (protocol v2).
    V2,
}

/// Outcome of a negotiation attempt over the current buffer.
enum Negotiated {
    /// Mode decided (or already was); proceed to answer.
    Proceed,
    /// First byte matches the preamble but the rest hasn't arrived.
    NeedMore,
    /// Preamble started but mismatched: refuse and close.
    Refuse,
}

/// Decide the connection mode from the first buffered bytes. The
/// preamble's first byte (0xB2) can never start a JSON line, so one
/// byte settles NDJSON; a full preamble match settles v2 and consumes
/// the preamble bytes.
fn negotiate(buf: &mut Vec<u8>, mode: &mut Mode) -> Negotiated {
    if !matches!(mode, Mode::Undecided) || buf.is_empty() {
        return Negotiated::Proceed;
    }
    if buf[0] != proto2::PREAMBLE[0] {
        *mode = Mode::Ndjson;
        return Negotiated::Proceed;
    }
    if buf.len() < proto2::PREAMBLE.len() {
        return Negotiated::NeedMore;
    }
    if buf[..proto2::PREAMBLE.len()] == proto2::PREAMBLE {
        buf.drain(..proto2::PREAMBLE.len());
        *mode = Mode::V2;
        Negotiated::Proceed
    } else {
        Negotiated::Refuse
    }
}

/// Per-connection reusable buffers. At steady state a connection
/// answers requests without allocating for line extraction or response
/// encoding — everything request-sized lives here and is cleared (not
/// freed) between requests.
#[derive(Default)]
struct ConnScratch {
    /// One request line, drained out of the read buffer.
    line: Vec<u8>,
    /// One NDJSON response line.
    response: String,
    /// One v2 reply frame.
    frame: Vec<u8>,
}

/// Answer everything complete in `buf` for the negotiated mode.
/// Returns false when the connection must close.
fn answer_buffered(
    mode: &Mode,
    buf: &mut Vec<u8>,
    writer: &mut TcpStream,
    ctx: &ConnCtx<'_>,
    scratch: &mut ConnScratch,
) -> bool {
    match mode {
        Mode::Undecided => true,
        Mode::Ndjson => answer_buffered_lines(buf, writer, ctx, scratch),
        Mode::V2 => answer_buffered_frames(buf, writer, ctx, scratch),
    }
}

/// Pop complete lines off `buf` and answer each in order. Returns false
/// when a write failed (peer gone or fault-injected drop) and the
/// connection should close.
fn answer_buffered_lines(
    buf: &mut Vec<u8>,
    writer: &mut TcpStream,
    ctx: &ConnCtx<'_>,
    scratch: &mut ConnScratch,
) -> bool {
    let ConnScratch { line, response, .. } = scratch;
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        line.clear();
        line.extend(buf.drain(..=pos));
        line.pop(); // the '\n'
        if let Some(plan) = ctx.faults {
            // Wire corruption happens between the peer's write and our
            // parse; the parser must turn it into an error reply.
            plan.corrupt_line(line);
        }
        // Borrowed in the common (valid UTF-8) case; invalid bytes are
        // already a parse-error path.
        let text = String::from_utf8_lossy(line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        response.clear();
        handle_line(text, ctx, response);
        response.push('\n');
        if faults::write_response(writer, response.as_bytes(), ctx.faults).is_err() {
            return false;
        }
    }
    true
}

/// Pop complete v2 frames off `buf` and answer each in order. Returns
/// false when the connection must close: a failed write, or a corrupted
/// *length prefix* — unlike body corruption (caught by the checksum and
/// answered with an error reply on an intact stream), a bad prefix
/// desynchronises framing beyond recovery.
fn answer_buffered_frames(
    buf: &mut Vec<u8>,
    writer: &mut TcpStream,
    ctx: &ConnCtx<'_>,
    scratch: &mut ConnScratch,
) -> bool {
    loop {
        let mut raw = match proto2::take_frame(buf) {
            Ok(Some(raw)) => raw,
            Ok(None) => return true,
            Err(msg) => {
                let reply = proto2::encode_reply_error(0, proto2::ErrCode::Error, &msg, 0);
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort reply: the connection closes whether or
                // not the write lands, because framing cannot be
                // resynchronised after a bad length prefix.
                let _delivered = faults::write_response(writer, &reply, ctx.faults).is_ok();
                return false;
            }
        };
        if let Some(plan) = ctx.faults {
            // Corrupt after the boundary is known: frame extraction used
            // the (uncorrupted) length prefix, so the stream stays in
            // sync and the checksum turns the mangled payload into an
            // error reply instead of a different request.
            plan.corrupt_line(&mut raw);
        }
        scratch.frame.clear();
        handle_frame(&raw, ctx, &mut scratch.frame);
        if faults::write_response(writer, &scratch.frame, ctx.faults).is_err() {
            return false;
        }
    }
}

/// Read requests, answer each in order. Uses a short read timeout so
/// the handler notices shutdown within ~100ms even on an idle
/// keep-alive connection. On shutdown the handler drains: one final
/// read pass picks up anything the peer already sent, and every
/// complete request gets its response before the socket closes.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    pipelines: &PipelineRegistry,
    stats: &ServerStats,
    batcher: &Batcher,
    shutdown: &AtomicBool,
    faults: Option<&FaultPlan>,
    admission: Option<&Admission>,
) {
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let ctx = ConnCtx { registry, pipelines, stats, batcher, faults, admission, peer };
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if reader.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    let mut writer = stream;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut mode = Mode::Undecided;
    let mut scratch = ConnScratch::default();
    loop {
        match negotiate(&mut buf, &mut mode) {
            Negotiated::Proceed => {
                if !answer_buffered(&mode, &mut buf, &mut writer, &ctx, &mut scratch) {
                    return;
                }
            }
            Negotiated::NeedMore => {}
            Negotiated::Refuse => {
                // A broken preamble is not attributable to either
                // protocol; answer once in NDJSON (any client can read
                // it) and close.
                let mut resp = error_response(0, "bad protocol preamble").into_bytes();
                resp.push(b'\n');
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort refusal; the connection closes either way.
                let _delivered = faults::write_response(&mut writer, &resp, ctx.faults).is_ok();
                return;
            }
        }
        if shutdown.load(Ordering::Relaxed) {
            // Final drain: requests the peer pipelined before shutdown
            // may still sit in the kernel buffer. Read until the socket
            // goes quiet, then answer everything complete.
            loop {
                match reader.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break, // WouldBlock/TimedOut: socket quiet
                }
            }
            if matches!(negotiate(&mut buf, &mut mode), Negotiated::Proceed) {
                answer_buffered(&mode, &mut buf, &mut writer, &ctx, &mut scratch);
            }
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// How one predict request resolved, protocol-independent. The two
/// wire paths render this into their reply encoding.
enum PredictOutcome {
    /// A label came back.
    Label {
        /// Predicted class label.
        label: usize,
        /// Batch size the prediction rode in.
        batch: usize,
        /// Server-side latency, microseconds.
        micros: u64,
    },
    /// Bounded-queue (or fault-plan) load shed.
    Shed {
        /// Backoff hint, milliseconds.
        retry_ms: u64,
    },
    /// Admission-control refusal.
    Throttled {
        /// Backoff hint, milliseconds.
        retry_ms: u64,
    },
    /// Any other refusal, with its message.
    Failed(String),
}

/// The shared predict core: admission, registry lookup, shape
/// validation, batched prediction. Counts every outcome in `stats`.
fn run_predict(model: &str, series: Mts, ctx: &ConnCtx<'_>) -> PredictOutcome {
    let stats = ctx.stats;
    stats.requests.fetch_add(1, Ordering::Relaxed);
    if let Some(adm) = ctx.admission {
        if let Err(retry_ms) = adm.admit(&ctx.peer) {
            stats.throttled.fetch_add(1, Ordering::Relaxed);
            return PredictOutcome::Throttled { retry_ms };
        }
    }
    let entry = match ctx.registry.get(model) {
        Some(e) => e,
        None => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return PredictOutcome::Failed(format!("unknown model {model:?}"));
        }
    };
    if let Err(msg) = entry.validate(&series) {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        return PredictOutcome::Failed(msg);
    }
    let pending = match ctx.batcher.submit(model, series) {
        Ok(pending) => pending,
        Err(SubmitError::Overloaded { retry_ms }) => {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            return PredictOutcome::Shed { retry_ms };
        }
        Err(SubmitError::UnknownModel | SubmitError::UnknownPipeline) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return PredictOutcome::Failed(format!("unknown model {model:?}"));
        }
        Err(SubmitError::Closed) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return PredictOutcome::Failed("server shutting down".to_string());
        }
    };
    // recv() always answers: an accepted job either gets its batch
    // result or (if its worker abandoned it) a shutdown error.
    let reply = pending.recv();
    match reply.result {
        Ok(label) => PredictOutcome::Label { label, batch: reply.batch_size, micros: reply.micros },
        Err(msg) => PredictOutcome::Failed(msg),
    }
}

/// How one augment request resolved, protocol-independent. Mirrors
/// [`PredictOutcome`] but carries the transformed series.
enum AugmentOutcome {
    /// The transformed series came back.
    Series {
        /// Augmented series, bit-identical to offline execution.
        series: Mts,
        /// Batch size the job rode in.
        batch: usize,
        /// Server-side latency, microseconds.
        micros: u64,
    },
    /// Bounded-queue (or fault-plan) load shed.
    Shed {
        /// Backoff hint, milliseconds.
        retry_ms: u64,
    },
    /// Admission-control refusal.
    Throttled {
        /// Backoff hint, milliseconds.
        retry_ms: u64,
    },
    /// Any other refusal, with its message.
    Failed(String),
}

/// The shared augment core: admission, pipeline lookup, batched
/// execution on the pipeline's worker. Counts every outcome in `stats`.
fn run_augment(
    pipeline: &str,
    series: Mts,
    seed: u64,
    index: u64,
    ctx: &ConnCtx<'_>,
) -> AugmentOutcome {
    let stats = ctx.stats;
    stats.requests.fetch_add(1, Ordering::Relaxed);
    if let Some(adm) = ctx.admission {
        if let Err(retry_ms) = adm.admit(&ctx.peer) {
            stats.throttled.fetch_add(1, Ordering::Relaxed);
            return AugmentOutcome::Throttled { retry_ms };
        }
    }
    if ctx.pipelines.get(pipeline).is_none() {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        return AugmentOutcome::Failed(format!("unknown pipeline {pipeline:?}"));
    }
    let pending = match ctx.batcher.submit_augment(pipeline, series, seed, index) {
        Ok(pending) => pending,
        Err(SubmitError::Overloaded { retry_ms }) => {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            return AugmentOutcome::Shed { retry_ms };
        }
        Err(SubmitError::UnknownModel | SubmitError::UnknownPipeline) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return AugmentOutcome::Failed(format!("unknown pipeline {pipeline:?}"));
        }
        Err(SubmitError::Closed) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return AugmentOutcome::Failed("server shutting down".to_string());
        }
    };
    // recv() always answers: an accepted job either gets its batch
    // result or (if its worker abandoned it) a shutdown error.
    let reply = pending.recv();
    match reply.result {
        Ok(series) => {
            AugmentOutcome::Series { series, batch: reply.batch_size, micros: reply.micros }
        }
        Err(msg) => AugmentOutcome::Failed(msg),
    }
}

/// `stats` endpoint payload: the server-wide counter snapshot plus the
/// per-queue rows (depth, submitted, shed, ticket_allocs) from the
/// batcher — the live evidence that the warm pools cover the load.
fn stats_value(ctx: &ConnCtx<'_>) -> serde::Value {
    let mut v = ctx.stats.snapshot().to_value();
    if let serde::Value::Object(pairs) = &mut v {
        pairs.push(("queues".into(), ctx.batcher.queue_stats()));
    }
    v
}

/// Answer one NDJSON request line, appending the response line to `out`
/// (no trailing newline — the connection loop adds it).
fn handle_line(line: &str, ctx: &ConnCtx<'_>, out: &mut String) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_response_into(out, id, &msg);
        }
    };
    match request {
        Request::Predict { id, model, series } => {
            let mts = match decode_series(&series) {
                Ok(s) => s,
                Err(e) => {
                    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    return error_response_into(out, id, &format!("bad series: {e}"));
                }
            };
            match run_predict(&model, mts, ctx) {
                PredictOutcome::Label { label, batch, micros } => {
                    predict_response_into(out, id, &model, label, batch, micros)
                }
                PredictOutcome::Shed { retry_ms } => overloaded_response_into(out, id, retry_ms),
                PredictOutcome::Throttled { retry_ms } => {
                    throttled_response_into(out, id, retry_ms)
                }
                PredictOutcome::Failed(msg) => error_response_into(out, id, &msg),
            }
        }
        Request::Augment { id, pipeline, seed, index, series } => {
            let mts = match decode_series(&series) {
                Ok(s) => s,
                Err(e) => {
                    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    return error_response_into(out, id, &format!("bad series: {e}"));
                }
            };
            match run_augment(&pipeline, mts, seed, index, ctx) {
                AugmentOutcome::Series { series, batch, micros } => {
                    augment_response_into(out, id, &pipeline, &series, batch, micros)
                }
                AugmentOutcome::Shed { retry_ms } => overloaded_response_into(out, id, retry_ms),
                AugmentOutcome::Throttled { retry_ms } => {
                    throttled_response_into(out, id, retry_ms)
                }
                AugmentOutcome::Failed(msg) => error_response_into(out, id, &msg),
            }
        }
        Request::Stats { id } => result_response_into(out, id, &stats_value(ctx)),
        Request::List { id } => result_response_into(out, id, &ctx.registry.describe()),
        Request::Ping { id } => result_response_into(out, id, &serde::Value::Str("pong".into())),
    }
}

/// Answer one raw v2 frame (`body + crc`), appending one reply frame
/// to `out`.
fn handle_frame(raw: &[u8], ctx: &ConnCtx<'_>, out: &mut Vec<u8>) {
    let body = match proto2::check_frame(raw) {
        Ok(b) => b,
        Err(msg) => {
            // Body corruption: the checksum caught it, the stream is
            // still framed, so answer and keep serving. Id 0 — the real
            // id is untrustworthy inside a corrupted frame.
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            return proto2::encode_reply_error_into(out, 0, proto2::ErrCode::Error, &msg, 0);
        }
    };
    let request = match proto2::decode_request(body) {
        Ok(r) => r,
        Err((id, msg)) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            return proto2::encode_reply_error_into(out, id, proto2::ErrCode::Error, &msg, 0);
        }
    };
    match request {
        proto2::Request2::Predict { id, model, series } => {
            match run_predict(&model, series, ctx) {
                PredictOutcome::Label { label, batch, micros } => {
                    proto2::encode_reply_predict_into(out, id, label as u64, batch as u32, micros)
                }
                PredictOutcome::Shed { retry_ms } => proto2::encode_reply_error_into(
                    out,
                    id,
                    proto2::ErrCode::Overloaded,
                    "overloaded",
                    retry_ms,
                ),
                PredictOutcome::Throttled { retry_ms } => proto2::encode_reply_error_into(
                    out,
                    id,
                    proto2::ErrCode::Throttled,
                    "throttled",
                    retry_ms,
                ),
                PredictOutcome::Failed(msg) => {
                    proto2::encode_reply_error_into(out, id, proto2::ErrCode::Error, &msg, 0)
                }
            }
        }
        proto2::Request2::Augment { id, pipeline, seed, index, series } => {
            match run_augment(&pipeline, series, seed, index, ctx) {
                AugmentOutcome::Series { series, batch, micros } => {
                    proto2::encode_reply_augment_into(out, id, &series, batch as u32, micros)
                }
                AugmentOutcome::Shed { retry_ms } => proto2::encode_reply_error_into(
                    out,
                    id,
                    proto2::ErrCode::Overloaded,
                    "overloaded",
                    retry_ms,
                ),
                AugmentOutcome::Throttled { retry_ms } => proto2::encode_reply_error_into(
                    out,
                    id,
                    proto2::ErrCode::Throttled,
                    "throttled",
                    retry_ms,
                ),
                AugmentOutcome::Failed(msg) => {
                    proto2::encode_reply_error_into(out, id, proto2::ErrCode::Error, &msg, 0)
                }
            }
        }
        proto2::Request2::Stats { id } => {
            proto2::encode_reply_result_into(out, id, &stats_value(ctx))
        }
        proto2::Request2::List { id } => {
            proto2::encode_reply_result_into(out, id, &ctx.registry.describe())
        }
        proto2::Request2::Ping { id } => {
            proto2::encode_reply_result_into(out, id, &serde::Value::Str("pong".into()))
        }
    }
}
