//! The TCP accept loop and per-connection request handlers.
//!
//! `serve` binds, spawns the batch workers and the accept thread, and
//! returns a [`ServerHandle`] immediately — callers (the `tsda_serve`
//! bin, the smoke test) decide when to stop by flipping the handle's
//! shutdown flag. The accept socket runs non-blocking so the loop can
//! poll that flag; each connection gets its own thread reading
//! newline-delimited requests and writing one response line per
//! request, in order, so clients may pipeline freely.
//!
//! Shutdown drains: when the flag flips, each connection handler does a
//! final non-blocking read pass and answers every complete request line
//! it has already received before closing, and the batch workers run
//! until every queue is empty — a request the server *accepted* is a
//! request it answers, even under shutdown.
//!
//! When [`ServerConfig::faults`] carries a
//! [`FaultPlan`](crate::faults::FaultPlan), the handlers corrupt
//! request bytes, delay/tear/drop response writes, stall workers, and
//! shed submits on the plan's deterministic schedule (see
//! [`crate::faults`]).

use crate::batcher::{BatchConfig, Batcher, SubmitError};
use crate::faults::{self, FaultPlan};
use crate::protocol::{
    decode_series, error_response, overloaded_response, parse_request, predict_response,
    result_response, Request,
};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tsda_core::TsdaError;

/// Server knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Micro-batcher flush policy.
    pub batch: BatchConfig,
    /// Optional deterministic fault-injection plan (None = fault-free).
    pub faults: Option<Arc<FaultPlan>>,
}

impl ServerConfig {
    /// The default production config on a concrete bind address.
    pub fn on(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), ..Self::default() }
    }
}

/// A running server: the bound address plus the stop lever.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters for this server.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Request shutdown and block until the accept loop, connection
    /// handlers, and batch workers have drained. Every request already
    /// read from a socket is answered before its connection closes;
    /// every job already queued is predicted before its worker exits.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind and start serving. Returns once the socket is listening; the
/// accept loop, connection handlers, and batch workers all run on
/// background threads until [`ServerHandle::shutdown`].
pub fn serve(registry: ModelRegistry, config: ServerConfig) -> Result<ServerHandle, TsdaError> {
    if registry.is_empty() {
        return Err(TsdaError::InvalidParameter("serve needs at least one model".into()));
    }
    let addr_spec = if config.addr.is_empty() { "127.0.0.1:7878" } else { config.addr.as_str() };
    let listener = TcpListener::bind(addr_spec)
        .map_err(|e| TsdaError::InvalidParameter(format!("bind {addr_spec}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| TsdaError::InvalidParameter(format!("local_addr: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| TsdaError::InvalidParameter(format!("set_nonblocking: {e}")))?;

    let registry = Arc::new(registry);
    let stats = Arc::new(ServerStats::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let faults = config.faults.clone();
    let batcher = Arc::new(Batcher::start(
        Arc::clone(&registry),
        Arc::clone(&stats),
        config.batch,
        faults.clone(),
    )?);

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let registry = Arc::clone(&registry);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("tsda-accept".into())
            .spawn(move || {
                accept_loop(&listener, &registry, &stats, &batcher, &shutdown, faults.as_ref());
                // Sole owner now that the loop exited and every
                // connection thread is joined: drop the queues so the
                // workers drain and exit, then join them.
                if let Ok(b) = Arc::try_unwrap(batcher).map_err(|_| ()) {
                    b.shutdown();
                }
            })
            .map_err(|e| TsdaError::InvalidParameter(format!("spawn accept thread: {e}")))?
    };

    Ok(ServerHandle { addr, shutdown, stats, accept_thread: Some(accept_thread) })
}

fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<ModelRegistry>,
    stats: &Arc<ServerStats>,
    batcher: &Arc<Batcher>,
    shutdown: &Arc<AtomicBool>,
    faults: Option<&Arc<FaultPlan>>,
) {
    let mut conn_threads = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Response lines are small; without TCP_NODELAY Nagle
                // holds them for the peer's delayed ACK (~40ms).
                stream.set_nodelay(true).ok();
                let registry = Arc::clone(registry);
                let stats = Arc::clone(stats);
                let batcher = Arc::clone(batcher);
                let shutdown = Arc::clone(shutdown);
                let faults = faults.cloned();
                if let Ok(t) = std::thread::Builder::new().name("tsda-conn".into()).spawn(
                    move || {
                        handle_connection(
                            stream,
                            &registry,
                            &stats,
                            &batcher,
                            &shutdown,
                            faults.as_deref(),
                        )
                    },
                ) {
                    conn_threads.push(t);
                }
                // Opportunistically reap finished handlers so a
                // long-lived server doesn't accumulate join handles.
                conn_threads.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Pop complete lines off `buf` and answer each in order. Returns false
/// when a write failed (peer gone or fault-injected drop) and the
/// connection should close.
fn answer_buffered_lines(
    buf: &mut Vec<u8>,
    writer: &mut TcpStream,
    registry: &ModelRegistry,
    stats: &ServerStats,
    batcher: &Batcher,
    faults: Option<&FaultPlan>,
) -> bool {
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let mut line: Vec<u8> = buf.drain(..=pos).collect();
        line.pop(); // the '\n'
        if let Some(plan) = faults {
            // Wire corruption happens between the peer's write and our
            // parse; the parser must turn it into an error reply.
            plan.corrupt_line(&mut line);
        }
        let line = String::from_utf8_lossy(&line).into_owned();
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut response = handle_line(line, registry, stats, batcher);
        response.push('\n');
        if faults::write_response(writer, response.as_bytes(), faults).is_err() {
            return false;
        }
    }
    true
}

/// Read newline-delimited requests, answer each in order. Uses a short
/// read timeout so the handler notices shutdown within ~100ms even on
/// an idle keep-alive connection. On shutdown the handler drains: one
/// final read pass picks up anything the peer already sent, and every
/// complete line gets its response before the socket closes.
fn handle_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    stats: &ServerStats,
    batcher: &Batcher,
    shutdown: &AtomicBool,
    faults: Option<&FaultPlan>,
) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if reader.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    let mut writer = stream;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        if !answer_buffered_lines(&mut buf, &mut writer, registry, stats, batcher, faults) {
            return;
        }
        if shutdown.load(Ordering::Relaxed) {
            // Final drain: requests the peer pipelined before shutdown
            // may still sit in the kernel buffer. Read until the socket
            // goes quiet, then answer everything complete.
            loop {
                match reader.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break, // WouldBlock/TimedOut: socket quiet
                }
            }
            answer_buffered_lines(&mut buf, &mut writer, registry, stats, batcher, faults);
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn handle_line(
    line: &str,
    registry: &ModelRegistry,
    stats: &ServerStats,
    batcher: &Batcher,
) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(id, &msg);
        }
    };
    match request {
        Request::Predict { id, model, series } => {
            stats.requests.fetch_add(1, Ordering::Relaxed);
            let entry = match registry.get(&model) {
                Some(e) => e,
                None => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return error_response(id, &format!("unknown model {model:?}"));
                }
            };
            let mts = match decode_series(&series) {
                Ok(s) => s,
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return error_response(id, &format!("bad series: {e}"));
                }
            };
            if let Err(msg) = entry.validate(&mts) {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return error_response(id, &msg);
            }
            let rx = match batcher.submit(&model, mts) {
                Ok(rx) => rx,
                Err(SubmitError::Overloaded { retry_ms }) => {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    return overloaded_response(id, retry_ms);
                }
                Err(SubmitError::UnknownModel) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return error_response(id, &format!("unknown model {model:?}"));
                }
                Err(SubmitError::Closed) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    return error_response(id, "server shutting down");
                }
            };
            match rx.recv() {
                Ok(reply) => match reply.result {
                    Ok(label) => {
                        predict_response(id, &model, label, reply.batch_size, reply.micros)
                    }
                    Err(msg) => error_response(id, &msg),
                },
                Err(_) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    error_response(id, "server shutting down")
                }
            }
        }
        Request::Stats { id } => result_response(id, stats.snapshot().to_value()),
        Request::List { id } => result_response(id, registry.describe()),
        Request::Ping { id } => result_response(id, serde::Value::Str("pong".into())),
    }
}
