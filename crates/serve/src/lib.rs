//! `tsda-serve`: a std-only batched TCP inference server over the
//! workspace's saved models.
//!
//! The ROADMAP's north star is a system that serves prediction traffic,
//! not a benchmark that trains and exits. This crate is that serving
//! layer, built from four pieces:
//!
//! * [`protocol`] — newline-delimited JSON over TCP. Predict payloads
//!   carry series in the `.ts` data-line layout
//!   (`tsda_datasets::ts_format::parse_series_line`), so the wire format
//!   and archive IO share one parser.
//! * [`registry`] — named models loaded at startup from
//!   [`tsda_classify::persist`] files. The feature-based models are
//!   served through their `&self` prediction paths (no locks);
//!   InceptionTime sits behind a mutex because its forward pass caches
//!   activations.
//! * [`pipelines`] — named augmentation pipelines
//!   ([`tsda_augment::declarative::AugPipeline`]) loaded at startup
//!   from a TOML file and served through the `augment` op on both
//!   protocols; results are bit-identical to offline execution because
//!   every pipeline is a pure function of `(seed, sample index)`.
//! * [`batcher`] — one worker thread per model running an adaptive
//!   micro-batch loop: flush when `max_batch` requests are pending or
//!   `max_wait` has elapsed since the first, then run a single batched
//!   predict on the shared compute pool. Per-series predictions are
//!   batch-composition independent, so served labels are bit-identical
//!   to offline `Classifier::predict` (asserted by the smoke test).
//! * [`server`] — the accept loop, connection handlers, stats counters,
//!   and graceful shutdown via a flag the SIGTERM/ctrl-c handler
//!   ([`signal`]) and tests both flip. Shutdown drains: accepted
//!   requests are answered and queued jobs predicted before threads
//!   exit.
//! * [`faults`] — a seeded, deterministic fault-injection plan
//!   (delayed/torn/dropped writes, corrupted request bytes, worker
//!   stalls, load shedding) the chaos suites run the whole stack under.
//! * [`client`] — connection + readiness probe + a retrying client
//!   (capped exponential backoff with seeded jitter, per-request
//!   timeouts, reconnect-and-replay) that survives every fault the
//!   plan injects.
//! * [`proto2`] — the length-prefixed, CRC-framed binary protocol v2,
//!   negotiated per connection by a 4-byte preamble (NDJSON stays the
//!   default), so the predict hot path decodes raw f64 bit patterns
//!   instead of re-parsing text.
//! * [`admission`] — per-client token-bucket quotas in front of the
//!   batcher, refusing with `throttled` + `retry_ms` replies the
//!   retrying client honours as backoff floors.
//! * [`router`] — a frontend that spawns/fronts N replica servers with
//!   per-model shard placement, least-loaded or rendezvous-hash
//!   routing, ping health checks, and automatic restart of dead
//!   replicas under load.
//!
//! Three binaries drive it: `tsda_serve` (train-or-load models, then
//! serve; `--fault-seed` arms the plan), `tsda_router` (the replica
//! fleet frontend), and `tsda_client` (single requests, readiness
//! probe, or a closed-loop load generator that writes
//! `BENCH_serve.json`).

pub mod admission;
pub mod batcher;
pub mod client;
pub mod faults;
pub mod pipelines;
pub mod proto2;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;
pub mod signal;
pub mod stats;

pub use admission::{Admission, AdmissionConfig};
pub use batcher::{BatchConfig, SubmitError};
pub use client::{ClientCounters, Proto, RetryPolicy, RetryingClient, WireRequest};
pub use faults::{FaultKind, FaultPlan, FaultRates};
pub use pipelines::PipelineRegistry;
pub use registry::{ModelEntry, ModelRegistry};
pub use router::{ReplicaSpec, RoutePolicy, Router, RouterConfig, RouterHandle};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::{ServerStats, StatsSnapshot};
