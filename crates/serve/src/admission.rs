//! Admission control: per-client token-bucket quotas.
//!
//! The batcher's bounded queue sheds load *after* a request has been
//! parsed, validated, and enqueued — it protects the predict workers,
//! not the frontend. This module generalises that backpressure to the
//! connection boundary: each client (keyed by peer IP, so reconnecting
//! does not reset the budget) owns a token bucket refilled at
//! `rate_per_s` with capacity `burst`. A request that finds the bucket
//! empty is refused with a `throttled` reply carrying a `retry_ms`
//! hint — the milliseconds until one token will have refilled — which
//! [`crate::client::RetryingClient`] honours as a backoff floor exactly
//! like the batcher's `overloaded` hint.
//!
//! Buckets hold fractional tokens (f64) so low rates work: at
//! `rate_per_s = 2` a client gets one admit every 500 ms, not a burst
//! of two per rounded second. The table is a `BTreeMap` behind a mutex;
//! admission is two comparisons and a multiply, so the critical section
//! is tens of nanoseconds and uncontended in practice (connection
//! handlers only touch it once per request). A poisoned mutex fails
//! *open* — admitting everything beats wedging the frontend on a
//! panicked sibling thread.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Quota knobs. `None` at the server level disables admission control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Steady-state tokens (requests) refilled per second per client.
    pub rate_per_s: f64,
    /// Bucket capacity: how many requests a client may burst after
    /// idling.
    pub burst: f64,
}

impl AdmissionConfig {
    /// A quota of `rate_per_s` with `burst` headroom. Both are clamped
    /// to a small positive floor so a zero/negative flag value cannot
    /// divide by zero or refuse everything forever.
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        Self { rate_per_s: rate_per_s.max(0.001), burst: burst.max(1.0) }
    }
}

/// One client's bucket: tokens at a point in time.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    /// Microseconds since the admission clock started.
    updated_us: u64,
}

/// Cap on tracked clients; the table cannot grow without bound under
/// address-spoofing or mass-reconnect. Beyond the cap, new clients
/// share one overflow bucket — they get *a* quota, just a collective
/// one, which under that kind of pressure is the right degradation.
const MAX_BUCKETS: usize = 4096;

/// Shared key for clients beyond [`MAX_BUCKETS`].
const OVERFLOW_KEY: &str = "\u{0}overflow";

/// The admission controller: one token bucket per client key.
pub struct Admission {
    config: AdmissionConfig,
    started: Instant,
    buckets: Mutex<BTreeMap<String, Bucket>>,
    /// Requests refused (for the stats endpoint; the per-request
    /// `throttled` counter lives in [`crate::stats::ServerStats`]).
    throttled: std::sync::atomic::AtomicU64,
}

impl Admission {
    /// A controller enforcing `config` for every client key.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            started: Instant::now(),
            buckets: Mutex::new(BTreeMap::new()),
            throttled: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The active quota.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Total refusals so far.
    pub fn throttled_total(&self) -> u64 {
        self.throttled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Admit or refuse one request from `key` at the current time.
    /// On refusal, returns the `retry_ms` hint.
    pub fn admit(&self, key: &str) -> Result<(), u64> {
        let now_us = self.started.elapsed().as_micros() as u64;
        self.admit_at(key, now_us)
    }

    /// Clock-injected core of [`Admission::admit`], unit-testable
    /// without sleeping: `now_us` is microseconds on a monotonic clock
    /// shared by all calls.
    pub fn admit_at(&self, key: &str, now_us: u64) -> Result<(), u64> {
        // lock-order: buckets is a leaf lock — nothing else is acquired
        // and nothing blocks while it is held; the guard covers only
        // the bucket read-modify-write below.
        let mut table = match self.buckets.lock() {
            Ok(t) => t,
            // Fail open: a poisoned table must not take down admission
            // for every healthy client.
            Err(_) => return Ok(()),
        };
        let key = if table.len() >= MAX_BUCKETS && !table.contains_key(key) {
            OVERFLOW_KEY
        } else {
            key
        };
        let bucket = table
            .entry(key.to_string())
            .or_insert(Bucket { tokens: self.config.burst, updated_us: now_us });
        // Refill for the elapsed interval, clamped to capacity. The
        // clock is monotonic so the saturating_sub only guards the
        // overflow-bucket case where entries are shared across callers.
        let elapsed_s = now_us.saturating_sub(bucket.updated_us) as f64 / 1e6;
        bucket.tokens = (bucket.tokens + elapsed_s * self.config.rate_per_s).min(self.config.burst);
        bucket.updated_us = now_us;
        let deficit = if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            None
        } else {
            Some(1.0 - bucket.tokens)
        };
        drop(table);
        // Refusal accounting and the hint math run with the table
        // released so a throttled client never extends the critical
        // section for admitted ones.
        match deficit {
            None => Ok(()),
            Some(deficit) => {
                self.throttled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                // Milliseconds until one whole token is available, rounded
                // up and floored at 1 so the hint is always actionable.
                let ms = (deficit / self.config.rate_per_s * 1e3).ceil();
                Err((ms as u64).max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_then_throttles_with_actionable_hint() {
        let a = Admission::new(AdmissionConfig::new(10.0, 3.0));
        for i in 0..3 {
            assert!(a.admit_at("c1", 0).is_ok(), "burst admit {i}");
        }
        let hint = a.admit_at("c1", 0).unwrap_err();
        // One token at 10/s takes 100 ms.
        assert_eq!(hint, 100);
        assert_eq!(a.throttled_total(), 1);
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let a = Admission::new(AdmissionConfig::new(10.0, 1.0));
        assert!(a.admit_at("c", 0).is_ok());
        assert!(a.admit_at("c", 0).is_err(), "empty immediately after");
        // 50 ms = half a token: still refused, hint shrinks to 50 ms.
        assert_eq!(a.admit_at("c", 50_000).unwrap_err(), 50);
        // 100 ms total = one full token.
        assert!(a.admit_at("c", 100_000).is_ok());
    }

    #[test]
    fn refill_clamps_at_burst_capacity() {
        let a = Admission::new(AdmissionConfig::new(1000.0, 2.0));
        assert!(a.admit_at("c", 0).is_ok());
        // An hour idle still only banks `burst` tokens.
        let hour_us = 3_600_000_000;
        assert!(a.admit_at("c", hour_us).is_ok());
        assert!(a.admit_at("c", hour_us).is_ok());
        assert!(a.admit_at("c", hour_us).is_err());
    }

    #[test]
    fn clients_have_independent_buckets() {
        let a = Admission::new(AdmissionConfig::new(1.0, 1.0));
        assert!(a.admit_at("alice", 0).is_ok());
        assert!(a.admit_at("alice", 0).is_err());
        assert!(a.admit_at("bob", 0).is_ok(), "bob unaffected by alice's spend");
    }

    #[test]
    fn fractional_rates_space_admits_evenly() {
        let a = Admission::new(AdmissionConfig::new(2.0, 1.0));
        assert!(a.admit_at("c", 0).is_ok());
        assert!(a.admit_at("c", 250_000).is_err(), "only half a token at 250 ms");
        assert!(a.admit_at("c", 500_000).is_ok(), "one token at 500 ms");
    }

    #[test]
    fn bucket_table_is_capped_with_a_shared_overflow_bucket() {
        let a = Admission::new(AdmissionConfig::new(1.0, 1.0));
        for i in 0..MAX_BUCKETS {
            let _admitted = a.admit_at(&format!("client-{i}"), 0);
        }
        // Two fresh clients now share the overflow bucket: the first
        // spends its single token, the second is refused.
        assert!(a.admit_at("late-1", 0).is_ok());
        assert!(a.admit_at("late-2", 0).is_err());
        let n = a.buckets.lock().map(|t| t.len()).unwrap_or(0);
        assert_eq!(n, MAX_BUCKETS + 1, "cap + one overflow bucket");
    }

    #[test]
    fn config_clamps_degenerate_flag_values() {
        let c = AdmissionConfig::new(0.0, 0.0);
        assert!(c.rate_per_s > 0.0);
        assert!(c.burst >= 1.0);
    }
}
