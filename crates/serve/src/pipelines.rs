//! Named-pipeline registry: load declarative augmentation pipelines at
//! startup from a TOML file and serve them through the `augment` op.
//!
//! Mirrors [`crate::registry::ModelRegistry`]: a `BTreeMap` read
//! through a plain `Arc` with no locking — [`AugPipeline`] execution is
//! `&self` and every stochastic choice derives from the request's
//! `(seed, index)`, so concurrent batch workers never contend.

use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use tsda_augment::declarative::{AugPipeline, PipelineConfig};
use tsda_core::TsdaError;

/// All pipelines served by one server instance, keyed by name.
#[derive(Default)]
pub struct PipelineRegistry {
    pipelines: BTreeMap<String, Arc<AugPipeline>>,
}

impl std::fmt::Debug for PipelineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineRegistry").field("names", &self.names()).finish()
    }
}

impl PipelineRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a parsed config (names are unique post-parse).
    pub fn from_config(cfg: &PipelineConfig) -> Result<Self, TsdaError> {
        let mut reg = Self::new();
        for p in AugPipeline::from_config(cfg)? {
            reg.insert(p);
        }
        Ok(reg)
    }

    /// Parse and build from TOML text.
    pub fn from_toml(text: &str) -> Result<Self, TsdaError> {
        Self::from_config(&PipelineConfig::parse(text)?)
    }

    /// Load from a TOML file.
    pub fn from_file(path: &Path) -> Result<Self, TsdaError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TsdaError::Io(format!("read {}: {e}", path.display())))?;
        Self::from_toml(&text)
    }

    /// Insert a pipeline under its name (replacing any previous holder).
    pub fn insert(&mut self, pipeline: AugPipeline) {
        self.pipelines.insert(pipeline.name().to_string(), Arc::new(pipeline));
    }

    /// Look up a pipeline by name.
    pub fn get(&self, name: &str) -> Option<&Arc<AugPipeline>> {
        self.pipelines.get(name)
    }

    /// Pipeline names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.pipelines.keys().cloned().collect()
    }

    /// Number of registered pipelines.
    pub fn len(&self) -> usize {
        self.pipelines.len()
    }

    /// True when no pipelines are registered.
    pub fn is_empty(&self) -> bool {
        self.pipelines.is_empty()
    }

    /// Listing payload (merged into observability output).
    pub fn describe(&self) -> Value {
        Value::Array(
            self.pipelines
                .values()
                .map(|p| {
                    Value::Object(vec![
                        ("name".into(), Value::Str(p.name().to_string())),
                        ("stages".into(), Value::Num(p.n_stages() as f64)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
[pipeline]
name = "light"

[[stage]]
choose = ["jitter", "scaling"]
prob = 0.8

[pipeline]
name = "heavy"

[[stage]]
choose = ["time_warp"]

[[stage]]
choose = ["noise_3", "masking"]
prob = 0.5
"#;

    #[test]
    fn loads_and_lists_pipelines() {
        let reg = PipelineRegistry::from_toml(TOML).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["heavy".to_string(), "light".to_string()]);
        assert!(reg.get("light").is_some());
        assert!(reg.get("nope").is_none());
        let listing = serde_json::to_string(&reg.describe()).unwrap();
        assert!(listing.contains("\"heavy\""));
    }

    #[test]
    fn bad_toml_is_a_typed_error() {
        let err = PipelineRegistry::from_toml("[pipeline]\nname = \"p\"\n").unwrap_err();
        assert!(matches!(err, TsdaError::Parse { .. }), "{err:?}");
        let err = PipelineRegistry::from_file(Path::new("/nonexistent/p.toml")).unwrap_err();
        assert!(matches!(err, TsdaError::Io(_)), "{err:?}");
    }
}
