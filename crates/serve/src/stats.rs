//! Lock-free serving counters: request/batch totals and latency
//! distributions, exposed on the `stats` endpoint.
//!
//! Latencies go into a log-linear-bucketed histogram of atomic
//! counters, so recording from connection handlers and batch workers
//! never takes a lock. Pure log₂ buckets proved too coarse in
//! practice: with whole-octave resolution every latency between 4.1 ms
//! and 8.2 ms lands in one bucket, which is how `BENCH_serve.json`
//! shipped `request_p50_us == request_p99_us == 8192`. Each octave is
//! therefore split into [`SUB_BUCKETS`] linear sub-buckets (the
//! HdrHistogram layout), bounding the relative error of any reported
//! percentile at `1/SUB_BUCKETS` ≈ 3%. Values below [`SUB_BUCKETS`]
//! are exact. Percentiles are upper bounds of the matched sub-bucket;
//! the load generator still computes exact percentiles client-side
//! from its own samples for `BENCH_serve.json`.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Linear sub-buckets per octave (power of two).
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Octaves above the exact linear region: `micros` is u64, so the top
/// set bit is at most 63 and groups `SUB_BITS..=63` need coverage.
const N_GROUPS: usize = 64 - SUB_BITS as usize;
const N_BUCKETS: usize = SUB_BUCKETS * (N_GROUPS + 1);

/// Bucket index for one microsecond value. Values below `SUB_BUCKETS`
/// index directly (exact); above, the octave of the top set bit picks
/// the group and the next `SUB_BITS` bits pick the linear sub-bucket
/// within it. The first group (values `SUB_BUCKETS..2·SUB_BUCKETS`)
/// continues the linear region seamlessly.
fn bucket_index(micros: u64) -> usize {
    if micros < SUB_BUCKETS as u64 {
        return micros as usize;
    }
    let msb = 63 - micros.leading_zeros();
    let group = (msb - SUB_BITS) as usize;
    let sub = ((micros >> (msb - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket, the value percentiles report.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    // Widened: the top group's upper bound is exactly 2^64, which
    // overflows u64 (group ≤ 58 keeps the u128 shift in range).
    let upper = (((SUB_BUCKETS + sub + 1) as u128) << group) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// Log-linear latency histogram over microseconds (≈3% resolution).
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Approximate percentile (`q` in 0..=1): the upper bound of the
    /// sub-bucket holding the q-th sample (within ≈3% of the true
    /// value).
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }
}

/// All counters for one server instance.
pub struct ServerStats {
    started: Instant,
    /// Predict requests received (before validation).
    pub requests: AtomicU64,
    /// Predict requests answered with an error.
    pub errors: AtomicU64,
    /// Predict requests refused with an `overloaded` reply (bounded
    /// queue full or fault-plan shed). Not counted as errors: shedding
    /// is backpressure working, not the server failing.
    pub shed: AtomicU64,
    /// Predict requests refused with a `throttled` reply (per-client
    /// admission quota exceeded). Like `shed`, backpressure — not an
    /// error.
    pub throttled: AtomicU64,
    /// Batches executed by the micro-batch workers.
    pub batches: AtomicU64,
    /// Series predicted across all batches.
    pub batched_items: AtomicU64,
    /// Per-request wall latency (enqueue → response ready).
    pub request_latency: LatencyHistogram,
    /// Per-batch predict call latency.
    pub batch_latency: LatencyHistogram,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_items: AtomicU64::new(0),
            request_latency: LatencyHistogram::default(),
            batch_latency: LatencyHistogram::default(),
        }
    }

    /// Point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let uptime_s = self.started.elapsed().as_secs_f64();
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_items = self.batched_items.load(Ordering::Relaxed);
        StatsSnapshot {
            uptime_s,
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            batches,
            batched_items,
            mean_batch: if batches == 0 { 0.0 } else { batched_items as f64 / batches as f64 },
            requests_per_s: if uptime_s > 0.0 { requests as f64 / uptime_s } else { 0.0 },
            request_p50_us: self.request_latency.percentile(0.50),
            request_p99_us: self.request_latency.percentile(0.99),
            request_mean_us: self.request_latency.mean(),
            batch_mean_us: self.batch_latency.mean(),
        }
    }
}

/// A snapshot of [`ServerStats`], serialisable for the `stats` endpoint.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Predict requests received.
    pub requests: u64,
    /// Predict requests answered with an error.
    pub errors: u64,
    /// Predict requests refused with an `overloaded` reply.
    pub shed: u64,
    /// Predict requests refused with a `throttled` reply.
    pub throttled: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Series predicted across all batches.
    pub batched_items: u64,
    /// Mean batch size (`batched_items / batches`).
    pub mean_batch: f64,
    /// Predict requests per second since start.
    pub requests_per_s: f64,
    /// Approximate p50 request latency, microseconds.
    pub request_p50_us: u64,
    /// Approximate p99 request latency, microseconds.
    pub request_p99_us: u64,
    /// Mean request latency, microseconds.
    pub request_mean_us: f64,
    /// Mean batched-predict call latency, microseconds.
    pub batch_mean_us: f64,
}

impl StatsSnapshot {
    /// The snapshot as a JSON value tree (for embedding in responses).
    pub fn to_value(&self) -> Value {
        serde::Serialize::to_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // Small values are exact.
        assert_eq!(h.percentile(0.5), 30);
        let p99 = h.percentile(0.99);
        assert!((1000..=1032).contains(&p99), "p99 {p99} not within 3.2% above 1000");
        assert!((h.mean() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn sub_buckets_separate_values_one_octave_apart_reported_identically_before() {
        // The committed BENCH_serve.json regression: 5880 µs and
        // 9727 µs both reported as 8192 under whole-octave buckets.
        assert_ne!(bucket_index(5880), bucket_index(9727));
        let h = LatencyHistogram::default();
        h.record(5880);
        assert!((5880..=5880 + 5880 / 31).contains(&h.percentile(0.5)));
        let h = LatencyHistogram::default();
        h.record(9727);
        assert!((9727..=9727 + 9727 / 31).contains(&h.percentile(0.5)));
    }

    #[test]
    fn bucket_layout_is_monotone_and_within_3_percent() {
        let mut prev_idx = 0usize;
        let mut v = 1u64;
        while v < (1 << 40) {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            assert!(idx < N_BUCKETS);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} below sample {v}");
            assert!(
                (upper - v) as f64 <= (v as f64 / 16.0).max(1.0),
                "upper {upper} too far above {v}"
            );
            prev_idx = idx;
            v = v * 31 / 29 + 1;
        }
        // Extremes stay in range.
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
        assert_eq!(bucket_upper(bucket_index(u64::MAX)), u64::MAX);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_upper(0), 0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = ServerStats::new();
        stats.requests.fetch_add(10, Ordering::Relaxed);
        stats.batches.fetch_add(2, Ordering::Relaxed);
        stats.batched_items.fetch_add(10, Ordering::Relaxed);
        stats.request_latency.record(100);
        let snap = stats.snapshot();
        assert_eq!(snap.mean_batch, 5.0);
        let text = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.requests, 10);
        assert_eq!(back.mean_batch, 5.0);
    }
}
