//! Lock-free serving counters: request/batch totals and latency
//! distributions, exposed on the `stats` endpoint.
//!
//! Latencies go into a log₂-bucketed histogram of atomic counters, so
//! recording from connection handlers and batch workers never takes a
//! lock. Percentiles read from the histogram are upper bounds of the
//! matched bucket (≤ 2× resolution) — good enough for an operational
//! endpoint; the load generator computes exact percentiles client-side
//! from its own samples for `BENCH_serve.json`.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const N_BUCKETS: usize = 40;

/// Log₂-bucketed latency histogram over microseconds.
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(N_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Approximate percentile (`q` in 0..=1): the upper bound of the
    /// bucket holding the q-th sample.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i holds values in (2^(i-1), 2^i].
                return 1u64 << i;
            }
        }
        1u64 << (N_BUCKETS - 1)
    }
}

/// All counters for one server instance.
pub struct ServerStats {
    started: Instant,
    /// Predict requests received (before validation).
    pub requests: AtomicU64,
    /// Predict requests answered with an error.
    pub errors: AtomicU64,
    /// Predict requests refused with an `overloaded` reply (bounded
    /// queue full or fault-plan shed). Not counted as errors: shedding
    /// is backpressure working, not the server failing.
    pub shed: AtomicU64,
    /// Batches executed by the micro-batch workers.
    pub batches: AtomicU64,
    /// Series predicted across all batches.
    pub batched_items: AtomicU64,
    /// Per-request wall latency (enqueue → response ready).
    pub request_latency: LatencyHistogram,
    /// Per-batch predict call latency.
    pub batch_latency: LatencyHistogram,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_items: AtomicU64::new(0),
            request_latency: LatencyHistogram::default(),
            batch_latency: LatencyHistogram::default(),
        }
    }

    /// Point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let uptime_s = self.started.elapsed().as_secs_f64();
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_items = self.batched_items.load(Ordering::Relaxed);
        StatsSnapshot {
            uptime_s,
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches,
            batched_items,
            mean_batch: if batches == 0 { 0.0 } else { batched_items as f64 / batches as f64 },
            requests_per_s: if uptime_s > 0.0 { requests as f64 / uptime_s } else { 0.0 },
            request_p50_us: self.request_latency.percentile(0.50),
            request_p99_us: self.request_latency.percentile(0.99),
            request_mean_us: self.request_latency.mean(),
            batch_mean_us: self.batch_latency.mean(),
        }
    }
}

/// A snapshot of [`ServerStats`], serialisable for the `stats` endpoint.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Predict requests received.
    pub requests: u64,
    /// Predict requests answered with an error.
    pub errors: u64,
    /// Predict requests refused with an `overloaded` reply.
    pub shed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Series predicted across all batches.
    pub batched_items: u64,
    /// Mean batch size (`batched_items / batches`).
    pub mean_batch: f64,
    /// Predict requests per second since start.
    pub requests_per_s: f64,
    /// Approximate p50 request latency, microseconds.
    pub request_p50_us: u64,
    /// Approximate p99 request latency, microseconds.
    pub request_p99_us: u64,
    /// Mean request latency, microseconds.
    pub request_mean_us: f64,
    /// Mean batched-predict call latency, microseconds.
    pub batch_mean_us: f64,
}

impl StatsSnapshot {
    /// The snapshot as a JSON value tree (for embedding in responses).
    pub fn to_value(&self) -> Value {
        serde::Serialize::to_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.percentile(0.5);
        assert!((16..=64).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(0.99);
        assert!(p99 >= 1000, "p99 {p99}");
        assert!((h.mean() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = ServerStats::new();
        stats.requests.fetch_add(10, Ordering::Relaxed);
        stats.batches.fetch_add(2, Ordering::Relaxed);
        stats.batched_items.fetch_add(10, Ordering::Relaxed);
        stats.request_latency.record(100);
        let snap = stats.snapshot();
        assert_eq!(snap.mean_batch, 5.0);
        let text = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.requests, 10);
        assert_eq!(back.mean_batch, 5.0);
    }
}
