//! The wire protocol: newline-delimited JSON request/response frames.
//!
//! One request per line, one response line per request, answered in
//! order per connection (clients may pipeline). Requests:
//!
//! ```text
//! {"id":1,"op":"predict","model":"rocket","series":"1.0,2.0:0.5,0.5"}
//! {"id":2,"op":"stats"}
//! {"id":3,"op":"list"}
//! {"id":4,"op":"ping"}
//! {"id":5,"op":"augment","pipeline":"light","seed":7,"index":3,"series":"1.0,2.0"}
//! ```
//!
//! `series` is the `.ts` data-line layout (dimensions split by `:`,
//! values by `,`, `?` for missing) parsed by
//! [`tsda_datasets::ts_format::parse_series_line`]. Responses always
//! carry the request `id` and an `ok` flag:
//!
//! ```text
//! {"id":1,"ok":true,"model":"rocket","label":2,"batch":7,"micros":412}
//! {"id":1,"ok":false,"error":"unknown model \"nope\""}
//! ```
//!
//! Parsing is hand-rolled over the vendored JSON value tree so missing
//! or mistyped fields produce error *responses*, never panics.

use serde::Value;
use tsda_core::{Mts, TsdaError};
use tsda_datasets::ts_format::parse_series_line;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one series with the named model.
    Predict {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Registry name of the target model.
        model: String,
        /// The series, `.ts` data-line encoded.
        series: String,
    },
    /// Server-side counters (uptime, throughput, latency, batch sizes).
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Names + input shapes of every served model.
    List {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Run one series through a named augmentation pipeline.
    ///
    /// The reply series is bit-identical to offline
    /// `AugPipeline::apply_one(series, seed, index)` — `(seed, index)`
    /// fully determine every stochastic choice, so any replica returns
    /// the same bytes.
    Augment {
        /// Correlation id.
        id: u64,
        /// Registry name of the target pipeline.
        pipeline: String,
        /// Master seed for the derived per-sample streams.
        seed: u64,
        /// Sample index within the seeded corpus.
        index: u64,
        /// The input series, `.ts` data-line encoded.
        series: String,
    },
}

impl Request {
    /// The correlation id of any request.
    pub fn id(&self) -> u64 {
        match self {
            Self::Predict { id, .. }
            | Self::Stats { id }
            | Self::List { id }
            | Self::Ping { id }
            | Self::Augment { id, .. } => *id,
        }
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_f64).map(|n| n as u64)
}

fn field_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Parse one request line. The error string is ready to ship back in an
/// error response (the id is recovered when possible so the client can
/// correlate it; id 0 otherwise).
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = serde_json::parse_value(line).map_err(|e| (0, format!("bad json: {e}")))?;
    let id = field_u64(&v, "id").unwrap_or(0);
    let op = field_str(&v, "op").ok_or((id, "missing \"op\" field".to_string()))?;
    match op.as_str() {
        "predict" => {
            let model =
                field_str(&v, "model").ok_or((id, "predict needs a \"model\" field".to_string()))?;
            let series =
                field_str(&v, "series").ok_or((id, "predict needs a \"series\" field".to_string()))?;
            Ok(Request::Predict { id, model, series })
        }
        "stats" => Ok(Request::Stats { id }),
        "list" => Ok(Request::List { id }),
        "ping" => Ok(Request::Ping { id }),
        "augment" => {
            let pipeline = field_str(&v, "pipeline")
                .ok_or((id, "augment needs a \"pipeline\" field".to_string()))?;
            let series = field_str(&v, "series")
                .ok_or((id, "augment needs a \"series\" field".to_string()))?;
            let seed =
                field_u64(&v, "seed").ok_or((id, "augment needs a \"seed\" field".to_string()))?;
            let index =
                field_u64(&v, "index").ok_or((id, "augment needs an \"index\" field".to_string()))?;
            Ok(Request::Augment { id, pipeline, seed, index, series })
        }
        other => Err((id, format!("unknown op {other:?}"))),
    }
}

/// Decode a predict payload into a series.
///
/// Hot path (`tsda_analyze` R3): runs once per predict request; the
/// decoded series buffer is the one allowlisted allocation.
#[doc(alias = "tsda::hot")]
pub fn decode_series(series: &str) -> Result<Mts, TsdaError> {
    parse_series_line(series)
}

/// Append `s` as a JSON string literal. The escape set matches the
/// vendored serialiser byte-for-byte (`"`, `\`, `\n`, `\r`, `\t`,
/// `\uXXXX` for remaining control characters), so the `_into` builders
/// below produce exactly the bytes `serde_json::to_string` would.
fn push_json_str(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// The response builders come in pairs: an `_into` form appending to a
// caller-owned buffer — the connection loop reuses one String per
// connection, so a warm connection answers without allocating for the
// envelope — and an owned form delegating to it. The JSON is written
// directly (same key order, same escaping, integer-printed counters)
// and is byte-identical to what the old Value-tree path produced.

/// Successful predict response, appended to `out`.
pub fn predict_response_into(
    out: &mut String,
    id: u64,
    model: &str,
    label: usize,
    batch: usize,
    micros: u64,
) {
    use std::fmt::Write;
    let _ = write!(out, "{{\"id\":{id},\"ok\":true,\"model\":");
    push_json_str(out, model);
    let _ = write!(out, ",\"label\":{label},\"batch\":{batch},\"micros\":{micros}}}");
}

/// Successful predict response.
pub fn predict_response(id: u64, model: &str, label: usize, batch: usize, micros: u64) -> String {
    let mut out = String::new();
    predict_response_into(&mut out, id, model, label, batch, micros);
    out
}

/// Successful augment response, appended to `out`. The series is `.ts`
/// data-line encoded; Rust's `{}` float formatting prints the shortest
/// round-trip representation, so finite values survive the text hop
/// bit-exactly.
pub fn augment_response_into(
    out: &mut String,
    id: u64,
    pipeline: &str,
    series: &Mts,
    batch: usize,
    micros: u64,
) {
    use std::fmt::Write;
    let _ = write!(out, "{{\"id\":{id},\"ok\":true,\"pipeline\":");
    push_json_str(out, pipeline);
    out.push_str(",\"series\":");
    push_json_str(out, &tsda_datasets::ts_format::format_series_line(series));
    let _ = write!(out, ",\"batch\":{batch},\"micros\":{micros}}}");
}

/// Successful augment response.
pub fn augment_response(id: u64, pipeline: &str, series: &Mts, batch: usize, micros: u64) -> String {
    let mut out = String::new();
    augment_response_into(&mut out, id, pipeline, series, batch, micros);
    out
}

/// Error response for any request, appended to `out`.
pub fn error_response_into(out: &mut String, id: u64, message: &str) {
    use std::fmt::Write;
    let _ = write!(out, "{{\"id\":{id},\"ok\":false,\"error\":");
    push_json_str(out, message);
    out.push('}');
}

/// Error response for any request.
pub fn error_response(id: u64, message: &str) -> String {
    let mut out = String::new();
    error_response_into(&mut out, id, message);
    out
}

/// The marker error string in load-shedding replies.
pub const OVERLOADED: &str = "overloaded";

/// Load-shedding reply, appended to `out`.
pub fn overloaded_response_into(out: &mut String, id: u64, retry_ms: u64) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"id\":{id},\"ok\":false,\"error\":\"{OVERLOADED}\",\"retry_ms\":{retry_ms}}}"
    );
}

/// Load-shedding reply: the queue is full (or the fault plan sheds);
/// the client should back off roughly `retry_ms` and retry.
pub fn overloaded_response(id: u64, retry_ms: u64) -> String {
    let mut out = String::new();
    overloaded_response_into(&mut out, id, retry_ms);
    out
}

/// The marker error string in admission-control refusals.
pub const THROTTLED: &str = "throttled";

/// Admission-control refusal, appended to `out`.
pub fn throttled_response_into(out: &mut String, id: u64, retry_ms: u64) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"id\":{id},\"ok\":false,\"error\":\"{THROTTLED}\",\"retry_ms\":{retry_ms}}}"
    );
}

/// Admission-control refusal: the client's token bucket is empty; one
/// token refills in roughly `retry_ms`.
pub fn throttled_response(id: u64, retry_ms: u64) -> String {
    let mut out = String::new();
    throttled_response_into(&mut out, id, retry_ms);
    out
}

/// Generic success response wrapping a payload under `"result"`,
/// appended to `out`.
pub fn result_response_into(out: &mut String, id: u64, result: &Value) {
    use std::fmt::Write;
    let _ = write!(out, "{{\"id\":{id},\"ok\":true,\"result\":");
    serde_json::append_to_string(result, out);
    out.push('}');
}

/// Generic success response wrapping a payload under `"result"`.
pub fn result_response(id: u64, result: Value) -> String {
    let mut out = String::new();
    result_response_into(&mut out, id, &result);
    out
}

/// A parsed server response, as seen by clients.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoed correlation id.
    pub id: u64,
    /// Success flag.
    pub ok: bool,
    /// Predicted label (predict responses only).
    pub label: Option<usize>,
    /// Batch size the prediction rode in (predict responses only).
    pub batch: Option<usize>,
    /// Server-side latency in microseconds (predict responses only).
    pub micros: Option<u64>,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// Backoff hint carried by `overloaded` replies, milliseconds.
    pub retry_ms: Option<u64>,
    /// Result payload for stats/list responses.
    pub result: Option<Value>,
    /// Augmented series (augment responses only).
    pub series: Option<Mts>,
}

impl Response {
    /// True for a load-shedding reply (`{"ok":false,"error":"overloaded",…}`).
    pub fn is_overloaded(&self) -> bool {
        !self.ok && self.error.as_deref() == Some(OVERLOADED)
    }

    /// True for an admission-control refusal
    /// (`{"ok":false,"error":"throttled",…}`).
    pub fn is_throttled(&self) -> bool {
        !self.ok && self.error.as_deref() == Some(THROTTLED)
    }

    /// True for any backpressure refusal — batcher shed, fault-plan
    /// shed, or admission throttle, from a replica or the router. All
    /// carry `retry_ms` hints that floor the client's next backoff.
    pub fn is_shed(&self) -> bool {
        self.is_overloaded() || self.is_throttled()
    }
}

/// Parse one response line (client side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = serde_json::parse_value(line).map_err(|e| format!("bad json: {e}"))?;
    let ok = match v.get("ok") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("missing \"ok\" field".into()),
    };
    let series = match field_str(&v, "series") {
        Some(text) => Some(parse_series_line(&text).map_err(|e| format!("bad series: {e}"))?),
        None => None,
    };
    Ok(Response {
        id: field_u64(&v, "id").unwrap_or(0),
        ok,
        label: field_u64(&v, "label").map(|n| n as usize),
        batch: field_u64(&v, "batch").map(|n| n as usize),
        micros: field_u64(&v, "micros"),
        error: field_str(&v, "error"),
        retry_ms: field_u64(&v, "retry_ms"),
        result: v.get("result").cloned(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_round_trip() {
        let r = parse_request(r#"{"id":7,"op":"predict","model":"rocket","series":"1,2:3,4"}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Predict { id: 7, model: "rocket".into(), series: "1,2:3,4".into() }
        );
        let s = decode_series("1,2:3,4").unwrap();
        assert_eq!(s.n_dims(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn malformed_requests_return_errors_with_ids() {
        assert!(parse_request("not json").is_err());
        let (id, msg) = parse_request(r#"{"id":9,"op":"predict"}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("model"));
        let (id, _) = parse_request(r#"{"id":3,"op":"warp"}"#).unwrap_err();
        assert_eq!(id, 3);
    }

    #[test]
    fn responses_parse_back() {
        let line = predict_response(5, "rocket", 2, 8, 1234);
        let r = parse_response(&line).unwrap();
        assert!(r.ok);
        assert_eq!((r.id, r.label, r.batch, r.micros), (5, Some(2), Some(8), Some(1234)));
        let e = parse_response(&error_response(6, "nope")).unwrap();
        assert!(!e.ok);
        assert_eq!(e.error.as_deref(), Some("nope"));
    }

    #[test]
    fn overloaded_response_round_trips_the_retry_hint() {
        let line = overloaded_response(12, 25);
        let r = parse_response(&line).unwrap();
        assert!(!r.ok);
        assert!(r.is_overloaded());
        assert_eq!((r.id, r.retry_ms), (12, Some(25)));
        // Non-overloaded errors do not claim to be shedding.
        let e = parse_response(&error_response(3, "bad series")).unwrap();
        assert!(!e.is_overloaded());
        assert_eq!(e.retry_ms, None);
    }

    #[test]
    fn throttled_response_round_trips_and_is_shed() {
        let r = parse_response(&throttled_response(4, 120)).unwrap();
        assert!(r.is_throttled() && r.is_shed() && !r.is_overloaded());
        assert_eq!((r.id, r.retry_ms), (4, Some(120)));
        let o = parse_response(&overloaded_response(5, 20)).unwrap();
        assert!(o.is_shed() && !o.is_throttled());
        let e = parse_response(&error_response(6, "nope")).unwrap();
        assert!(!e.is_shed());
    }

    #[test]
    fn augment_request_and_response_round_trip() {
        let r = parse_request(
            r#"{"id":8,"op":"augment","pipeline":"light","seed":7,"index":3,"series":"1,2,3"}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Augment {
                id: 8,
                pipeline: "light".into(),
                seed: 7,
                index: 3,
                series: "1,2,3".into()
            }
        );
        let s = Mts::from_dims(vec![vec![0.25, -1.5, 3.0e-7], vec![0.1 + 0.2, 1.0, -0.0]]);
        let resp = parse_response(&augment_response(8, "light", &s, 4, 99)).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.series.as_ref(), Some(&s), "text hop must be bit-exact");
        assert_eq!((resp.batch, resp.micros), (Some(4), Some(99)));
        let (id, msg) =
            parse_request(r#"{"id":9,"op":"augment","pipeline":"p","series":"1"}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn series_decode_rejects_garbage() {
        assert!(decode_series("1,zzz").is_err());
        assert!(decode_series("").is_err());
    }

    #[test]
    fn into_builders_match_the_value_tree_serialiser_byte_for_byte() {
        // The hand-written builders replaced a Value-tree path; pin
        // them against it (including escaping and integer printing) so
        // wire output provably never changed.
        let tricky = "ro\"ck\\et\n\u{1}";
        let want = serde_json::to_string(&Value::Object(vec![
            ("id".into(), Value::Num(5.0)),
            ("ok".into(), Value::Bool(true)),
            ("model".into(), Value::Str(tricky.into())),
            ("label".into(), Value::Num(2.0)),
            ("batch".into(), Value::Num(8.0)),
            ("micros".into(), Value::Num(1234.0)),
        ]))
        .unwrap();
        assert_eq!(predict_response(5, tricky, 2, 8, 1234), want);

        let want = serde_json::to_string(&Value::Object(vec![
            ("id".into(), Value::Num(0.0)),
            ("ok".into(), Value::Bool(false)),
            ("error".into(), Value::Str(tricky.into())),
        ]))
        .unwrap();
        assert_eq!(error_response(0, tricky), want);

        let payload = Value::Object(vec![
            ("names".into(), Value::Array(vec![Value::Str("a\tb".into()), Value::Null])),
            ("n".into(), Value::Num(3.5)),
        ]);
        let want = serde_json::to_string(&Value::Object(vec![
            ("id".into(), Value::Num(9.0)),
            ("ok".into(), Value::Bool(true)),
            ("result".into(), payload.clone()),
        ]))
        .unwrap();
        assert_eq!(result_response(9, payload), want);

        let want = serde_json::to_string(&Value::Object(vec![
            ("id".into(), Value::Num(12.0)),
            ("ok".into(), Value::Bool(false)),
            ("error".into(), Value::Str(OVERLOADED.into())),
            ("retry_ms".into(), Value::Num(25.0)),
        ]))
        .unwrap();
        assert_eq!(overloaded_response(12, 25), want);

        let s = Mts::from_dims(vec![vec![0.25, -1.5], vec![3.0e-7, 1.0]]);
        let want = serde_json::to_string(&Value::Object(vec![
            ("id".into(), Value::Num(8.0)),
            ("ok".into(), Value::Bool(true)),
            ("pipeline".into(), Value::Str("light".into())),
            (
                "series".into(),
                Value::Str(tsda_datasets::ts_format::format_series_line(&s)),
            ),
            ("batch".into(), Value::Num(4.0)),
            ("micros".into(), Value::Num(99.0)),
        ]))
        .unwrap();
        assert_eq!(augment_response(8, "light", &s, 4, 99), want);

        let want = serde_json::to_string(&Value::Object(vec![
            ("id".into(), Value::Num(4.0)),
            ("ok".into(), Value::Bool(false)),
            ("error".into(), Value::Str(THROTTLED.into())),
            ("retry_ms".into(), Value::Num(120.0)),
        ]))
        .unwrap();
        assert_eq!(throttled_response(4, 120), want);
    }
}
