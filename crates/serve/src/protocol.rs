//! The wire protocol: newline-delimited JSON request/response frames.
//!
//! One request per line, one response line per request, answered in
//! order per connection (clients may pipeline). Requests:
//!
//! ```text
//! {"id":1,"op":"predict","model":"rocket","series":"1.0,2.0:0.5,0.5"}
//! {"id":2,"op":"stats"}
//! {"id":3,"op":"list"}
//! {"id":4,"op":"ping"}
//! {"id":5,"op":"augment","pipeline":"light","seed":7,"index":3,"series":"1.0,2.0"}
//! ```
//!
//! `series` is the `.ts` data-line layout (dimensions split by `:`,
//! values by `,`, `?` for missing) parsed by
//! [`tsda_datasets::ts_format::parse_series_line`]. Responses always
//! carry the request `id` and an `ok` flag:
//!
//! ```text
//! {"id":1,"ok":true,"model":"rocket","label":2,"batch":7,"micros":412}
//! {"id":1,"ok":false,"error":"unknown model \"nope\""}
//! ```
//!
//! Parsing is hand-rolled over the vendored JSON value tree so missing
//! or mistyped fields produce error *responses*, never panics.

use serde::Value;
use tsda_core::{Mts, TsdaError};
use tsda_datasets::ts_format::parse_series_line;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one series with the named model.
    Predict {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Registry name of the target model.
        model: String,
        /// The series, `.ts` data-line encoded.
        series: String,
    },
    /// Server-side counters (uptime, throughput, latency, batch sizes).
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Names + input shapes of every served model.
    List {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Run one series through a named augmentation pipeline.
    ///
    /// The reply series is bit-identical to offline
    /// `AugPipeline::apply_one(series, seed, index)` — `(seed, index)`
    /// fully determine every stochastic choice, so any replica returns
    /// the same bytes.
    Augment {
        /// Correlation id.
        id: u64,
        /// Registry name of the target pipeline.
        pipeline: String,
        /// Master seed for the derived per-sample streams.
        seed: u64,
        /// Sample index within the seeded corpus.
        index: u64,
        /// The input series, `.ts` data-line encoded.
        series: String,
    },
}

impl Request {
    /// The correlation id of any request.
    pub fn id(&self) -> u64 {
        match self {
            Self::Predict { id, .. }
            | Self::Stats { id }
            | Self::List { id }
            | Self::Ping { id }
            | Self::Augment { id, .. } => *id,
        }
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_f64).map(|n| n as u64)
}

fn field_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// Parse one request line. The error string is ready to ship back in an
/// error response (the id is recovered when possible so the client can
/// correlate it; id 0 otherwise).
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = serde_json::parse_value(line).map_err(|e| (0, format!("bad json: {e}")))?;
    let id = field_u64(&v, "id").unwrap_or(0);
    let op = field_str(&v, "op").ok_or((id, "missing \"op\" field".to_string()))?;
    match op.as_str() {
        "predict" => {
            let model =
                field_str(&v, "model").ok_or((id, "predict needs a \"model\" field".to_string()))?;
            let series =
                field_str(&v, "series").ok_or((id, "predict needs a \"series\" field".to_string()))?;
            Ok(Request::Predict { id, model, series })
        }
        "stats" => Ok(Request::Stats { id }),
        "list" => Ok(Request::List { id }),
        "ping" => Ok(Request::Ping { id }),
        "augment" => {
            let pipeline = field_str(&v, "pipeline")
                .ok_or((id, "augment needs a \"pipeline\" field".to_string()))?;
            let series = field_str(&v, "series")
                .ok_or((id, "augment needs a \"series\" field".to_string()))?;
            let seed =
                field_u64(&v, "seed").ok_or((id, "augment needs a \"seed\" field".to_string()))?;
            let index =
                field_u64(&v, "index").ok_or((id, "augment needs an \"index\" field".to_string()))?;
            Ok(Request::Augment { id, pipeline, seed, index, series })
        }
        other => Err((id, format!("unknown op {other:?}"))),
    }
}

/// Decode a predict payload into a series.
///
/// Hot path (`tsda_analyze` R3): runs once per predict request; the
/// decoded series buffer is the one allowlisted allocation.
#[doc(alias = "tsda::hot")]
pub fn decode_series(series: &str) -> Result<Mts, TsdaError> {
    parse_series_line(series)
}

/// Build a compact single-line JSON object from key/value pairs.
fn object_line(pairs: Vec<(String, Value)>) -> String {
    // Value trees always serialise; if that invariant ever breaks, a
    // well-formed error line beats panicking a connection thread.
    serde_json::to_string(&Value::Object(pairs)).unwrap_or_else(|_| {
        r#"{"id":0,"ok":false,"error":"internal: response serialisation failed"}"#.to_string()
    })
}

/// Successful predict response.
pub fn predict_response(id: u64, model: &str, label: usize, batch: usize, micros: u64) -> String {
    object_line(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(true)),
        ("model".into(), Value::Str(model.to_string())),
        ("label".into(), Value::Num(label as f64)),
        ("batch".into(), Value::Num(batch as f64)),
        ("micros".into(), Value::Num(micros as f64)),
    ])
}

/// Successful augment response. The series is `.ts` data-line encoded;
/// Rust's `{}` float formatting prints the shortest round-trip
/// representation, so finite values survive the text hop bit-exactly.
pub fn augment_response(id: u64, pipeline: &str, series: &Mts, batch: usize, micros: u64) -> String {
    object_line(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(true)),
        ("pipeline".into(), Value::Str(pipeline.to_string())),
        ("series".into(), Value::Str(tsda_datasets::ts_format::format_series_line(series))),
        ("batch".into(), Value::Num(batch as f64)),
        ("micros".into(), Value::Num(micros as f64)),
    ])
}

/// Error response for any request.
pub fn error_response(id: u64, message: &str) -> String {
    object_line(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(message.to_string())),
    ])
}

/// The marker error string in load-shedding replies.
pub const OVERLOADED: &str = "overloaded";

/// Load-shedding reply: the queue is full (or the fault plan sheds);
/// the client should back off roughly `retry_ms` and retry.
pub fn overloaded_response(id: u64, retry_ms: u64) -> String {
    object_line(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(OVERLOADED.to_string())),
        ("retry_ms".into(), Value::Num(retry_ms as f64)),
    ])
}

/// The marker error string in admission-control refusals.
pub const THROTTLED: &str = "throttled";

/// Admission-control refusal: the client's token bucket is empty; one
/// token refills in roughly `retry_ms`.
pub fn throttled_response(id: u64, retry_ms: u64) -> String {
    object_line(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(THROTTLED.to_string())),
        ("retry_ms".into(), Value::Num(retry_ms as f64)),
    ])
}

/// Generic success response wrapping a payload under `"result"`.
pub fn result_response(id: u64, result: Value) -> String {
    object_line(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(true)),
        ("result".into(), result),
    ])
}

/// A parsed server response, as seen by clients.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoed correlation id.
    pub id: u64,
    /// Success flag.
    pub ok: bool,
    /// Predicted label (predict responses only).
    pub label: Option<usize>,
    /// Batch size the prediction rode in (predict responses only).
    pub batch: Option<usize>,
    /// Server-side latency in microseconds (predict responses only).
    pub micros: Option<u64>,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// Backoff hint carried by `overloaded` replies, milliseconds.
    pub retry_ms: Option<u64>,
    /// Result payload for stats/list responses.
    pub result: Option<Value>,
    /// Augmented series (augment responses only).
    pub series: Option<Mts>,
}

impl Response {
    /// True for a load-shedding reply (`{"ok":false,"error":"overloaded",…}`).
    pub fn is_overloaded(&self) -> bool {
        !self.ok && self.error.as_deref() == Some(OVERLOADED)
    }

    /// True for an admission-control refusal
    /// (`{"ok":false,"error":"throttled",…}`).
    pub fn is_throttled(&self) -> bool {
        !self.ok && self.error.as_deref() == Some(THROTTLED)
    }

    /// True for any backpressure refusal — batcher shed, fault-plan
    /// shed, or admission throttle, from a replica or the router. All
    /// carry `retry_ms` hints that floor the client's next backoff.
    pub fn is_shed(&self) -> bool {
        self.is_overloaded() || self.is_throttled()
    }
}

/// Parse one response line (client side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = serde_json::parse_value(line).map_err(|e| format!("bad json: {e}"))?;
    let ok = match v.get("ok") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("missing \"ok\" field".into()),
    };
    let series = match field_str(&v, "series") {
        Some(text) => Some(parse_series_line(&text).map_err(|e| format!("bad series: {e}"))?),
        None => None,
    };
    Ok(Response {
        id: field_u64(&v, "id").unwrap_or(0),
        ok,
        label: field_u64(&v, "label").map(|n| n as usize),
        batch: field_u64(&v, "batch").map(|n| n as usize),
        micros: field_u64(&v, "micros"),
        error: field_str(&v, "error"),
        retry_ms: field_u64(&v, "retry_ms"),
        result: v.get("result").cloned(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_round_trip() {
        let r = parse_request(r#"{"id":7,"op":"predict","model":"rocket","series":"1,2:3,4"}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Predict { id: 7, model: "rocket".into(), series: "1,2:3,4".into() }
        );
        let s = decode_series("1,2:3,4").unwrap();
        assert_eq!(s.n_dims(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn malformed_requests_return_errors_with_ids() {
        assert!(parse_request("not json").is_err());
        let (id, msg) = parse_request(r#"{"id":9,"op":"predict"}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("model"));
        let (id, _) = parse_request(r#"{"id":3,"op":"warp"}"#).unwrap_err();
        assert_eq!(id, 3);
    }

    #[test]
    fn responses_parse_back() {
        let line = predict_response(5, "rocket", 2, 8, 1234);
        let r = parse_response(&line).unwrap();
        assert!(r.ok);
        assert_eq!((r.id, r.label, r.batch, r.micros), (5, Some(2), Some(8), Some(1234)));
        let e = parse_response(&error_response(6, "nope")).unwrap();
        assert!(!e.ok);
        assert_eq!(e.error.as_deref(), Some("nope"));
    }

    #[test]
    fn overloaded_response_round_trips_the_retry_hint() {
        let line = overloaded_response(12, 25);
        let r = parse_response(&line).unwrap();
        assert!(!r.ok);
        assert!(r.is_overloaded());
        assert_eq!((r.id, r.retry_ms), (12, Some(25)));
        // Non-overloaded errors do not claim to be shedding.
        let e = parse_response(&error_response(3, "bad series")).unwrap();
        assert!(!e.is_overloaded());
        assert_eq!(e.retry_ms, None);
    }

    #[test]
    fn throttled_response_round_trips_and_is_shed() {
        let r = parse_response(&throttled_response(4, 120)).unwrap();
        assert!(r.is_throttled() && r.is_shed() && !r.is_overloaded());
        assert_eq!((r.id, r.retry_ms), (4, Some(120)));
        let o = parse_response(&overloaded_response(5, 20)).unwrap();
        assert!(o.is_shed() && !o.is_throttled());
        let e = parse_response(&error_response(6, "nope")).unwrap();
        assert!(!e.is_shed());
    }

    #[test]
    fn augment_request_and_response_round_trip() {
        let r = parse_request(
            r#"{"id":8,"op":"augment","pipeline":"light","seed":7,"index":3,"series":"1,2,3"}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Augment {
                id: 8,
                pipeline: "light".into(),
                seed: 7,
                index: 3,
                series: "1,2,3".into()
            }
        );
        let s = Mts::from_dims(vec![vec![0.25, -1.5, 3.0e-7], vec![0.1 + 0.2, 1.0, -0.0]]);
        let resp = parse_response(&augment_response(8, "light", &s, 4, 99)).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.series.as_ref(), Some(&s), "text hop must be bit-exact");
        assert_eq!((resp.batch, resp.micros), (Some(4), Some(99)));
        let (id, msg) =
            parse_request(r#"{"id":9,"op":"augment","pipeline":"p","series":"1"}"#).unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn series_decode_rejects_garbage() {
        assert!(decode_series("1,zzz").is_err());
        assert!(decode_series("").is_err());
    }
}
