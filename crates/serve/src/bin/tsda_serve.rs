//! `tsda_serve` — train-or-load models, then serve prediction traffic.
//!
//! ```text
//! tsda_serve --models rocket,inception --dataset RacketSports --dir models \
//!            --addr 127.0.0.1:7878 --max-batch 32 --max-wait-ms 2 --fast
//! ```
//!
//! For each requested model the bin loads `<dir>/<model>.tsda` when the
//! file exists, otherwise trains on the named simulated dataset
//! (laptop-scale `GenOptions::ci(seed)`) and saves it there, so restarts
//! reuse the fitted model byte-for-byte. SIGINT/SIGTERM flip the
//! shutdown flag; the server drains every accepted request, prints a
//! final stats snapshot, and exits 0.
//!
//! `--fault-seed N` (or the `TSDA_FAULT_SEED` env var; the flag wins)
//! arms the deterministic fault-injection plan with seed N — dropped
//! and torn writes, corrupted request bytes, worker stalls, load
//! shedding — and prints the per-kind injection log at shutdown.
//! Seed 0 keeps faults off.

use std::time::{Duration, Instant};
use tsda_classify::persist::{load_model, save_model, SavedModel};
use tsda_classify::{
    Classifier, InceptionTime, InceptionTimeConfig, MiniRocket, MiniRocketConfig, RidgeClassifier,
    Rocket, RocketConfig,
};
use tsda_core::rng::seeded;
use tsda_core::Dataset;
use tsda_datasets::registry::{DatasetMeta, ALL_DATASETS};
use tsda_datasets::synth::{generate, GenOptions};
use tsda_neuro::train::TrainConfig;
use tsda_serve::admission::AdmissionConfig;
use tsda_serve::batcher::BatchConfig;
use tsda_serve::faults::FaultPlan;
use tsda_serve::pipelines::PipelineRegistry;
use tsda_serve::registry::{ModelEntry, ModelRegistry};
use tsda_serve::server::{serve, ServerConfig};
use tsda_serve::signal;

struct Args {
    addr: String,
    models: Vec<String>,
    dataset: String,
    seed: u64,
    dir: Option<String>,
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: usize,
    fast: bool,
    max_seconds: Option<u64>,
    fault_seed: Option<u64>,
    quota_rps: Option<f64>,
    quota_burst: f64,
    pipelines: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            models: vec!["rocket".into()],
            dataset: "RacketSports".into(),
            seed: 7,
            dir: None,
            max_batch: 32,
            max_wait_ms: 2,
            queue_cap: BatchConfig::default().queue_cap,
            fast: false,
            max_seconds: None,
            fault_seed: None,
            quota_rps: None,
            quota_burst: 32.0,
            pipelines: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--dir" => args.dir = Some(value("--dir")?),
            "--max-batch" => {
                args.max_batch =
                    value("--max-batch")?.parse().map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--max-wait-ms" => {
                args.max_wait_ms =
                    value("--max-wait-ms")?.parse().map_err(|e| format!("--max-wait-ms: {e}"))?;
            }
            "--queue-cap" => {
                args.queue_cap =
                    value("--queue-cap")?.parse().map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--fast" => args.fast = true,
            "--max-seconds" => {
                args.max_seconds = Some(
                    value("--max-seconds")?.parse().map_err(|e| format!("--max-seconds: {e}"))?,
                );
            }
            "--fault-seed" => {
                args.fault_seed = Some(
                    value("--fault-seed")?.parse().map_err(|e| format!("--fault-seed: {e}"))?,
                );
            }
            "--quota-rps" => {
                args.quota_rps = Some(
                    value("--quota-rps")?.parse().map_err(|e| format!("--quota-rps: {e}"))?,
                );
            }
            "--quota-burst" => {
                args.quota_burst =
                    value("--quota-burst")?.parse().map_err(|e| format!("--quota-burst: {e}"))?;
            }
            "--pipelines" => args.pipelines = Some(value("--pipelines")?),
            "--help" | "-h" => {
                println!(
                    "usage: tsda_serve [--addr A] [--models m1,m2] [--dataset D] [--seed S]\n\
                     \x20                 [--dir MODELDIR] [--max-batch N] [--max-wait-ms MS]\n\
                     \x20                 [--queue-cap N] [--fast] [--max-seconds S]\n\
                     \x20                 [--fault-seed N] [--quota-rps R] [--quota-burst B]\n\
                     \x20                 [--pipelines PIPELINES.toml]\n\
                     models: rocket minirocket ridge inception"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.models.is_empty() {
        return Err("--models list is empty".into());
    }
    Ok(args)
}

fn dataset_meta(name: &str) -> Result<&'static DatasetMeta, String> {
    ALL_DATASETS
        .iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}"))
}

fn flatten(ds: &Dataset) -> Vec<Vec<f64>> {
    ds.series().iter().map(|s| s.as_flat().to_vec()).collect()
}

/// Train one model by kind name; seeds are derived per kind so the
/// ensemble of served models is deterministic in `--seed`.
fn train_model(kind: &str, train: &Dataset, fast: bool, seed: u64) -> Result<SavedModel, String> {
    let mut rng = seeded(seed ^ (kind.len() as u64) << 32);
    match kind {
        "rocket" => {
            let config = RocketConfig {
                n_kernels: if fast { 200 } else { RocketConfig::default().n_kernels },
                ..RocketConfig::default()
            };
            let mut m = Rocket::new(config);
            m.fit(train, None, &mut rng);
            Ok(SavedModel::Rocket(m))
        }
        "minirocket" => {
            let config = MiniRocketConfig {
                n_features: if fast { 168 } else { MiniRocketConfig::default().n_features },
            };
            let mut m = MiniRocket::new(config);
            m.fit(train, None, &mut rng);
            Ok(SavedModel::MiniRocket(m))
        }
        "ridge" => {
            let mut m = RidgeClassifier::default();
            m.fit_features(&flatten(train), train.labels(), train.n_classes());
            Ok(SavedModel::Ridge(m))
        }
        "inception" => {
            let config = if fast {
                InceptionTimeConfig {
                    filters: 2,
                    depth: 3,
                    kernel_sizes: [9, 5, 3],
                    ensemble: 1,
                    train_fraction: 2.0 / 3.0,
                    train: TrainConfig { max_epochs: 3, batch_size: 16, patience: 3, lr: 1e-3 },
                    use_lr_range_test: false,
                }
            } else {
                InceptionTimeConfig::default()
            };
            let mut m = InceptionTime::new(config);
            m.fit(train, None, &mut rng);
            Ok(SavedModel::InceptionTime(m))
        }
        other => Err(format!("unknown model kind {other:?} (rocket|minirocket|ridge|inception)")),
    }
}

fn obtain_model(
    kind: &str,
    dir: Option<&str>,
    train: &Dataset,
    fast: bool,
    seed: u64,
) -> Result<SavedModel, String> {
    let path = dir.map(|d| format!("{d}/{kind}.tsda"));
    if let Some(p) = &path {
        if std::path::Path::new(p).exists() {
            let model =
                load_model(std::path::Path::new(p)).map_err(|e| format!("load {p}: {e}"))?;
            if model.kind() != tsda_kind(kind) {
                return Err(format!("{p} holds a {:?} model, expected {kind}", model.kind()));
            }
            eprintln!("loaded {kind} from {p}");
            return Ok(model);
        }
    }
    let t0 = Instant::now();
    let mut model = train_model(kind, train, fast, seed)?;
    eprintln!("trained {kind} in {:.1}s", t0.elapsed().as_secs_f64());
    if let Some(p) = &path {
        if let Some(parent) = std::path::Path::new(p).parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
        save_model(&mut model, std::path::Path::new(p))
            .map_err(|e| format!("save {p}: {e}"))?;
        eprintln!("saved {kind} to {p}");
    }
    Ok(model)
}

fn tsda_kind(name: &str) -> &'static str {
    match name {
        "rocket" => tsda_classify::rocket::ROCKET_KIND,
        "minirocket" => tsda_classify::minirocket::MINIROCKET_KIND,
        "ridge" => tsda_classify::ridge::RIDGE_KIND,
        "inception" => tsda_classify::inception::INCEPTION_KIND,
        _ => "?",
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let meta = dataset_meta(&args.dataset)?;
    eprintln!("generating dataset {} (seed {})", meta.name, args.seed);
    let tt = generate(meta, &GenOptions::ci(args.seed));
    let shape = (tt.train.series()[0].n_dims(), tt.train.series()[0].len());

    let mut registry = ModelRegistry::new();
    for kind in &args.models {
        let saved = obtain_model(kind, args.dir.as_deref(), &tt.train, args.fast, args.seed)?;
        let ridge_shape = Some(shape);
        let entry = ModelEntry::from_saved(kind, saved, ridge_shape)
            .map_err(|e| format!("register {kind}: {e}"))?;
        registry.insert(entry);
    }

    signal::install();
    // --fault-seed wins over the env var; 0 means off either way.
    let faults = match args.fault_seed {
        Some(0) => None,
        Some(seed) => Some(std::sync::Arc::new(FaultPlan::seeded(seed))),
        None => FaultPlan::from_env(),
    };
    if let Some(plan) = &faults {
        eprintln!("fault injection armed (seed {})", plan.seed());
    }
    let pipelines = match &args.pipelines {
        Some(path) => {
            let reg = PipelineRegistry::from_file(std::path::Path::new(path))
                .map_err(|e| format!("load pipelines {path}: {e}"))?;
            eprintln!("loaded {} augmentation pipelines [{}]", reg.len(), reg.names().join(", "));
            Some(std::sync::Arc::new(reg))
        }
        None => None,
    };
    let config = ServerConfig {
        addr: args.addr.clone(),
        batch: BatchConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(args.max_wait_ms),
            queue_cap: args.queue_cap,
        },
        faults: faults.clone(),
        admission: args.quota_rps.map(|rps| AdmissionConfig::new(rps, args.quota_burst)),
        pipelines,
    };
    if let Some(adm) = &config.admission {
        eprintln!(
            "admission control: {} req/s per client, burst {}",
            adm.rate_per_s, adm.burst
        );
    }
    let handle = serve(registry, config).map_err(|e| format!("serve: {e}"))?;
    // The readiness line clients grep for (also carries the resolved
    // ephemeral port when --addr ends in :0).
    println!("listening on {}", handle.addr());
    eprintln!(
        "serving models [{}] over {} series shape {}x{}",
        args.models.join(", "),
        meta.name,
        shape.0,
        shape.1
    );

    let started = Instant::now();
    while !signal::shutdown_requested() {
        if let Some(limit) = args.max_seconds {
            if started.elapsed() >= Duration::from_secs(limit) {
                eprintln!("--max-seconds {limit} reached");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("shutting down");
    let snap = handle.stats().snapshot();
    handle.shutdown();
    eprintln!(
        "served {} requests ({} errors, {} shed, {} throttled) in {} batches, mean batch {:.2}, \
         p50 {}us p99 {}us",
        snap.requests,
        snap.errors,
        snap.shed,
        snap.throttled,
        snap.batches,
        snap.mean_batch,
        snap.request_p50_us,
        snap.request_p99_us
    );
    if let Some(plan) = &faults {
        eprintln!("faults injected/offered: {}", plan.summary());
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("tsda_serve: {e}");
        std::process::exit(1);
    }
}
