//! `tsda_client` — single requests, readiness probing, and a
//! closed-loop load generator for `tsda_serve`.
//!
//! ```text
//! tsda_client --addr 127.0.0.1:7878 --wait-ready 30
//! tsda_client --model rocket --series "1.0,2.0,...:0.5,..."
//! tsda_client --stats
//! tsda_client --load --models rocket,inception --requests 400 \
//!             --concurrency 8 --dataset RacketSports --seed 7 \
//!             --out BENCH_serve.json
//! ```
//!
//! The load generator runs `--concurrency` closed-loop connections per
//! model (each sends one request, waits for the response, repeats),
//! records exact client-side latencies, and writes per-model
//! requests/sec + p50/p99/mean to `--out` together with the server's
//! own stats snapshot.

use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::{generate, GenOptions};
use tsda_datasets::ts_format::format_series_line;
use tsda_serve::protocol::{parse_response, Response};

struct Args {
    addr: String,
    wait_ready: Option<u64>,
    model: Option<String>,
    series: Option<String>,
    stats: bool,
    load: bool,
    models: Vec<String>,
    requests: usize,
    concurrency: usize,
    dataset: String,
    seed: u64,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            wait_ready: None,
            model: None,
            series: None,
            stats: false,
            load: false,
            models: vec!["rocket".into()],
            requests: 200,
            concurrency: 8,
            dataset: "RacketSports".into(),
            seed: 7,
            out: "BENCH_serve.json".into(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--wait-ready" => {
                args.wait_ready = Some(
                    value("--wait-ready")?.parse().map_err(|e| format!("--wait-ready: {e}"))?,
                );
            }
            "--model" => args.model = Some(value("--model")?),
            "--series" => args.series = Some(value("--series")?),
            "--stats" => args.stats = true,
            "--load" => args.load = true,
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--requests" => {
                args.requests =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--concurrency" => {
                args.concurrency =
                    value("--concurrency")?.parse().map_err(|e| format!("--concurrency: {e}"))?;
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                println!(
                    "usage: tsda_client [--addr A] [--wait-ready SECS]\n\
                     \x20                  [--model M --series S] [--stats]\n\
                     \x20                  [--load --models m1,m2 --requests N --concurrency C\n\
                     \x20                   --dataset D --seed S --out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One connection that sends a line and reads the matching response.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Self { writer: stream, reader })
    }

    fn round_trip(&mut self, line: &str) -> Result<Response, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        parse_response(reply.trim_end())
    }
}

fn request_line(id: u64, op: &str, extra: Vec<(String, Value)>) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::Num(id as f64)),
        ("op".to_string(), Value::Str(op.to_string())),
    ];
    pairs.extend(extra);
    serde_json::to_string(&Value::Object(pairs)).expect("value trees always serialise")
}

fn predict_line(id: u64, model: &str, series: &str) -> String {
    request_line(
        id,
        "predict",
        vec![
            ("model".into(), Value::Str(model.to_string())),
            ("series".into(), Value::Str(series.to_string())),
        ],
    )
}

fn wait_ready(addr: &str, secs: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let probe_gap = Duration::from_millis(200);
    let mut last;
    loop {
        match Conn::open(addr).and_then(|mut c| c.round_trip(&request_line(1, "ping", vec![]))) {
            Ok(r) if r.ok => return Ok(()),
            Ok(r) => last = r.error.unwrap_or_else(|| "not ok".into()),
            Err(e) => last = e,
        }
        // Sleep between probes — never a busy-spin — but cap the nap to
        // the remaining budget so the timeout is honoured tightly. A
        // ready server always passes at least one probe, even with
        // `--wait-ready 0`.
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep(probe_gap.min(deadline - now));
    }
    Err(format!("server at {addr} not ready after {secs}s: {last}"))
}

/// Exact percentile over a sorted latency slice (nearest-rank).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct LoadResult {
    model: String,
    requests: usize,
    errors: usize,
    elapsed_s: f64,
    latencies_us: Vec<u64>,
}

impl LoadResult {
    fn to_value(&self) -> Value {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
        };
        Value::Object(vec![
            ("model".into(), Value::Str(self.model.clone())),
            ("requests".into(), Value::Num(self.requests as f64)),
            ("errors".into(), Value::Num(self.errors as f64)),
            ("elapsed_s".into(), Value::Num(self.elapsed_s)),
            (
                "requests_per_s".into(),
                Value::Num(if self.elapsed_s > 0.0 {
                    self.requests as f64 / self.elapsed_s
                } else {
                    0.0
                }),
            ),
            ("p50_us".into(), Value::Num(percentile_us(&sorted, 0.50) as f64)),
            ("p99_us".into(), Value::Num(percentile_us(&sorted, 0.99) as f64)),
            ("mean_us".into(), Value::Num(mean)),
        ])
    }
}

/// Closed-loop load against one model: `concurrency` worker threads,
/// each with its own connection, splitting `requests` between them.
fn run_load(
    addr: &str,
    model: &str,
    series: &[String],
    requests: usize,
    concurrency: usize,
) -> Result<LoadResult, String> {
    let concurrency = concurrency.max(1);
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        let n = requests / concurrency + usize::from(worker < requests % concurrency);
        let addr = addr.to_string();
        let model = model.to_string();
        let series = series.to_vec();
        handles.push(std::thread::spawn(move || -> Result<(Vec<u64>, usize), String> {
            let mut conn = Conn::open(&addr)?;
            let mut latencies = Vec::with_capacity(n);
            let mut errors = 0usize;
            for i in 0..n {
                let s = &series[(worker + i * concurrency) % series.len()];
                let t0 = Instant::now();
                let reply = conn.round_trip(&predict_line(i as u64 + 1, &model, s))?;
                latencies.push(t0.elapsed().as_micros() as u64);
                if !reply.ok {
                    errors += 1;
                }
            }
            Ok((latencies, errors))
        }));
    }
    let mut latencies_us = Vec::with_capacity(requests);
    let mut errors = 0;
    for h in handles {
        let (lat, err) = h.join().map_err(|_| "load worker panicked".to_string())??;
        latencies_us.extend(lat);
        errors += err;
    }
    Ok(LoadResult {
        model: model.to_string(),
        requests,
        errors,
        elapsed_s: started.elapsed().as_secs_f64(),
        latencies_us,
    })
}

fn fetch_stats(addr: &str) -> Result<Value, String> {
    let mut conn = Conn::open(addr)?;
    let reply = conn.round_trip(&request_line(1, "stats", vec![]))?;
    if !reply.ok {
        return Err(reply.error.unwrap_or_else(|| "stats failed".into()));
    }
    reply.result.ok_or_else(|| "stats response had no result".into())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if let Some(secs) = args.wait_ready {
        wait_ready(&args.addr, secs)?;
        println!("ready");
        if !args.load && args.model.is_none() && !args.stats {
            return Ok(());
        }
    }

    if args.stats {
        let stats = fetch_stats(&args.addr)?;
        println!(
            "{}",
            serde_json::to_string_pretty(&stats).expect("value trees always serialise")
        );
        return Ok(());
    }

    if let (Some(model), Some(series)) = (&args.model, &args.series) {
        let mut conn = Conn::open(&args.addr)?;
        let reply = conn.round_trip(&predict_line(1, model, series))?;
        if reply.ok {
            println!(
                "label {} (batch {}, {}us server-side)",
                reply.label.unwrap_or(0),
                reply.batch.unwrap_or(1),
                reply.micros.unwrap_or(0)
            );
            return Ok(());
        }
        return Err(reply.error.unwrap_or_else(|| "predict failed".into()));
    }

    if args.load {
        let meta = ALL_DATASETS
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(&args.dataset))
            .ok_or_else(|| format!("unknown dataset {:?}", args.dataset))?;
        let tt = generate(meta, &GenOptions::ci(args.seed));
        let series: Vec<String> =
            tt.test.series().iter().map(format_series_line).collect();
        if series.is_empty() {
            return Err("dataset generated no test series".into());
        }
        let mut entries = Vec::new();
        for model in &args.models {
            eprintln!(
                "load: model {model}, {} requests, concurrency {}",
                args.requests, args.concurrency
            );
            let result = run_load(&args.addr, model, &series, args.requests, args.concurrency)?;
            eprintln!(
                "load: {model}: {:.0} req/s, {} errors",
                result.requests as f64 / result.elapsed_s.max(1e-9),
                result.errors
            );
            entries.push(result.to_value());
        }
        let server_stats = fetch_stats(&args.addr).unwrap_or(Value::Null);
        let report = Value::Object(vec![
            ("dataset".into(), Value::Str(meta.name.to_string())),
            ("seed".into(), Value::Num(args.seed as f64)),
            ("concurrency".into(), Value::Num(args.concurrency as f64)),
            ("models".into(), Value::Array(entries)),
            ("server_stats".into(), server_stats),
        ]);
        let text = serde_json::to_string_pretty(&report).expect("value trees always serialise");
        std::fs::write(&args.out, text + "\n").map_err(|e| format!("write {}: {e}", args.out))?;
        println!("wrote {}", args.out);
        return Ok(());
    }

    if args.wait_ready.is_some() {
        return Ok(());
    }
    Err("nothing to do: pass --wait-ready, --stats, --model+--series, or --load".into())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("tsda_client: {e}");
        std::process::exit(1);
    }
}
