//! `tsda_client` — single requests, readiness probing, and a
//! closed-loop load generator for `tsda_serve`.
//!
//! ```text
//! tsda_client --addr 127.0.0.1:7878 --wait-ready 30
//! tsda_client --model rocket --series "1.0,2.0,...:0.5,..."
//! tsda_client --stats
//! tsda_client --load --models rocket,inception --requests 400 \
//!             --concurrency 8 --dataset RacketSports --seed 7 \
//!             --retries 8 --timeout-ms 5000 --out BENCH_serve.json
//! tsda_client --load augment --pipelines light,heavy --requests 400 \
//!             --concurrency 8 --dataset RacketSports --seed 7
//! ```
//!
//! The load generator runs `--concurrency` closed-loop connections per
//! model (each sends one request, waits for the response, repeats),
//! records exact client-side latencies, and writes per-model
//! requests/sec + p50/p99/mean to `--out` together with the server's
//! own stats snapshot. Every path runs through the library's
//! [`RetryingClient`], so timeouts, dropped connections, and
//! `overloaded` sheds are retried with capped, jittered backoff — the
//! report includes how often that machinery fired (`retries`,
//! `reconnects`, `shed_backoffs`).
//!
//! `--load augment` swaps the op: each request runs one series through
//! a named server-side pipeline (`--pipelines p1,p2`), every reply's
//! series is checked bit-identical against the offline
//! `AugPipeline::apply_one` for the same `(seed, index)`, and the
//! report goes to `BENCH_augment.json` by default.

use serde::Value;
use std::time::{Duration, Instant};
use tsda_core::Mts;
use tsda_datasets::registry::ALL_DATASETS;
use tsda_datasets::synth::{generate, GenOptions};
use tsda_serve::client::{
    predict_line, wait_ready, Proto, RetryPolicy, RetryingClient, WireRequest,
};

struct Args {
    addr: String,
    wait_ready: Option<u64>,
    model: Option<String>,
    series: Option<String>,
    stats: bool,
    load: bool,
    load_augment: bool,
    models: Vec<String>,
    pipelines: Vec<String>,
    pipelines_file: Option<String>,
    requests: usize,
    concurrency: usize,
    dataset: String,
    seed: u64,
    retries: u32,
    timeout_ms: u64,
    out: String,
    proto: Proto,
    replicas: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            wait_ready: None,
            model: None,
            series: None,
            stats: false,
            load: false,
            load_augment: false,
            models: vec!["rocket".into()],
            pipelines: vec!["light".into()],
            pipelines_file: None,
            requests: 200,
            concurrency: 8,
            dataset: "RacketSports".into(),
            seed: 7,
            retries: 8,
            timeout_ms: 5000,
            out: String::new(),
            proto: Proto::Ndjson,
            replicas: 1,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--wait-ready" => {
                args.wait_ready = Some(
                    value("--wait-ready")?.parse().map_err(|e| format!("--wait-ready: {e}"))?,
                );
            }
            "--model" => args.model = Some(value("--model")?),
            "--series" => args.series = Some(value("--series")?),
            "--stats" => args.stats = true,
            "--load" => {
                args.load = true;
                // Optional mode value: `--load augment` (plain `--load`
                // stays the predict load generator).
                if it.peek().is_some_and(|v| v == "augment") {
                    let _mode = it.next();
                    args.load_augment = true;
                } else if it.peek().is_some_and(|v| v == "predict") {
                    let _mode = it.next();
                }
            }
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--pipelines" => {
                args.pipelines = value("--pipelines")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--pipelines-file" => args.pipelines_file = Some(value("--pipelines-file")?),
            "--requests" => {
                args.requests =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--concurrency" => {
                args.concurrency =
                    value("--concurrency")?.parse().map_err(|e| format!("--concurrency: {e}"))?;
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--retries" => {
                args.retries = value("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?;
            }
            "--timeout-ms" => {
                args.timeout_ms =
                    value("--timeout-ms")?.parse().map_err(|e| format!("--timeout-ms: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--proto" => args.proto = Proto::from_flag(&value("--proto")?)?,
            "--replicas" => {
                // A label recorded in bench rows (the router hides the
                // fleet size from the wire).
                args.replicas =
                    value("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: tsda_client [--addr A] [--wait-ready SECS] [--proto ndjson|v2]\n\
                     \x20                  [--model M --series S] [--stats]\n\
                     \x20                  [--retries N] [--timeout-ms MS]\n\
                     \x20                  [--load --models m1,m2 --requests N --concurrency C\n\
                     \x20                   --dataset D --seed S --replicas N --out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.out.is_empty() {
        args.out =
            if args.load_augment { "BENCH_augment.json".into() } else { "BENCH_serve.json".into() };
    }
    Ok(args)
}

fn policy_of(args: &Args) -> RetryPolicy {
    RetryPolicy {
        max_attempts: args.retries.max(1),
        timeout: Duration::from_millis(args.timeout_ms.max(1)),
        jitter_seed: args.seed,
        ..RetryPolicy::default()
    }
}

/// Exact percentile over a sorted latency slice (nearest-rank).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct LoadResult {
    /// JSON key for the thing under load ("model" or "pipeline").
    unit: &'static str,
    model: String,
    protocol: Proto,
    replicas: usize,
    requests: usize,
    errors: usize,
    retries: u64,
    reconnects: u64,
    shed_backoffs: u64,
    elapsed_s: f64,
    latencies_us: Vec<u64>,
}

impl LoadResult {
    fn to_value(&self) -> Value {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
        };
        Value::Object(vec![
            (self.unit.into(), Value::Str(self.model.clone())),
            ("protocol".into(), Value::Str(self.protocol.name().to_string())),
            ("replicas".into(), Value::Num(self.replicas as f64)),
            ("requests".into(), Value::Num(self.requests as f64)),
            ("errors".into(), Value::Num(self.errors as f64)),
            ("retries".into(), Value::Num(self.retries as f64)),
            ("reconnects".into(), Value::Num(self.reconnects as f64)),
            ("shed_backoffs".into(), Value::Num(self.shed_backoffs as f64)),
            ("elapsed_s".into(), Value::Num(self.elapsed_s)),
            (
                "requests_per_s".into(),
                Value::Num(if self.elapsed_s > 0.0 {
                    self.requests as f64 / self.elapsed_s
                } else {
                    0.0
                }),
            ),
            ("p50_us".into(), Value::Num(percentile_us(&sorted, 0.50) as f64)),
            ("p99_us".into(), Value::Num(percentile_us(&sorted, 0.99) as f64)),
            ("mean_us".into(), Value::Num(mean)),
        ])
    }
}

/// Closed-loop load against one model: `concurrency` worker threads,
/// each with its own retrying client, splitting `requests` between
/// them.
fn run_load(
    args: &Args,
    model: &str,
    series: &[Mts],
    policy: RetryPolicy,
) -> Result<LoadResult, String> {
    let requests = args.requests;
    let concurrency = args.concurrency.max(1);
    let proto = args.proto;
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        let n = requests / concurrency + usize::from(worker < requests % concurrency);
        let addr = args.addr.to_string();
        let model = model.to_string();
        let series = series.to_vec();
        handles.push(std::thread::spawn(
            move || -> Result<(Vec<u64>, usize, RetryingClient), String> {
                let mut client =
                    RetryingClient::new_proto(addr, policy, &format!("load-{worker}"), proto);
                let mut latencies = Vec::with_capacity(n);
                let mut errors = 0usize;
                for i in 0..n {
                    let s = &series[(worker + i * concurrency) % series.len()];
                    let t0 = Instant::now();
                    let reply = client.predict_mts(i as u64 + 1, &model, s)?;
                    latencies.push(t0.elapsed().as_micros() as u64);
                    if !reply.ok {
                        errors += 1;
                    }
                }
                Ok((latencies, errors, client))
            },
        ));
    }
    let mut latencies_us = Vec::with_capacity(requests);
    let mut errors = 0;
    let (mut retries, mut reconnects, mut shed_backoffs) = (0u64, 0u64, 0u64);
    for h in handles {
        let (lat, err, client) = h.join().map_err(|_| "load worker panicked".to_string())??;
        latencies_us.extend(lat);
        errors += err;
        let c = client.counters();
        retries += c.retries;
        reconnects += c.reconnects;
        shed_backoffs += c.shed_backoffs;
    }
    Ok(LoadResult {
        unit: "model",
        model: model.to_string(),
        protocol: proto,
        replicas: args.replicas,
        requests,
        errors,
        retries,
        reconnects,
        shed_backoffs,
        elapsed_s: started.elapsed().as_secs_f64(),
        latencies_us,
    })
}

/// Closed-loop augment load against one named pipeline. Every reply's
/// series is compared bit-for-bit against the offline pipeline when a
/// `--pipelines-file` was given; any divergence is a hard error.
fn run_augment_load(
    args: &Args,
    pipeline: &str,
    series: &[Mts],
    offline: Option<&tsda_serve::pipelines::PipelineRegistry>,
    policy: RetryPolicy,
) -> Result<LoadResult, String> {
    let requests = args.requests;
    let concurrency = args.concurrency.max(1);
    let proto = args.proto;
    let seed = args.seed;
    let offline_pipe = match offline {
        Some(reg) => Some(
            reg.get(pipeline)
                .ok_or_else(|| format!("pipeline {pipeline:?} not in --pipelines-file"))?
                .clone(),
        ),
        None => None,
    };
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        let n = requests / concurrency + usize::from(worker < requests % concurrency);
        let addr = args.addr.to_string();
        let pipeline = pipeline.to_string();
        let series = series.to_vec();
        let offline_pipe = offline_pipe.clone();
        handles.push(std::thread::spawn(
            move || -> Result<(Vec<u64>, usize, RetryingClient), String> {
                let mut client =
                    RetryingClient::new_proto(addr, policy, &format!("aug-{worker}"), proto);
                let mut latencies = Vec::with_capacity(n);
                let mut errors = 0usize;
                for i in 0..n {
                    let g = worker + i * concurrency;
                    let s = &series[g % series.len()];
                    let index = g as u64;
                    let t0 = Instant::now();
                    let reply = client.augment_mts(i as u64 + 1, &pipeline, seed, index, s)?;
                    latencies.push(t0.elapsed().as_micros() as u64);
                    if !reply.ok {
                        errors += 1;
                        continue;
                    }
                    let Some(got) = reply.series else {
                        return Err(format!("{pipeline}: ok reply without a series"));
                    };
                    if let Some(pipe) = &offline_pipe {
                        let want = pipe.apply_one(s, seed, index);
                        if got != want {
                            return Err(format!(
                                "{pipeline}: served series diverged from offline at index {index}"
                            ));
                        }
                    }
                }
                Ok((latencies, errors, client))
            },
        ));
    }
    let mut latencies_us = Vec::with_capacity(requests);
    let mut errors = 0;
    let (mut retries, mut reconnects, mut shed_backoffs) = (0u64, 0u64, 0u64);
    for h in handles {
        let (lat, err, client) = h.join().map_err(|_| "load worker panicked".to_string())??;
        latencies_us.extend(lat);
        errors += err;
        let c = client.counters();
        retries += c.retries;
        reconnects += c.reconnects;
        shed_backoffs += c.shed_backoffs;
    }
    Ok(LoadResult {
        unit: "pipeline",
        model: pipeline.to_string(),
        protocol: proto,
        replicas: args.replicas,
        requests,
        errors,
        retries,
        reconnects,
        shed_backoffs,
        elapsed_s: started.elapsed().as_secs_f64(),
        latencies_us,
    })
}

fn fetch_stats(addr: &str, proto: Proto, policy: RetryPolicy) -> Result<Value, String> {
    let mut client = RetryingClient::new_proto(addr.to_string(), policy, "stats", proto);
    let reply = client.round_trip_request(&WireRequest::simple(proto, 1, "stats"))?;
    if !reply.ok {
        return Err(reply.error.unwrap_or_else(|| "stats failed".into()));
    }
    reply.result.ok_or_else(|| "stats response had no result".into())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let policy = policy_of(&args);

    if let Some(secs) = args.wait_ready {
        wait_ready(&args.addr, secs)?;
        println!("ready");
        if !args.load && args.model.is_none() && !args.stats {
            return Ok(());
        }
    }

    if args.stats {
        let stats = fetch_stats(&args.addr, args.proto, policy)?;
        println!(
            "{}",
            serde_json::to_string_pretty(&stats).expect("value trees always serialise")
        );
        return Ok(());
    }

    if let (Some(model), Some(series)) = (&args.model, &args.series) {
        let mut client = RetryingClient::new(args.addr.clone(), policy, "single");
        let reply = client.round_trip(&predict_line(1, model, series))?;
        if reply.ok {
            println!(
                "label {} (batch {}, {}us server-side)",
                reply.label.unwrap_or(0),
                reply.batch.unwrap_or(1),
                reply.micros.unwrap_or(0)
            );
            return Ok(());
        }
        return Err(reply.error.unwrap_or_else(|| "predict failed".into()));
    }

    if args.load && args.load_augment {
        let meta = ALL_DATASETS
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(&args.dataset))
            .ok_or_else(|| format!("unknown dataset {:?}", args.dataset))?;
        let tt = generate(meta, &GenOptions::ci(args.seed));
        let series: Vec<Mts> = tt.test.series().to_vec();
        if series.is_empty() {
            return Err("dataset generated no test series".into());
        }
        let offline = match &args.pipelines_file {
            Some(path) => Some(
                tsda_serve::pipelines::PipelineRegistry::from_file(std::path::Path::new(path))
                    .map_err(|e| format!("load {path}: {e}"))?,
            ),
            None => None,
        };
        let mut entries = Vec::new();
        for pipeline in &args.pipelines {
            eprintln!(
                "augment load: pipeline {pipeline}, {} requests, concurrency {}, proto {}{}",
                args.requests,
                args.concurrency,
                args.proto.name(),
                if offline.is_some() { ", verifying against offline" } else { "" }
            );
            let result = run_augment_load(&args, pipeline, &series, offline.as_ref(), policy)?;
            eprintln!(
                "augment load: {pipeline}: {:.0} req/s, {} errors, {} retries, {} reconnects",
                result.requests as f64 / result.elapsed_s.max(1e-9),
                result.errors,
                result.retries,
                result.reconnects
            );
            entries.push(result.to_value());
        }
        let server_stats = fetch_stats(&args.addr, args.proto, policy).unwrap_or(Value::Null);
        let report = Value::Object(vec![
            ("dataset".into(), Value::Str(meta.name.to_string())),
            ("seed".into(), Value::Num(args.seed as f64)),
            ("concurrency".into(), Value::Num(args.concurrency as f64)),
            ("protocol".into(), Value::Str(args.proto.name().to_string())),
            ("replicas".into(), Value::Num(args.replicas as f64)),
            (
                "verified_offline".into(),
                Value::Bool(offline.is_some()),
            ),
            ("pipelines".into(), Value::Array(entries)),
            ("server_stats".into(), server_stats),
        ]);
        let text = serde_json::to_string_pretty(&report).expect("value trees always serialise");
        std::fs::write(&args.out, text + "\n").map_err(|e| format!("write {}: {e}", args.out))?;
        println!("wrote {}", args.out);
        return Ok(());
    }

    if args.load {
        let meta = ALL_DATASETS
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(&args.dataset))
            .ok_or_else(|| format!("unknown dataset {:?}", args.dataset))?;
        let tt = generate(meta, &GenOptions::ci(args.seed));
        let series: Vec<Mts> = tt.test.series().to_vec();
        if series.is_empty() {
            return Err("dataset generated no test series".into());
        }
        let mut entries = Vec::new();
        for model in &args.models {
            eprintln!(
                "load: model {model}, {} requests, concurrency {}, proto {}",
                args.requests,
                args.concurrency,
                args.proto.name()
            );
            let result = run_load(&args, model, &series, policy)?;
            eprintln!(
                "load: {model}: {:.0} req/s, {} errors, {} retries, {} reconnects",
                result.requests as f64 / result.elapsed_s.max(1e-9),
                result.errors,
                result.retries,
                result.reconnects
            );
            entries.push(result.to_value());
        }
        let server_stats = fetch_stats(&args.addr, args.proto, policy).unwrap_or(Value::Null);
        let report = Value::Object(vec![
            ("dataset".into(), Value::Str(meta.name.to_string())),
            ("seed".into(), Value::Num(args.seed as f64)),
            ("concurrency".into(), Value::Num(args.concurrency as f64)),
            ("protocol".into(), Value::Str(args.proto.name().to_string())),
            ("replicas".into(), Value::Num(args.replicas as f64)),
            ("models".into(), Value::Array(entries)),
            ("server_stats".into(), server_stats),
        ]);
        let text = serde_json::to_string_pretty(&report).expect("value trees always serialise");
        std::fs::write(&args.out, text + "\n").map_err(|e| format!("write {}: {e}", args.out))?;
        println!("wrote {}", args.out);
        return Ok(());
    }

    if args.wait_ready.is_some() {
        return Ok(());
    }
    Err("nothing to do: pass --wait-ready, --stats, --model+--series, or --load".into())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("tsda_client: {e}");
        std::process::exit(1);
    }
}
