//! `tsda_router` — front a fleet of `tsda_serve` replicas.
//!
//! ```text
//! tsda_router --addr 127.0.0.1:7979 --replicas 2 --models rocket,inception \
//!             --dataset RacketSports --seed 7 --dir models --fast \
//!             --route least-loaded --quota-rps 500
//! ```
//!
//! The router first runs the serve binary once with `--max-seconds 0`
//! so every model is trained and saved into `--dir`, then spawns
//! `--replicas` server processes that all load those exact files —
//! replicas are byte-for-byte the same models, so routing policy can
//! never change a label. With `--shard`, models are partitioned
//! round-robin across replicas instead of replicated everywhere.
//!
//! Replicas bind ephemeral ports; the router learns each address from
//! the `listening on <addr>` readiness line, health-checks the fleet,
//! and respawns replicas that die. Clients talk to the router address
//! with either wire protocol; predicts are relayed verbatim.

use std::time::{Duration, Instant};
use tsda_serve::admission::AdmissionConfig;
use tsda_serve::router::{ReplicaSpec, RoutePolicy, Router, RouterConfig};
use tsda_serve::signal;

struct Args {
    addr: String,
    replicas: usize,
    models: Vec<String>,
    dataset: String,
    seed: u64,
    dir: String,
    fast: bool,
    shard: bool,
    route: RoutePolicy,
    quota_rps: Option<f64>,
    quota_burst: f64,
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: Option<usize>,
    serve_bin: Option<String>,
    max_seconds: Option<u64>,
    pipelines: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7979".into(),
            replicas: 2,
            models: vec!["rocket".into()],
            dataset: "RacketSports".into(),
            seed: 7,
            dir: "models".into(),
            fast: false,
            shard: false,
            route: RoutePolicy::default(),
            quota_rps: None,
            quota_burst: 32.0,
            max_batch: 32,
            max_wait_ms: 2,
            queue_cap: None,
            serve_bin: None,
            max_seconds: None,
            pipelines: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--replicas" => {
                args.replicas =
                    value("--replicas")?.parse().map_err(|e| format!("--replicas: {e}"))?;
            }
            "--models" => {
                args.models = value("--models")?
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--dir" => args.dir = value("--dir")?,
            "--fast" => args.fast = true,
            "--shard" => args.shard = true,
            "--route" => args.route = RoutePolicy::from_flag(&value("--route")?)?,
            "--quota-rps" => {
                args.quota_rps =
                    Some(value("--quota-rps")?.parse().map_err(|e| format!("--quota-rps: {e}"))?);
            }
            "--quota-burst" => {
                args.quota_burst =
                    value("--quota-burst")?.parse().map_err(|e| format!("--quota-burst: {e}"))?;
            }
            "--max-batch" => {
                args.max_batch =
                    value("--max-batch")?.parse().map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--max-wait-ms" => {
                args.max_wait_ms =
                    value("--max-wait-ms")?.parse().map_err(|e| format!("--max-wait-ms: {e}"))?;
            }
            "--queue-cap" => {
                args.queue_cap =
                    Some(value("--queue-cap")?.parse().map_err(|e| format!("--queue-cap: {e}"))?);
            }
            "--serve-bin" => args.serve_bin = Some(value("--serve-bin")?),
            "--pipelines" => args.pipelines = Some(value("--pipelines")?),
            "--max-seconds" => {
                args.max_seconds = Some(
                    value("--max-seconds")?.parse().map_err(|e| format!("--max-seconds: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: tsda_router [--addr A] [--replicas N] [--models m1,m2] [--dataset D]\n\
                     \x20                  [--seed S] [--dir MODELDIR] [--fast] [--shard]\n\
                     \x20                  [--route least-loaded|hash] [--quota-rps R]\n\
                     \x20                  [--quota-burst B] [--max-batch N] [--max-wait-ms MS]\n\
                     \x20                  [--queue-cap N] [--serve-bin PATH] [--max-seconds S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.models.is_empty() {
        return Err("--models list is empty".into());
    }
    if args.replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    Ok(args)
}

/// Locate the `tsda_serve` binary: `--serve-bin` wins, otherwise the
/// sibling of this executable (both bins install to the same dir).
fn serve_bin_path(args: &Args) -> Result<String, String> {
    if let Some(bin) = &args.serve_bin {
        return Ok(bin.clone());
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name(format!("tsda_serve{}", std::env::consts::EXE_SUFFIX));
    if sibling.exists() {
        return Ok(sibling.to_string_lossy().into_owned());
    }
    Err(format!("tsda_serve not found at {sibling:?}; pass --serve-bin PATH"))
}

/// One warm-up run of the serve binary with `--max-seconds 0`: trains
/// every model (unless `--dir` already holds it) and exits, so the
/// replicas spawned next all load identical bytes instead of each
/// training its own copy.
fn pretrain(bin: &str, args: &Args) -> Result<(), String> {
    let mut cmd = std::process::Command::new(bin);
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--models",
        &args.models.join(","),
        "--dataset",
        &args.dataset,
        "--seed",
        &args.seed.to_string(),
        "--dir",
        &args.dir,
        "--max-seconds",
        "0",
    ]);
    if args.fast {
        cmd.arg("--fast");
    }
    cmd.stdout(std::process::Stdio::null());
    let t0 = Instant::now();
    let status = cmd.status().map_err(|e| format!("pretrain spawn {bin}: {e}"))?;
    if !status.success() {
        return Err(format!("pretrain run failed ({status})"));
    }
    eprintln!("pretrain pass done in {:.1}s (models in {})", t0.elapsed().as_secs_f64(), args.dir);
    Ok(())
}

/// Build the argument list for one replica serving `models`.
fn replica_args(args: &Args, models: &[String]) -> Vec<String> {
    let mut out = vec![
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--models".into(),
        models.join(","),
        "--dataset".into(),
        args.dataset.clone(),
        "--seed".into(),
        args.seed.to_string(),
        "--dir".into(),
        args.dir.clone(),
        "--max-batch".into(),
        args.max_batch.to_string(),
        "--max-wait-ms".into(),
        args.max_wait_ms.to_string(),
    ];
    if let Some(cap) = args.queue_cap {
        out.push("--queue-cap".into());
        out.push(cap.to_string());
    }
    if args.fast {
        out.push("--fast".into());
    }
    // Pipelines are replicated, never sharded: every replica loads the
    // same TOML so the router can send an augment anywhere.
    if let Some(pipelines) = &args.pipelines {
        out.push("--pipelines".into());
        out.push(pipelines.clone());
    }
    out
}

/// Shard placement: `--shard` deals models round-robin across the
/// fleet (replica i gets models i, i+R, …); otherwise every replica
/// serves every model.
fn placement(args: &Args) -> Vec<Vec<String>> {
    if !args.shard {
        return vec![args.models.clone(); args.replicas];
    }
    let mut shards = vec![Vec::new(); args.replicas];
    for (i, model) in args.models.iter().enumerate() {
        shards[i % args.replicas].push(model.clone());
    }
    // Fewer models than replicas leaves empty shards; wrap those
    // replicas onto the full list so capacity is never wasted.
    for shard in &mut shards {
        if shard.is_empty() {
            *shard = args.models.clone();
        }
    }
    shards
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let bin = serve_bin_path(&args)?;
    pretrain(&bin, &args)?;

    let replicas: Vec<ReplicaSpec> = placement(&args)
        .into_iter()
        .map(|models| ReplicaSpec::Spawn {
            bin: bin.clone(),
            args: replica_args(&args, &models),
            models,
        })
        .collect();

    signal::install();
    let config = RouterConfig {
        addr: args.addr.clone(),
        replicas,
        policy: args.route,
        admission: args.quota_rps.map(|rps| AdmissionConfig::new(rps, args.quota_burst)),
        ..RouterConfig::default()
    };
    if let Some(adm) = &config.admission {
        eprintln!("admission control: {} req/s per client, burst {}", adm.rate_per_s, adm.burst);
    }
    let handle = Router::start(config).map_err(|e| format!("router: {e}"))?;
    // Same readiness line as tsda_serve, so wait_ready/scripts work
    // unchanged against the router.
    println!("listening on {}", handle.addr());
    eprintln!(
        "routing [{}] over {} replicas ({}, shard={})",
        args.models.join(", "),
        args.replicas,
        args.route.name(),
        args.shard
    );

    let started = Instant::now();
    while !signal::shutdown_requested() {
        if let Some(limit) = args.max_seconds {
            if started.elapsed() >= Duration::from_secs(limit) {
                eprintln!("--max-seconds {limit} reached");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("shutting down");
    let snap = handle.snapshot();
    let restarts = handle.restarts_total();
    handle.shutdown();
    eprintln!(
        "routed {} requests ({} forwarded, {} throttled, {} failovers, {} errors, {} restarts)",
        snap.get("requests").and_then(serde::Value::as_f64).unwrap_or(0.0),
        snap.get("forwarded").and_then(serde::Value::as_f64).unwrap_or(0.0),
        snap.get("throttled").and_then(serde::Value::as_f64).unwrap_or(0.0),
        snap.get("failovers").and_then(serde::Value::as_f64).unwrap_or(0.0),
        snap.get("errors").and_then(serde::Value::as_f64).unwrap_or(0.0),
        restarts
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("tsda_router: {e}");
        std::process::exit(1);
    }
}
