//! The sharding frontend: one router process fanning out over N
//! replica `tsda_serve` processes.
//!
//! The router owns no models. It accepts client connections on one
//! address, speaks both wire protocols (same first-byte negotiation as
//! [`crate::server`]), and forwards predict traffic to backend replicas
//! *verbatim* — a v2 frame is relayed as the same bytes it arrived in
//! (see [`proto2::reframe`]), an NDJSON line as the same line — so the
//! router never re-encodes payloads and adds only a routing-header
//! decode per request.
//!
//! # Placement and routing
//!
//! Each replica declares the models it serves ([`ReplicaSpec`]); a
//! predict is routed among the healthy replicas serving its model by
//! the configured [`RoutePolicy`]:
//!
//! * [`RoutePolicy::LeastLoaded`] — fewest requests currently in
//!   flight through this router (ties → lowest replica index).
//! * [`RoutePolicy::Hash`] — rendezvous (highest-random-weight)
//!   hashing of the request's series-content key, so identical series
//!   always land on the same replica while replica loss only remaps
//!   that replica's share.
//!
//! # Health and restarts
//!
//! Replicas the router spawned ([`ReplicaSpec::Spawn`]) are watched by
//! a monitor thread: a dead process is respawned, its new ephemeral
//! address learned from the `listening on <addr>` line every
//! `tsda_serve` prints, readiness-probed (the same ping probe as
//! `--wait-ready`), and put back into rotation under a bumped
//! generation so stale per-connection backend sockets are discarded.
//! External replicas ([`ReplicaSpec::External`]) are probed back to
//! healthy but never restarted. A forward that fails over marks the
//! replica unhealthy immediately — the client's request is retried on
//! the next candidate in the same call, so a replica crash under load
//! costs a failover, not a lost request.
//!
//! # Refusals
//!
//! Router-level admission control ([`crate::admission`]) refuses with
//! `throttled` + `retry_ms` before any forwarding happens; replica
//! refusals (`overloaded`, errors) are relayed verbatim. When no
//! healthy replica serves a model the router answers a plain error —
//! the retrying client treats it like any refusal and tries again,
//! which rides out the restart window.

use crate::admission::{Admission, AdmissionConfig};
use crate::client::{wait_ready, Proto};
use crate::proto2;
use crate::protocol::{
    error_response, parse_request, result_response, throttled_response, Request,
};
use serde::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsda_core::TsdaError;

/// How predicts are spread across the replicas serving a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Fewest in-flight requests wins (ties → lowest index).
    #[default]
    LeastLoaded,
    /// Rendezvous hashing of the series content key.
    Hash,
}

impl RoutePolicy {
    /// Parse a `--route` flag value.
    pub fn from_flag(s: &str) -> Result<Self, String> {
        match s {
            "least-loaded" => Ok(Self::LeastLoaded),
            "hash" => Ok(Self::Hash),
            other => Err(format!("unknown route policy {other:?} (expected least-loaded|hash)")),
        }
    }

    /// The canonical flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::LeastLoaded => "least-loaded",
            Self::Hash => "hash",
        }
    }
}

/// One replica the router fronts.
#[derive(Debug, Clone)]
pub enum ReplicaSpec {
    /// A `tsda_serve` process the router spawns, restarts, and owns.
    Spawn {
        /// Path to the server binary.
        bin: String,
        /// Full argument list (should bind port 0; the router learns
        /// the ephemeral address from the readiness line).
        args: Vec<String>,
        /// Models this replica serves (shard placement).
        models: Vec<String>,
    },
    /// An already-running server the router only routes to.
    External {
        /// The replica's address.
        addr: String,
        /// Models this replica serves.
        models: Vec<String>,
    },
}

impl ReplicaSpec {
    fn models(&self) -> &[String] {
        match self {
            Self::Spawn { models, .. } | Self::External { models, .. } => models,
        }
    }
}

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Frontend bind address; port 0 for ephemeral.
    pub addr: String,
    /// The replica fleet.
    pub replicas: Vec<ReplicaSpec>,
    /// Predict routing policy.
    pub policy: RoutePolicy,
    /// Optional router-level per-client admission quota.
    pub admission: Option<AdmissionConfig>,
    /// Monitor cadence for health probes and restart checks.
    pub health_interval: Duration,
    /// Readiness budget when starting or restarting a replica.
    pub wait_ready_secs: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            replicas: Vec::new(),
            policy: RoutePolicy::default(),
            admission: None,
            health_interval: Duration::from_millis(100),
            wait_ready_secs: 120,
        }
    }
}

/// Runtime state for one replica.
///
/// lock-order: `child` and `addr` are leaf locks — a thread holds at
/// most one of them at a time (always in sequential, non-nested
/// scopes), never across IO or process reaping, and never while holding
/// any other lock. The L1/L2 lints enforce this; widen a scope and the
/// analyzer fails the build with the offending chain.
struct Replica {
    index: usize,
    spec: ReplicaSpec,
    /// Current address (changes across restarts for spawned replicas).
    addr: Mutex<String>,
    /// In rotation? Flipped off by failed forwards and process exits,
    /// back on by the monitor's successful probe.
    healthy: AtomicBool,
    /// Bumped on every restart so per-connection backend sockets to
    /// the old process are discarded.
    generation: AtomicU64,
    /// Requests currently being forwarded through this router.
    in_flight: AtomicU64,
    /// Requests ever forwarded to this replica.
    forwarded: AtomicU64,
    /// Times the monitor respawned this replica.
    restarts: AtomicU64,
    /// The owned process, for spawned replicas.
    child: Mutex<Option<Child>>,
}

impl Replica {
    fn current_addr(&self) -> String {
        match self.addr.lock() {
            Ok(a) => a.clone(),
            Err(_) => String::new(),
        }
    }

    fn serves(&self, model: &str) -> bool {
        self.spec.models().iter().any(|m| m == model)
    }

    fn describe(&self) -> Value {
        Value::Object(vec![
            ("index".into(), Value::Num(self.index as f64)),
            ("addr".into(), Value::Str(self.current_addr())),
            ("healthy".into(), Value::Bool(self.healthy.load(Ordering::Relaxed))),
            (
                "models".into(),
                Value::Array(
                    self.spec.models().iter().map(|m| Value::Str(m.clone())).collect(),
                ),
            ),
            ("forwarded".into(), Value::Num(self.forwarded.load(Ordering::Relaxed) as f64)),
            ("restarts".into(), Value::Num(self.restarts.load(Ordering::Relaxed) as f64)),
            ("in_flight".into(), Value::Num(self.in_flight.load(Ordering::Relaxed) as f64)),
        ])
    }
}

/// Router-level counters for the locally-answered `stats` op.
#[derive(Default)]
struct RouterStats {
    requests: AtomicU64,
    forwarded: AtomicU64,
    throttled: AtomicU64,
    failovers: AtomicU64,
    errors: AtomicU64,
}

/// Everything the connection handlers share.
struct RouterCtx {
    replicas: Vec<Replica>,
    policy: RoutePolicy,
    admission: Option<Admission>,
    stats: RouterStats,
    started: Instant,
}

impl RouterCtx {
    fn snapshot(&self) -> Value {
        Value::Object(vec![
            ("role".into(), Value::Str("router".to_string())),
            ("policy".into(), Value::Str(self.policy.name().to_string())),
            ("uptime_s".into(), Value::Num(self.started.elapsed().as_secs_f64())),
            (
                "requests".into(),
                Value::Num(self.stats.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "forwarded".into(),
                Value::Num(self.stats.forwarded.load(Ordering::Relaxed) as f64),
            ),
            (
                "throttled".into(),
                Value::Num(self.stats.throttled.load(Ordering::Relaxed) as f64),
            ),
            (
                "failovers".into(),
                Value::Num(self.stats.failovers.load(Ordering::Relaxed) as f64),
            ),
            ("errors".into(), Value::Num(self.stats.errors.load(Ordering::Relaxed) as f64)),
            (
                "replicas".into(),
                Value::Array(self.replicas.iter().map(Replica::describe).collect()),
            ),
        ])
    }

    /// Pick the best healthy replica that is not in `tried`, under the
    /// routing policy. `model` narrows to the replicas sharded for it;
    /// `None` considers the whole fleet (augment pipelines are loaded
    /// on every replica, not sharded). `key` drives rendezvous hashing.
    fn pick(&self, model: Option<&str>, key: u64, tried: &[usize]) -> Option<&Replica> {
        let candidates = self.replicas.iter().filter(|r| {
            model.is_none_or(|m| r.serves(m))
                && r.healthy.load(Ordering::Relaxed)
                && !tried.contains(&r.index)
        });
        match self.policy {
            RoutePolicy::LeastLoaded => {
                candidates.min_by_key(|r| (r.in_flight.load(Ordering::Relaxed), r.index))
            }
            RoutePolicy::Hash => candidates.max_by_key(|r| {
                // Rendezvous: score every candidate by a hash of
                // (content key, replica index); the max wins. Stable
                // under membership change except for the lost share.
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&key.to_le_bytes());
                bytes[8..].copy_from_slice(&(r.index as u64).to_le_bytes());
                (proto2::fnv1a(&bytes), r.index)
            }),
        }
    }
}

/// A pooled connection from one frontend handler to one replica.
struct Backend {
    generation: u64,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Backend {
    fn connect(addr: &str, proto: Proto, generation: u64) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let timeout = Some(Duration::from_secs(10));
        stream.set_read_timeout(timeout).map_err(|e| format!("set timeout: {e}"))?;
        stream.set_write_timeout(timeout).map_err(|e| format!("set timeout: {e}"))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("clone stream: {e}"))?);
        let mut backend = Self { generation, writer: stream, reader };
        if proto == Proto::V2 {
            backend
                .writer
                .write_all(&proto2::PREAMBLE)
                .map_err(|e| format!("send preamble: {e}"))?;
        }
        Ok(backend)
    }

    /// Relay one NDJSON line; returns the raw reply line (no newline).
    fn forward_line(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
        if n == 0 || !reply.ends_with('\n') {
            return Err("replica closed mid-reply".into());
        }
        reply.truncate(reply.trim_end_matches(['\r', '\n']).len());
        Ok(reply)
    }

    /// Relay one v2 frame; returns the full reply frame bytes
    /// (length prefix included) for verbatim relay to the client.
    fn forward_frame(&mut self, frame: &[u8]) -> Result<Vec<u8>, String> {
        self.writer.write_all(frame).map_err(|e| format!("send: {e}"))?;
        let mut len_bytes = [0u8; 4];
        self.reader.read_exact(&mut len_bytes).map_err(|e| format!("recv: {e}"))?;
        let len =
            proto2::checked_len(u32::from_le_bytes(len_bytes), proto2::MAX_FRAME, "reply frame")?;
        if len < 5 {
            return Err(format!("bad reply frame length {len}"));
        }
        let mut full = Vec::with_capacity(4 + len);
        full.extend_from_slice(&len_bytes);
        full.resize(4 + len, 0);
        self.reader.read_exact(&mut full[4..]).map_err(|e| format!("recv: {e}"))?;
        Ok(full)
    }
}

/// Per-connection pool of backend sockets, keyed by replica index and
/// discarded when the replica's generation moves on (restart).
struct BackendPool {
    proto: Proto,
    conns: BTreeMap<usize, Backend>,
}

impl BackendPool {
    fn new(proto: Proto) -> Self {
        Self { proto, conns: BTreeMap::new() }
    }

    fn acquire(&mut self, replica: &Replica) -> Result<&mut Backend, String> {
        let generation = replica.generation.load(Ordering::Relaxed);
        let stale = self
            .conns
            .get(&replica.index)
            .is_some_and(|b| b.generation != generation);
        if stale {
            self.conns.remove(&replica.index);
        }
        if !self.conns.contains_key(&replica.index) {
            let backend = Backend::connect(&replica.current_addr(), self.proto, generation)?;
            self.conns.insert(replica.index, backend);
        }
        self.conns
            .get_mut(&replica.index)
            .ok_or_else(|| "backend connection missing".to_string())
    }

    fn drop_conn(&mut self, index: usize) {
        self.conns.remove(&index);
    }
}

/// The router: start with [`Router::start`].
pub struct Router;

/// A running router: frontend address plus the stop lever.
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    ctx: Arc<RouterCtx>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound frontend address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current address of replica `index` (changes across restarts).
    pub fn replica_addr(&self, index: usize) -> Option<String> {
        self.ctx.replicas.get(index).map(Replica::current_addr)
    }

    /// Total restarts across the fleet.
    pub fn restarts_total(&self) -> u64 {
        self.ctx
            .replicas
            .iter()
            .map(|r| r.restarts.load(Ordering::Relaxed))
            .sum()
    }

    /// The router-level stats snapshot (same payload as the `stats` op).
    pub fn snapshot(&self) -> Value {
        self.ctx.snapshot()
    }

    /// Kill replica `index`'s process (chaos helper: simulates a crash
    /// the health monitor must repair). Returns false for external or
    /// already-dead replicas.
    pub fn kill_replica(&self, index: usize) -> bool {
        let Some(replica) = self.ctx.replicas.get(index) else {
            return false;
        };
        // Take the child out of the slot and drop the lock before the
        // kill/reap syscalls: `wait` can stall, and the health monitor
        // must stay able to lock `child` meanwhile. The empty slot
        // reads as "exited" on the monitor's next tick, which respawns
        // spawned replicas exactly as the reaped-exit path does.
        let taken = match replica.child.lock() {
            Ok(mut guard) => guard.take(),
            Err(_) => return false,
        };
        match taken {
            Some(mut child) => {
                let killed = child.kill().is_ok();
                // Reap immediately so the monitor sees the exit on its
                // next tick rather than a zombie.
                let _status = child.wait();
                killed
            }
            None => false,
        }
    }

    /// Stop the frontend, join every connection, then stop the fleet's
    /// spawned replicas.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
        // The monitor is already joined, so nothing respawns: take each
        // child out of its slot and reap with no lock held.
        for replica in self.ctx.replicas.iter() {
            let taken = match replica.child.lock() {
                Ok(mut guard) => guard.take(),
                Err(_) => None,
            };
            if let Some(mut child) = taken {
                let _killed = child.kill().is_ok();
                let _status = child.wait();
            }
        }
    }
}

impl Router {
    /// Spawn/attach every replica, wait for readiness, bind the
    /// frontend, and start routing.
    pub fn start(config: RouterConfig) -> Result<RouterHandle, TsdaError> {
        if config.replicas.is_empty() {
            return Err(TsdaError::InvalidParameter("router needs at least one replica".into()));
        }
        let mut replicas = Vec::with_capacity(config.replicas.len());
        // An empty model list is legal: a replica may serve only
        // augmentation pipelines, which are unsharded (any replica
        // answers any pipeline), so the router needs no map for them.
        for (index, spec) in config.replicas.iter().enumerate() {
            let (child, addr) = match spec {
                ReplicaSpec::Spawn { bin, args, .. } => {
                    let (child, addr) = spawn_replica(bin, args)
                        .map_err(TsdaError::InvalidParameter)?;
                    (Some(child), addr)
                }
                ReplicaSpec::External { addr, .. } => (None, addr.clone()),
            };
            wait_ready(&addr, config.wait_ready_secs)
                .map_err(|e| TsdaError::InvalidParameter(format!("replica {index}: {e}")))?;
            replicas.push(Replica {
                index,
                spec: spec.clone(),
                addr: Mutex::new(addr),
                healthy: AtomicBool::new(true),
                generation: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                forwarded: AtomicU64::new(0),
                restarts: AtomicU64::new(0),
                child: Mutex::new(child),
            });
        }

        let addr_spec =
            if config.addr.is_empty() { "127.0.0.1:0" } else { config.addr.as_str() };
        let listener = TcpListener::bind(addr_spec)
            .map_err(|e| TsdaError::InvalidParameter(format!("bind {addr_spec}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| TsdaError::InvalidParameter(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TsdaError::InvalidParameter(format!("set_nonblocking: {e}")))?;

        let ctx = Arc::new(RouterCtx {
            replicas,
            policy: config.policy,
            admission: config.admission.map(Admission::new),
            stats: RouterStats::default(),
            started: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        let health_thread = {
            let ctx = Arc::clone(&ctx);
            let shutdown = Arc::clone(&shutdown);
            let interval = config.health_interval;
            let ready_secs = config.wait_ready_secs;
            std::thread::Builder::new()
                .name("tsda-router-health".into())
                .spawn(move || health_loop(&ctx, &shutdown, interval, ready_secs))
                .map_err(|e| TsdaError::InvalidParameter(format!("spawn health thread: {e}")))?
        };

        let accept_thread = {
            let ctx = Arc::clone(&ctx);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("tsda-router-accept".into())
                .spawn(move || router_accept_loop(&listener, &ctx, &shutdown))
                .map_err(|e| TsdaError::InvalidParameter(format!("spawn accept thread: {e}")))?
        };

        Ok(RouterHandle {
            addr,
            shutdown,
            ctx,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
        })
    }
}

/// Spawn one replica process and learn its address from the
/// `listening on <addr>` readiness line. The remaining stdout is
/// drained by a detached thread so the child never blocks on a full
/// pipe.
fn spawn_replica(bin: &str, args: &[String]) -> Result<(Child, String), String> {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {bin}: {e}"))?;
    let Some(stdout) = child.stdout.take() else {
        let _killed = child.kill().is_ok();
        let _status = child.wait();
        return Err("replica stdout not captured".into());
    };
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                // Child exited before becoming ready (bad flags, bind
                // failure, …). Reap it and surface the failure.
                let status = child.wait().map(|s| s.to_string()).unwrap_or_default();
                return Err(format!("replica exited before readiness ({status})"));
            }
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix("listening on ") {
                    break rest.trim().to_string();
                }
            }
            Err(e) => {
                let _killed = child.kill().is_ok();
                let _status = child.wait();
                return Err(format!("read replica stdout: {e}"));
            }
        }
    };
    if std::thread::Builder::new()
        .name("tsda-replica-drain".into())
        .spawn(move || {
            let _copied = std::io::copy(&mut reader, &mut std::io::sink());
        })
        .is_err()
    {
        // Draining is best-effort; a missing drain thread only matters
        // if the replica logs more than the pipe buffer.
    }
    Ok((child, addr))
}

/// The monitor: reap and respawn dead spawned replicas, probe unhealthy
/// ones back into rotation.
fn health_loop(
    ctx: &RouterCtx,
    shutdown: &AtomicBool,
    interval: Duration,
    ready_secs: u64,
) {
    while !shutdown.load(Ordering::Relaxed) {
        for replica in ctx.replicas.iter() {
            check_replica(replica, shutdown, ready_secs);
        }
        std::thread::sleep(interval);
    }
}

/// One monitor pass over one replica.
fn check_replica(replica: &Replica, shutdown: &AtomicBool, ready_secs: u64) {
    // Detect process death (spawned replicas only).
    let exited = match replica.child.lock() {
        Ok(mut guard) => match guard.as_mut() {
            Some(child) => match child.try_wait() {
                Ok(Some(_status)) => {
                    *guard = None;
                    true
                }
                Ok(None) => false,
                Err(_) => false,
            },
            None => matches!(replica.spec, ReplicaSpec::Spawn { .. }),
        },
        Err(_) => false,
    };
    if exited {
        replica.healthy.store(false, Ordering::Relaxed);
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if let ReplicaSpec::Spawn { bin, args, .. } = &replica.spec {
            if let Ok((child, addr)) = spawn_replica(bin, args) {
                // lock-order: child and addr are taken in sequential
                // scopes, never nested. Pair atomicity is not needed —
                // only this monitor thread writes either slot, and the
                // replica stays out of rotation until wait_ready below
                // re-admits it.
                if let Ok(mut child_guard) = replica.child.lock() {
                    *child_guard = Some(child);
                }
                if let Ok(mut addr_guard) = replica.addr.lock() {
                    *addr_guard = addr;
                }
                // New process: invalidate pooled connections first,
                // then let readiness probing re-admit the replica.
                replica.generation.fetch_add(1, Ordering::Relaxed);
                replica.restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if !replica.healthy.load(Ordering::Relaxed) && !shutdown.load(Ordering::Relaxed) {
        let addr = replica.current_addr();
        if !addr.is_empty() && wait_ready(&addr, ready_secs.min(5)).is_ok() {
            replica.healthy.store(true, Ordering::Relaxed);
        }
    }
}

/// Accept loop for the frontend (mirrors the server's).
fn router_accept_loop(listener: &TcpListener, ctx: &Arc<RouterCtx>, shutdown: &Arc<AtomicBool>) {
    let mut conn_threads = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                let ctx = Arc::clone(ctx);
                let shutdown = Arc::clone(shutdown);
                if let Ok(t) = std::thread::Builder::new()
                    .name("tsda-router-conn".into())
                    .spawn(move || handle_router_connection(stream, &ctx, &shutdown))
                {
                    conn_threads.push(t);
                }
                conn_threads.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// The wire protocol a frontend connection settled on.
enum Mode {
    Undecided,
    Ndjson,
    V2,
}

/// One frontend connection: negotiate, then route request-by-request.
/// Same read-timeout poll and shutdown drain as the server's handler.
fn handle_router_connection(stream: TcpStream, ctx: &RouterCtx, shutdown: &AtomicBool) {
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if reader.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    let mut writer = stream;
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut mode = Mode::Undecided;
    let mut lines_pool = BackendPool::new(Proto::Ndjson);
    let mut frames_pool = BackendPool::new(Proto::V2);
    loop {
        // Negotiation: identical first-byte rule to the server.
        if matches!(mode, Mode::Undecided) && !buf.is_empty() {
            if buf[0] != proto2::PREAMBLE[0] {
                mode = Mode::Ndjson;
            } else if buf.len() >= proto2::PREAMBLE.len() {
                if buf[..proto2::PREAMBLE.len()] == proto2::PREAMBLE {
                    buf.drain(..proto2::PREAMBLE.len());
                    mode = Mode::V2;
                } else {
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let mut resp = error_response(0, "bad protocol preamble").into_bytes();
                    resp.push(b'\n');
                    let _delivered = writer.write_all(&resp).is_ok();
                    return;
                }
            }
        }
        let keep = match mode {
            Mode::Undecided => true,
            Mode::Ndjson => route_buffered_lines(&mut buf, &mut writer, ctx, &peer, &mut lines_pool),
            Mode::V2 => route_buffered_frames(&mut buf, &mut writer, ctx, &peer, &mut frames_pool),
        };
        if !keep {
            return;
        }
        if shutdown.load(Ordering::Relaxed) {
            // Final drain, same contract as the server: everything the
            // peer already sent gets an answer.
            loop {
                match reader.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            match mode {
                Mode::Undecided => {}
                Mode::Ndjson => {
                    route_buffered_lines(&mut buf, &mut writer, ctx, &peer, &mut lines_pool);
                }
                Mode::V2 => {
                    route_buffered_frames(&mut buf, &mut writer, ctx, &peer, &mut frames_pool);
                }
            }
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Pop complete NDJSON lines and answer each (routing predicts).
fn route_buffered_lines(
    buf: &mut Vec<u8>,
    writer: &mut TcpStream,
    ctx: &RouterCtx,
    peer: &str,
    pool: &mut BackendPool,
) -> bool {
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let mut line: Vec<u8> = buf.drain(..=pos).collect();
        line.pop();
        let line = String::from_utf8_lossy(&line).into_owned();
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut reply = handle_router_line(line, ctx, peer, pool);
        reply.push('\n');
        if writer.write_all(reply.as_bytes()).is_err() {
            return false;
        }
    }
    true
}

/// Answer one NDJSON request at the router.
fn handle_router_line(
    line: &str,
    ctx: &RouterCtx,
    peer: &str,
    pool: &mut BackendPool,
) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(id, &msg);
        }
    };
    match request {
        Request::Predict { id, model, series } => {
            ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Some(adm) = &ctx.admission {
                if let Err(retry_ms) = adm.admit(peer) {
                    ctx.stats.throttled.fetch_add(1, Ordering::Relaxed);
                    return throttled_response(id, retry_ms);
                }
            }
            let key = proto2::fnv1a(series.as_bytes());
            forward_with_failover(ctx, pool, Some(&model), key, |backend| {
                backend.forward_line(line)
            })
            .unwrap_or_else(|msg| {
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                error_response(id, &msg)
            })
        }
        Request::Augment { id, series, .. } => {
            ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Some(adm) = &ctx.admission {
                if let Err(retry_ms) = adm.admit(peer) {
                    ctx.stats.throttled.fetch_add(1, Ordering::Relaxed);
                    return throttled_response(id, retry_ms);
                }
            }
            // Pipelines are not sharded: every replica loads the same
            // TOML, so any healthy replica can answer. Key on the
            // series content so hash routing stays sticky per sample.
            let key = proto2::fnv1a(series.as_bytes());
            forward_with_failover(ctx, pool, None, key, |backend| backend.forward_line(line))
                .unwrap_or_else(|msg| {
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    error_response(id, &msg)
                })
        }
        Request::Stats { id } => result_response(id, ctx.snapshot()),
        Request::Ping { id } => result_response(id, Value::Str("pong".to_string())),
        Request::List { id } => {
            // Any healthy replica can describe its models; aggregate
            // placement lives in the stats snapshot.
            forward_any(ctx, pool, |backend| backend.forward_line(line)).unwrap_or_else(|msg| {
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                error_response(id, &msg)
            })
        }
    }
}

/// Pop complete v2 frames and answer each (routing predicts verbatim).
fn route_buffered_frames(
    buf: &mut Vec<u8>,
    writer: &mut TcpStream,
    ctx: &RouterCtx,
    peer: &str,
    pool: &mut BackendPool,
) -> bool {
    loop {
        let raw = match proto2::take_frame(buf) {
            Ok(Some(raw)) => raw,
            Ok(None) => return true,
            Err(msg) => {
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                let reply = proto2::encode_reply_error(0, proto2::ErrCode::Error, &msg, 0);
                let _delivered = writer.write_all(&reply).is_ok();
                return false;
            }
        };
        let reply = handle_router_frame(&raw, ctx, peer, pool);
        if writer.write_all(&reply).is_err() {
            return false;
        }
    }
}

/// Answer one raw v2 frame at the router. Predicts are relayed as the
/// exact bytes that arrived; only the routing header is decoded.
fn handle_router_frame(
    raw: &[u8],
    ctx: &RouterCtx,
    peer: &str,
    pool: &mut BackendPool,
) -> Vec<u8> {
    let body = match proto2::check_frame(raw) {
        Ok(b) => b,
        Err(msg) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            return proto2::encode_reply_error(0, proto2::ErrCode::Error, &msg, 0);
        }
    };
    let routing = match proto2::decode_routing(body) {
        Ok(r) => r,
        Err((id, msg)) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            return proto2::encode_reply_error(id, proto2::ErrCode::Error, &msg, 0);
        }
    };
    match routing {
        proto2::Routing::Predict { id, model, key } => {
            ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Some(adm) = &ctx.admission {
                if let Err(retry_ms) = adm.admit(peer) {
                    ctx.stats.throttled.fetch_add(1, Ordering::Relaxed);
                    return proto2::encode_reply_error(
                        id,
                        proto2::ErrCode::Throttled,
                        "throttled",
                        retry_ms,
                    );
                }
            }
            let frame = proto2::reframe(raw);
            forward_with_failover(ctx, pool, Some(&model), key, |backend| {
                backend.forward_frame(&frame)
            })
            .unwrap_or_else(|msg| {
                ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                proto2::encode_reply_error(id, proto2::ErrCode::Error, &msg, 0)
            })
        }
        proto2::Routing::Augment { id, key, .. } => {
            ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Some(adm) = &ctx.admission {
                if let Err(retry_ms) = adm.admit(peer) {
                    ctx.stats.throttled.fetch_add(1, Ordering::Relaxed);
                    return proto2::encode_reply_error(
                        id,
                        proto2::ErrCode::Throttled,
                        "throttled",
                        retry_ms,
                    );
                }
            }
            // Any healthy replica serves every pipeline; relay the
            // frame verbatim under the payload content key.
            let frame = proto2::reframe(raw);
            forward_with_failover(ctx, pool, None, key, |backend| backend.forward_frame(&frame))
                .unwrap_or_else(|msg| {
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    proto2::encode_reply_error(id, proto2::ErrCode::Error, &msg, 0)
                })
        }
        proto2::Routing::Stats { id } => proto2::encode_reply_result(id, &ctx.snapshot()),
        proto2::Routing::Ping { id } => {
            proto2::encode_reply_result(id, &Value::Str("pong".to_string()))
        }
        proto2::Routing::List { id } => {
            let frame = proto2::reframe(raw);
            forward_any(ctx, pool, |backend| backend.forward_frame(&frame)).unwrap_or_else(
                |msg| {
                    ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
                    proto2::encode_reply_error(id, proto2::ErrCode::Error, &msg, 0)
                },
            )
        }
    }
}

/// Forward one request to the best replica for `model`, failing over
/// across every healthy candidate. A replica whose forward fails is
/// marked unhealthy (the monitor probes or restarts it back) and its
/// pooled socket dropped. `Err` only when every candidate failed.
fn forward_with_failover<T>(
    ctx: &RouterCtx,
    pool: &mut BackendPool,
    model: Option<&str>,
    key: u64,
    mut send: impl FnMut(&mut Backend) -> Result<T, String>,
) -> Result<T, String> {
    let mut tried = Vec::new();
    let mut last_err = match model {
        Some(m) => format!("no healthy replica serves model {m:?}"),
        None => "no healthy replica".to_string(),
    };
    while let Some(replica) = ctx.pick(model, key, &tried) {
        tried.push(replica.index);
        replica.in_flight.fetch_add(1, Ordering::Relaxed);
        let outcome = pool.acquire(replica).and_then(&mut send);
        replica.in_flight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(reply) => {
                replica.forwarded.fetch_add(1, Ordering::Relaxed);
                ctx.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                if tried.len() > 1 {
                    ctx.stats.failovers.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(reply);
            }
            Err(e) => {
                // The replica is gone or misbehaving: out of rotation
                // until the monitor re-admits it, and this socket can
                // never be trusted again (a half-read reply desyncs).
                replica.healthy.store(false, Ordering::Relaxed);
                pool.drop_conn(replica.index);
                last_err = format!("replica {}: {e}", replica.index);
            }
        }
    }
    Err(last_err)
}

/// Forward to any healthy replica (for model-agnostic ops like `list`).
fn forward_any<T>(
    ctx: &RouterCtx,
    pool: &mut BackendPool,
    mut send: impl FnMut(&mut Backend) -> Result<T, String>,
) -> Result<T, String> {
    let mut tried = Vec::new();
    let mut last_err = "no healthy replica".to_string();
    loop {
        let next = ctx
            .replicas
            .iter()
            .find(|r| r.healthy.load(Ordering::Relaxed) && !tried.contains(&r.index));
        let Some(replica) = next else {
            return Err(last_err);
        };
        tried.push(replica.index);
        match pool.acquire(replica).and_then(&mut send) {
            Ok(reply) => return Ok(reply),
            Err(e) => {
                replica.healthy.store(false, Ordering::Relaxed);
                pool.drop_conn(replica.index);
                last_err = format!("replica {}: {e}", replica.index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_policy_flags_round_trip() {
        assert_eq!(RoutePolicy::from_flag("least-loaded").unwrap(), RoutePolicy::LeastLoaded);
        assert_eq!(RoutePolicy::from_flag("hash").unwrap(), RoutePolicy::Hash);
        assert!(RoutePolicy::from_flag("nope").is_err());
        assert_eq!(RoutePolicy::Hash.name(), "hash");
    }

    fn test_ctx(policy: RoutePolicy, n: usize, models: &[&str]) -> RouterCtx {
        let replicas = (0..n)
            .map(|index| Replica {
                index,
                spec: ReplicaSpec::External {
                    addr: format!("127.0.0.1:{}", 20000 + index),
                    models: models.iter().map(|m| m.to_string()).collect(),
                },
                addr: Mutex::new(format!("127.0.0.1:{}", 20000 + index)),
                healthy: AtomicBool::new(true),
                generation: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                forwarded: AtomicU64::new(0),
                restarts: AtomicU64::new(0),
                child: Mutex::new(None),
            })
            .collect();
        RouterCtx {
            replicas,
            policy,
            admission: None,
            stats: RouterStats::default(),
            started: Instant::now(),
        }
    }

    #[test]
    fn least_loaded_picks_the_idle_replica() {
        let ctx = test_ctx(RoutePolicy::LeastLoaded, 3, &["rocket"]);
        ctx.replicas[0].in_flight.store(5, Ordering::Relaxed);
        ctx.replicas[1].in_flight.store(1, Ordering::Relaxed);
        ctx.replicas[2].in_flight.store(9, Ordering::Relaxed);
        assert_eq!(ctx.pick(Some("rocket"), 0, &[]).map(|r| r.index), Some(1));
        // Skipping the best candidate falls back to the next-least.
        assert_eq!(ctx.pick(Some("rocket"), 0, &[1]).map(|r| r.index), Some(0));
        // Unknown model: nothing serves it.
        assert_eq!(ctx.pick(Some("nope"), 0, &[]).map(|r| r.index), None);
    }

    #[test]
    fn unhealthy_replicas_are_never_picked() {
        let ctx = test_ctx(RoutePolicy::LeastLoaded, 2, &["rocket"]);
        ctx.replicas[0].healthy.store(false, Ordering::Relaxed);
        assert_eq!(ctx.pick(Some("rocket"), 0, &[]).map(|r| r.index), Some(1));
        ctx.replicas[1].healthy.store(false, Ordering::Relaxed);
        assert!(ctx.pick(Some("rocket"), 0, &[]).is_none());
    }

    #[test]
    fn rendezvous_hash_is_sticky_and_spreads() {
        let ctx = test_ctx(RoutePolicy::Hash, 4, &["rocket"]);
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..256u64 {
            let a = ctx.pick(Some("rocket"), key, &[]).map(|r| r.index);
            let b = ctx.pick(Some("rocket"), key, &[]).map(|r| r.index);
            assert_eq!(a, b, "same key must route identically");
            seen.insert(a);
        }
        assert!(seen.len() >= 3, "256 keys should spread over ≥3 of 4 replicas, got {seen:?}");
        // Losing a replica only remaps its own share.
        let key = 42;
        let before = ctx.pick(Some("rocket"), key, &[]).map(|r| r.index).unwrap();
        let other_key = (0..256u64)
            .find(|k| ctx.pick(Some("rocket"), *k, &[]).map(|r| r.index) != Some(before))
            .unwrap();
        let other_before = ctx.pick(Some("rocket"), other_key, &[]).map(|r| r.index);
        ctx.replicas[before].healthy.store(false, Ordering::Relaxed);
        assert_ne!(ctx.pick(Some("rocket"), key, &[]).map(|r| r.index), Some(before));
        assert_eq!(ctx.pick(Some("rocket"), other_key, &[]).map(|r| r.index), other_before);
    }

    #[test]
    fn snapshot_describes_the_fleet() {
        let ctx = test_ctx(RoutePolicy::LeastLoaded, 2, &["rocket", "inception"]);
        ctx.stats.requests.store(7, Ordering::Relaxed);
        let snap = ctx.snapshot();
        assert_eq!(snap.get("role").and_then(Value::as_str), Some("router"));
        assert_eq!(snap.get("requests").and_then(Value::as_f64), Some(7.0));
        let replicas = match snap.get("replicas") {
            Some(Value::Array(a)) => a,
            other => panic!("replicas not an array: {other:?}"),
        };
        assert_eq!(replicas.len(), 2);
        assert_eq!(replicas[0].get("healthy"), Some(&Value::Bool(true)));
    }
}
