//! Named-model registry: load many saved models at startup, validate
//! request shapes, and run batched predictions.
//!
//! ROCKET, MiniRocket, and ridge are served through their `&self`
//! prediction paths, so batch workers read the registry through a plain
//! `Arc` with no locking. InceptionTime's forward pass caches
//! activations (`&mut`), so it sits behind a `Mutex`; contention is nil
//! because only that model's single batch worker ever locks it.

use serde::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;
use tsda_classify::persist::SavedModel;
use tsda_classify::{InceptionTime, MiniRocket, RidgeClassifier, Rocket};
use tsda_core::{Dataset, Label, Mts, TsdaError};

enum ModelInner {
    Rocket(Rocket),
    MiniRocket(MiniRocket),
    /// Served over flattened raw series values (dimension-major), the
    /// linear baseline: `n_features = n_dims × series_len`.
    Ridge(RidgeClassifier),
    Inception(Mutex<InceptionTime>),
    /// Constant-label model with a trivially allocation-free predict
    /// path; exists so the allocation-count harness can measure the
    /// batcher itself rather than a real model's transform.
    Stub(Label),
}

/// One served model plus the input contract requests must meet.
pub struct ModelEntry {
    name: String,
    kind: &'static str,
    n_dims: usize,
    series_len: usize,
    n_classes: usize,
    inner: ModelInner,
}

impl ModelEntry {
    /// Wrap a loaded model under a registry name.
    ///
    /// Fails on unfitted models (no input contract to validate against).
    /// For ridge the expected feature count must factor as
    /// `n_dims × series_len`, supplied by the caller.
    pub fn from_saved(
        name: &str,
        model: SavedModel,
        ridge_shape: Option<(usize, usize)>,
    ) -> Result<Self, TsdaError> {
        let kind = model.kind();
        let unfitted = || TsdaError::InvalidParameter(format!("model {name:?} is not fitted"));
        let (n_dims, series_len, n_classes, inner) = match model {
            SavedModel::Rocket(m) => {
                let (d, l) = m.input_shape().ok_or_else(unfitted)?;
                (d, l, m.n_classes(), ModelInner::Rocket(m))
            }
            SavedModel::MiniRocket(m) => {
                let (d, l) = m.input_shape().ok_or_else(unfitted)?;
                (d, l, m.n_classes(), ModelInner::MiniRocket(m))
            }
            SavedModel::Ridge(m) => {
                let p = m.n_features().ok_or_else(unfitted)?;
                let (d, l) = ridge_shape.unwrap_or((1, p));
                if d * l != p {
                    return Err(TsdaError::Shape(format!(
                        "ridge shape {d}×{l} does not match {p} features"
                    )));
                }
                (d, l, m.n_classes(), ModelInner::Ridge(m))
            }
            SavedModel::InceptionTime(m) => {
                let (d, l) = m.input_shape().ok_or_else(unfitted)?;
                (d, l, m.n_classes(), ModelInner::Inception(Mutex::new(m)))
            }
        };
        Ok(Self { name: name.to_string(), kind, n_dims, series_len, n_classes, inner })
    }

    /// Constant-label entry for tests that need a model whose predict
    /// path performs no work and no allocation (see the allocation
    /// harness in `tests/alloc_count.rs`). Not reachable from model
    /// loading — only test code constructs it.
    #[doc(hidden)]
    pub fn stub(name: &str, label: Label, n_dims: usize, series_len: usize) -> Self {
        Self {
            name: name.to_string(),
            kind: "stub",
            n_dims,
            series_len,
            n_classes: label + 1,
            inner: ModelInner::Stub(label),
        }
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Codec kind tag.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Required input shape `(n_dims, series_len)`.
    pub fn input_shape(&self) -> (usize, usize) {
        (self.n_dims, self.series_len)
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Check one request series against the input contract.
    pub fn validate(&self, s: &Mts) -> Result<(), String> {
        if s.n_dims() != self.n_dims || s.len() != self.series_len {
            return Err(format!(
                "series shape {}x{} does not match model {:?} ({}x{})",
                s.n_dims(),
                s.len(),
                self.name,
                self.n_dims,
                self.series_len
            ));
        }
        Ok(())
    }

    /// Run one batched prediction. All series must already satisfy
    /// [`Self::validate`]; the batch shares a single transform/forward
    /// pass on the compute pool. Per-series results are independent of
    /// the batch composition, so each label is bit-identical to what
    /// offline `Classifier::predict` returns for that series alone.
    pub fn predict_batch(&self, series: &[Mts]) -> Result<Vec<Label>, TsdaError> {
        let mut out = Vec::new();
        self.predict_batch_into(series, &mut out)?;
        Ok(out)
    }

    /// [`Self::predict_batch`] writing into a caller-owned label
    /// buffer, so a batch worker's steady state reuses one allocation
    /// across batches. `out` is cleared first and holds exactly
    /// `series.len()` labels on success.
    pub fn predict_batch_into(
        &self,
        series: &[Mts],
        out: &mut Vec<Label>,
    ) -> Result<(), TsdaError> {
        out.clear();
        if series.is_empty() {
            return Ok(());
        }
        let labels = match &self.inner {
            ModelInner::Rocket(m) => m.predict_fitted(&self.to_dataset(series))?,
            ModelInner::MiniRocket(m) => m.predict_fitted(&self.to_dataset(series))?,
            ModelInner::Ridge(m) => {
                let rows: Vec<Vec<f64>> =
                    series.iter().map(|s| s.as_flat().to_vec()).collect();
                m.try_predict_features(&rows)?
            }
            ModelInner::Inception(m) => {
                let ds = self.to_dataset(series);
                // lock-order: the model mutex is a leaf lock. predict
                // needs `&mut` (buffer reuse inside the network), so the
                // guard spans the forward pass — pure compute on the
                // deterministic pool, no IO and no other lock (L2-clean
                // by the blocking-reachability check).
                let mut guard = m.lock().map_err(|_| {
                    TsdaError::Numerical("inception model poisoned by a panicked batch".into())
                })?;
                tsda_classify::Classifier::predict(&mut *guard, &ds)
            }
            ModelInner::Stub(label) => {
                out.resize(series.len(), *label);
                return Ok(());
            }
        };
        out.extend_from_slice(&labels);
        Ok(())
    }

    fn to_dataset(&self, series: &[Mts]) -> Dataset {
        let mut ds = Dataset::empty(self.n_classes.max(1));
        for s in series {
            ds.push(s.clone(), 0);
        }
        ds
    }

    /// Describe the entry for the `list` endpoint.
    pub fn describe(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("kind".into(), Value::Str(self.kind.to_string())),
            ("n_dims".into(), Value::Num(self.n_dims as f64)),
            ("series_len".into(), Value::Num(self.series_len as f64)),
            ("n_classes".into(), Value::Num(self.n_classes as f64)),
        ])
    }
}

/// All models served by one server instance, keyed by name.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, ModelEntry>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an entry under its name (replacing any previous holder).
    pub fn insert(&mut self, entry: ModelEntry) {
        self.models.insert(entry.name.clone(), entry);
    }

    /// Look up a model by name.
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.models.get(name)
    }

    /// Model names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// `list` endpoint payload.
    pub fn describe(&self) -> Value {
        Value::Array(self.models.values().map(ModelEntry::describe).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tsda_core::rng::seeded;
    use tsda_classify::{Classifier, RocketConfig};

    fn toy_dataset(seed: u64) -> Dataset {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(seed);
        for c in 0..2 {
            let freq = if c == 0 { 0.3 } else { 0.9 };
            for _ in 0..10 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..24)
                        .map(|t| (t as f64 * freq + phase).sin())
                        .collect()]),
                    c,
                );
            }
        }
        ds
    }

    #[test]
    fn entry_validates_shapes_and_matches_offline_predict() {
        let train = toy_dataset(1);
        let test = toy_dataset(2);
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 50, ..RocketConfig::default() });
        rocket.fit(&train, None, &mut seeded(3));
        let offline = rocket.predict(&test);
        let entry = ModelEntry::from_saved("r", SavedModel::Rocket(rocket), None).unwrap();
        assert_eq!(entry.input_shape(), (1, 24));
        assert!(entry.validate(&Mts::zeros(1, 24)).is_ok());
        assert!(entry.validate(&Mts::zeros(2, 24)).is_err());
        assert!(entry.validate(&Mts::zeros(1, 23)).is_err());
        let served = entry.predict_batch(test.series()).unwrap();
        assert_eq!(served, offline);
    }

    #[test]
    fn unfitted_models_are_rejected() {
        let rocket = Rocket::new(RocketConfig::default());
        assert!(ModelEntry::from_saved("r", SavedModel::Rocket(rocket), None).is_err());
    }

    #[test]
    fn registry_lookup_and_listing() {
        let train = toy_dataset(4);
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 30, ..RocketConfig::default() });
        rocket.fit(&train, None, &mut seeded(5));
        let mut reg = ModelRegistry::new();
        reg.insert(ModelEntry::from_saved("rocket", SavedModel::Rocket(rocket), None).unwrap());
        assert_eq!(reg.names(), vec!["rocket".to_string()]);
        assert!(reg.get("rocket").is_some());
        assert!(reg.get("nope").is_none());
        let listing = serde_json::to_string(&reg.describe()).unwrap();
        assert!(listing.contains("\"rocket\""));
    }
}
