//! Minimal SIGINT/SIGTERM hook without a libc dependency.
//!
//! The handler only stores to a process-wide atomic; the serve loop
//! polls [`shutdown_requested`] between accepts and drains gracefully.
//! On non-unix targets installation is a no-op (ctrl-c then terminates
//! the process the default way).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been delivered (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::Relaxed)
}

/// Flip the flag by hand (tests, or a controlling thread).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2). Registering an `extern "C" fn` that only
        // touches an atomic is async-signal-safe.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::request_shutdown();
    }

    /// Route SIGINT and SIGTERM to the shutdown flag.
    pub fn install() {
        // SAFETY: `signal(2)` is called with valid signal numbers and a
        // handler that is an `extern "C" fn` performing only an atomic
        // store (async-signal-safe); no data is shared with the handler
        // beyond that atomic, and the call itself cannot violate memory
        // safety regardless of its return value.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal hooks off unix; the flag can still be set manually.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_flips_flag() {
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
