//! Adaptive micro-batching: one worker thread per model coalesces
//! concurrent predict requests into single batched `predict` calls.
//!
//! The flush policy is the classic adaptive one: the first job to
//! arrive opens a window of `max_wait`; the batch runs when either
//! `max_batch` jobs are pending or the window closes, whichever comes
//! first. Under load batches fill instantly (amortising the transform /
//! forward pass across requests); a lone request waits at most
//! `max_wait` before running solo.
//!
//! Queues are **bounded** (`queue_cap` jobs per model). When a model's
//! queue is full, [`Batcher::submit`] refuses with
//! [`SubmitError::Overloaded`] and a backoff hint instead of buffering
//! without limit — the connection handler turns that into an explicit
//! `{"ok":false,"error":"overloaded","retry_ms":N}` reply, so overload
//! degrades into client backoff rather than unbounded memory growth and
//! latency collapse. A [`FaultPlan`](crate::faults::FaultPlan) can
//! additionally shed submits and stall workers to prove the path works.
//!
//! # Zero-allocation steady state
//!
//! `submit` is a hot path (`tsda_analyze` R3/A1), so nothing on it may
//! allocate once the server is warm:
//!
//! * each queue is a [`JobRing`] — a `VecDeque` preallocated to
//!   `queue_cap` behind one mutex, so enqueue/dequeue never grow it;
//! * each reply travels through a recycled [`ReplyTicket`] from a warm
//!   [`TicketPool`] (also preallocated to `queue_cap`), replacing the
//!   per-request `mpsc::sync_channel` pair the first version allocated;
//! * the workers keep per-thread scratch (`series` / `pending` vectors
//!   sized to `max_batch`) and **move** each job's series into the
//!   batch instead of cloning it.
//!
//! The only remaining per-request allocation is the decoded request
//! series itself, which the client owns. The `stats` endpoint exposes
//! per-queue `ticket_allocs` counters: they stay at zero while the warm
//! pool covers the in-flight high-water mark, which is what the
//! allocation-count harness (`tests/alloc_count.rs`) pins.
//!
//! Shutdown: workers drain until every ring is closed **and** empty, so
//! a server shutting down under load still answers every job that was
//! accepted into a queue before the listener stopped. A worker that
//! drops a job without answering (e.g. a panic mid-batch) still wakes
//! the waiting connection: dropping a [`ReplySlot`] posts a shutdown
//! error into its ticket.

use crate::faults::FaultPlan;
use crate::pipelines::PipelineRegistry;
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsda_core::{Label, Mts, TsdaError};

/// Micro-batcher knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush this long after the first pending request arrived.
    pub max_wait: Duration,
    /// Maximum jobs queued per model before submits are shed with an
    /// `overloaded` reply.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 32, max_wait: Duration::from_millis(2), queue_cap: 256 }
    }
}

/// The answer a connection handler gets back for one queued series.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Predicted label, or a client-facing error message.
    pub result: Result<usize, String>,
    /// How many series shared the batch.
    pub batch_size: usize,
    /// Queue wait + predict time for this job, microseconds.
    pub micros: u64,
}

/// The answer a connection handler gets back for one queued augment.
#[derive(Debug, Clone)]
pub struct AugReply {
    /// Transformed series, or a client-facing error message.
    pub result: Result<Mts, String>,
    /// How many augments shared the batch.
    pub batch_size: usize,
    /// Queue wait + execute time for this job, microseconds.
    pub micros: u64,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No worker serves this model name.
    UnknownModel,
    /// No worker serves this pipeline name.
    UnknownPipeline,
    /// The model's queue is full (or the fault plan shed the submit);
    /// retry after roughly `retry_ms` milliseconds.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_ms: u64,
    },
    /// The batcher is shutting down; the job was not queued.
    Closed,
}

/// The reply a [`ReplySlot`] posts when dropped without an explicit
/// answer, so an abandoned job can never deadlock its waiting
/// connection.
trait AbandonedReply: Sized {
    fn abandoned() -> Self;
}

impl AbandonedReply for BatchReply {
    fn abandoned() -> Self {
        Self { result: Err("server shutting down".to_string()), batch_size: 0, micros: 0 }
    }
}

impl AbandonedReply for AugReply {
    fn abandoned() -> Self {
        Self { result: Err("server shutting down".to_string()), batch_size: 0, micros: 0 }
    }
}

/// A reusable one-shot reply rendezvous: the worker posts into `slot`,
/// the connection thread blocks on `ready`. Tickets live in a
/// [`TicketPool`] and are recycled after each reply, so the steady
/// state submits without allocating.
struct ReplyTicket<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> ReplyTicket<T> {
    fn new() -> Self {
        Self { slot: Mutex::new(None), ready: Condvar::new() }
    }

    /// Lock the slot, shrugging off poison: a reply value is plain
    /// data, never left half-written by a panicking poster.
    fn lock(&self) -> MutexGuard<'_, Option<T>> {
        self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Warm free-list of tickets, preallocated to the queue capacity.
/// `recycle` never grows the list past its initial capacity, so both
/// directions are allocation-free once warm.
struct TicketPool<T> {
    free: Mutex<VecDeque<Arc<ReplyTicket<T>>>>,
}

impl<T> TicketPool<T> {
    fn warm(n: usize) -> Arc<Self> {
        let mut free = VecDeque::with_capacity(n);
        for _ in 0..n {
            free.push_back(Arc::new(ReplyTicket::new()));
        }
        Arc::new(Self { free: Mutex::new(free) })
    }

    fn take(&self) -> Option<Arc<ReplyTicket<T>>> {
        self.free.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop_front()
    }

    /// Return a drained ticket. Bounded at the warm capacity so a
    /// burst of extra tickets (pool exhaustion fallbacks) cannot grow
    /// the free list — `push_back` below capacity never reallocates.
    fn recycle(&self, ticket: &Arc<ReplyTicket<T>>) {
        let mut free = self.free.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if free.len() < free.capacity() {
            free.push_back(Arc::clone(ticket));
        }
    }
}

/// Worker-side half of a ticket. Dropping it without [`Self::send`]
/// posts [`AbandonedReply::abandoned`] so the waiter always wakes.
struct ReplySlot<T: AbandonedReply> {
    ticket: Arc<ReplyTicket<T>>,
    sent: bool,
}

impl<T: AbandonedReply> ReplySlot<T> {
    fn send(mut self, value: T) {
        *self.ticket.lock() = Some(value);
        self.ticket.ready.notify_one();
        self.sent = true;
    }

    /// Disarm without posting anything — for jobs refused before they
    /// ever reached a worker, whose clean ticket goes back to the pool.
    fn cancel(mut self) {
        self.sent = true;
    }
}

impl<T: AbandonedReply> Drop for ReplySlot<T> {
    fn drop(&mut self) {
        if !self.sent {
            {
                let mut slot = self.ticket.lock();
                if slot.is_none() {
                    *slot = Some(T::abandoned());
                }
            }
            self.ticket.ready.notify_one();
        }
    }
}

/// Connection-side half of a ticket, returned by [`Batcher::submit`].
pub struct PendingReply<T> {
    ticket: Arc<ReplyTicket<T>>,
    pool: Arc<TicketPool<T>>,
}

impl<T> PendingReply<T> {
    /// Block until the worker answers (or abandons) this job, then
    /// recycle the ticket into the warm pool.
    pub fn recv(self) -> T {
        let value = {
            let mut slot = self.ticket.lock();
            loop {
                if let Some(value) = slot.take() {
                    break value;
                }
                slot = self
                    .ticket
                    .ready
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Safe to recycle immediately (slot lock released above): after
        // posting, the worker side never touches the ticket again.
        self.pool.recycle(&self.ticket);
        value
    }
}

struct Job {
    series: Mts,
    enqueued: Instant,
    reply: ReplySlot<BatchReply>,
}

struct AugJob {
    series: Mts,
    seed: u64,
    index: u64,
    enqueued: Instant,
    reply: ReplySlot<AugReply>,
}

/// A job refused by [`JobRing::offer`], handed back so its ticket can
/// be recycled cleanly.
enum Refusal<J> {
    Full(J),
    Closed(J),
}

/// Bounded MPSC job queue: a `VecDeque` preallocated to `cap` behind
/// one mutex plus a condvar. Replaces the unbounded `mpsc::channel` +
/// atomic-depth rollback dance: fullness, closedness, and depth are
/// all one lock away, and nothing on the enqueue path allocates.
struct JobRing<J> {
    state: Mutex<RingState<J>>,
    nonempty: Condvar,
    cap: usize,
}

struct RingState<J> {
    jobs: VecDeque<J>,
    closed: bool,
}

impl<J> JobRing<J> {
    fn with_capacity(cap: usize) -> Self {
        Self {
            state: Mutex::new(RingState { jobs: VecDeque::with_capacity(cap), closed: false }),
            nonempty: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingState<J>> {
        // A poisoning panic can only come from a caller's enqueue /
        // dequeue frame; the deque itself is never left inconsistent.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueue, or hand the job back when the ring is full or closed.
    fn offer(&self, job: J) -> Result<(), Refusal<J>> {
        {
            let mut st = self.lock();
            if st.closed {
                return Err(Refusal::Closed(job));
            }
            if st.jobs.len() >= self.cap {
                return Err(Refusal::Full(job));
            }
            st.jobs.push_back(job);
        }
        self.nonempty.notify_one();
        Ok(())
    }

    /// Block until a job arrives; `None` once the ring is closed and
    /// drained (the worker-exit signal).
    fn pop_blocking(&self) -> Option<J> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.nonempty.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pop with a deadline; `None` on timeout or closed-and-drained.
    fn pop_until(&self, deadline: Instant) -> Option<J> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self
                .nonempty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            if timeout.timed_out() {
                return st.jobs.pop_front();
            }
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
    }

    /// Jobs currently queued (named to avoid shadowing container
    /// `len()` calls in the name-based call graph).
    fn queued(&self) -> usize {
        self.lock().jobs.len()
    }
}

/// Per-queue counters surfaced on the `stats` endpoint.
#[derive(Default)]
struct QueueCounters {
    /// Jobs accepted into the ring.
    submitted: AtomicU64,
    /// Submits refused with an `overloaded` reply (ring full or
    /// fault-plan shed).
    shed: AtomicU64,
    /// Hot-path ticket allocations — the warm pool ran dry because
    /// more requests were in flight than `queue_cap`. Zero at steady
    /// state; a nonzero value is the allocation-discipline regression
    /// signal, observable without a profiler.
    ticket_allocs: AtomicU64,
}

struct ModelQueue {
    ring: Arc<JobRing<Job>>,
    tickets: Arc<TicketPool<BatchReply>>,
    counters: Arc<QueueCounters>,
}

struct AugQueue {
    ring: Arc<JobRing<AugJob>>,
    tickets: Arc<TicketPool<AugReply>>,
    counters: Arc<QueueCounters>,
}

/// Handle for submitting jobs to the per-model batch workers.
pub struct Batcher {
    queues: BTreeMap<String, ModelQueue>,
    aug_queues: BTreeMap<String, AugQueue>,
    workers: Vec<JoinHandle<()>>,
    /// Backoff hint for queue-full sheds: a few flush windows.
    shed_retry_ms: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl Batcher {
    /// Spawn one batch worker per registered model. Errors when the OS
    /// refuses a worker thread; already-spawned workers are shut down
    /// cleanly before the error is returned.
    pub fn start(
        registry: Arc<ModelRegistry>,
        pipelines: Arc<PipelineRegistry>,
        stats: Arc<ServerStats>,
        config: BatchConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Self, TsdaError> {
        let mut queues = BTreeMap::new();
        let mut aug_queues = BTreeMap::new();
        let mut workers = Vec::new();
        let queue_cap = config.queue_cap.max(1);
        let shed_retry_ms = (config.max_wait.as_millis() as u64).max(1) * 4;
        for name in registry.names() {
            let ring = Arc::new(JobRing::with_capacity(queue_cap));
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let model = name.clone();
            let worker_ring = Arc::clone(&ring);
            let worker_faults = faults.clone();
            let spawned = std::thread::Builder::new().name(format!("batch-{name}")).spawn(
                move || {
                    worker_loop(&registry, &model, &stats, config, &worker_ring, worker_faults.as_deref())
                },
            );
            match spawned {
                Ok(handle) => {
                    queues.insert(
                        name,
                        ModelQueue {
                            ring,
                            tickets: TicketPool::warm(queue_cap),
                            counters: Arc::new(QueueCounters::default()),
                        },
                    );
                    workers.push(handle);
                }
                Err(e) => {
                    Self { queues, aug_queues, workers, shed_retry_ms, faults }.shutdown();
                    return Err(TsdaError::Io(format!("spawn batch worker for {name:?}: {e}")));
                }
            }
        }
        for name in pipelines.names() {
            let ring = Arc::new(JobRing::with_capacity(queue_cap));
            let pipelines = Arc::clone(&pipelines);
            let stats = Arc::clone(&stats);
            let pipeline = name.clone();
            let worker_ring = Arc::clone(&ring);
            let worker_faults = faults.clone();
            let spawned = std::thread::Builder::new().name(format!("aug-{name}")).spawn(
                move || {
                    aug_worker_loop(
                        &pipelines,
                        &pipeline,
                        &stats,
                        config,
                        &worker_ring,
                        worker_faults.as_deref(),
                    )
                },
            );
            match spawned {
                Ok(handle) => {
                    aug_queues.insert(
                        name,
                        AugQueue {
                            ring,
                            tickets: TicketPool::warm(queue_cap),
                            counters: Arc::new(QueueCounters::default()),
                        },
                    );
                    workers.push(handle);
                }
                Err(e) => {
                    Self { queues, aug_queues, workers, shed_retry_ms, faults }.shutdown();
                    return Err(TsdaError::Io(format!("spawn aug worker for {name:?}: {e}")));
                }
            }
        }
        Ok(Self { queues, aug_queues, workers, shed_retry_ms, faults })
    }

    /// Queue one validated series for the named model. Returns a
    /// [`PendingReply`] the caller blocks on for the reply, or a
    /// [`SubmitError`] explaining the refusal (unknown model, full
    /// queue, shutdown).
    ///
    /// Hot path: runs once per request on the connection thread, so
    /// `tsda_analyze` R3/A1 keep allocations out of it and its callees
    /// — the ring and the ticket pool are both preallocated.
    #[doc(alias = "tsda::hot")]
    pub fn submit(&self, model: &str, series: Mts) -> Result<PendingReply<BatchReply>, SubmitError> {
        let queue = self.queues.get(model).ok_or(SubmitError::UnknownModel)?;
        if let Some(plan) = self.faults.as_deref() {
            if let Some(retry_ms) = plan.shed() {
                queue.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded { retry_ms });
            }
        }
        let ticket = take_ticket(&queue.tickets, &queue.counters);
        let job = Job {
            series,
            enqueued: Instant::now(),
            reply: ReplySlot { ticket: Arc::clone(&ticket), sent: false },
        };
        match queue.ring.offer(job) {
            Ok(()) => {
                queue.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(PendingReply { ticket, pool: Arc::clone(&queue.tickets) })
            }
            Err(Refusal::Full(job)) => {
                job.reply.cancel();
                queue.tickets.recycle(&ticket);
                queue.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded { retry_ms: self.shed_retry_ms })
            }
            Err(Refusal::Closed(job)) => {
                job.reply.cancel();
                Err(SubmitError::Closed)
            }
        }
    }

    /// Queue one series for the named augmentation pipeline. Same
    /// bounded-queue discipline as [`Self::submit`]: full queues shed
    /// with a retry hint instead of buffering without limit.
    ///
    /// Hot path: runs once per augment request on the connection
    /// thread, so `tsda_analyze` R3/A1 keep allocations out of it and
    /// its callees.
    #[doc(alias = "tsda::hot")]
    pub fn submit_augment(
        &self,
        pipeline: &str,
        series: Mts,
        seed: u64,
        index: u64,
    ) -> Result<PendingReply<AugReply>, SubmitError> {
        let queue = self.aug_queues.get(pipeline).ok_or(SubmitError::UnknownPipeline)?;
        if let Some(plan) = self.faults.as_deref() {
            if let Some(retry_ms) = plan.shed() {
                queue.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded { retry_ms });
            }
        }
        let ticket = take_ticket(&queue.tickets, &queue.counters);
        let job = AugJob {
            series,
            seed,
            index,
            enqueued: Instant::now(),
            reply: ReplySlot { ticket: Arc::clone(&ticket), sent: false },
        };
        match queue.ring.offer(job) {
            Ok(()) => {
                queue.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(PendingReply { ticket, pool: Arc::clone(&queue.tickets) })
            }
            Err(Refusal::Full(job)) => {
                job.reply.cancel();
                queue.tickets.recycle(&ticket);
                queue.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded { retry_ms: self.shed_retry_ms })
            }
            Err(Refusal::Closed(job)) => {
                job.reply.cancel();
                Err(SubmitError::Closed)
            }
        }
    }

    /// Current queue depth for a model (observability / tests).
    pub fn depth(&self, model: &str) -> Option<usize> {
        self.queues.get(model).map(|q| q.ring.queued())
    }

    /// Per-queue counters for the `stats` endpoint: live depth,
    /// accepted / shed submits, and hot-path ticket allocations (zero
    /// while the warm pool covers the in-flight high-water mark).
    pub fn queue_stats(&self) -> Value {
        let mut rows = Vec::new();
        for (name, q) in &self.queues {
            rows.push(queue_row(name, "predict", q.ring.queued(), &q.counters));
        }
        for (name, q) in &self.aug_queues {
            rows.push(queue_row(name, "augment", q.ring.queued(), &q.counters));
        }
        Value::Array(rows)
    }

    /// Close every ring (workers drain every queued job, then exit)
    /// and join every worker.
    pub fn shutdown(mut self) {
        self.close_rings();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }

    fn close_rings(&self) {
        for q in self.queues.values() {
            q.ring.close();
        }
        for q in self.aug_queues.values() {
            q.ring.close();
        }
    }
}

impl Drop for Batcher {
    /// Safety net for handles dropped without [`Self::shutdown`]: close
    /// the rings so workers exit instead of blocking forever. (Joining
    /// is still `shutdown`'s job; `Drop` must not block.)
    fn drop(&mut self) {
        self.close_rings();
    }
}

/// Pop a warm ticket, falling back to a fresh allocation (counted —
/// this is the one hot-path allocation that can still happen, and only
/// when more jobs are in flight than the pool was warmed for).
fn take_ticket<T>(pool: &Arc<TicketPool<T>>, counters: &QueueCounters) -> Arc<ReplyTicket<T>> {
    match pool.take() {
        Some(t) => t,
        None => {
            counters.ticket_allocs.fetch_add(1, Ordering::Relaxed);
            Arc::new(ReplyTicket::new())
        }
    }
}

fn queue_row(name: &str, lane: &str, depth: usize, c: &QueueCounters) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.to_string())),
        ("lane".into(), Value::Str(lane.to_string())),
        ("depth".into(), Value::Num(depth as f64)),
        ("submitted".into(), Value::Num(c.submitted.load(Ordering::Relaxed) as f64)),
        ("shed".into(), Value::Num(c.shed.load(Ordering::Relaxed) as f64)),
        ("ticket_allocs".into(), Value::Num(c.ticket_allocs.load(Ordering::Relaxed) as f64)),
    ])
}

fn worker_loop(
    registry: &ModelRegistry,
    model: &str,
    stats: &ServerStats,
    config: BatchConfig,
    ring: &JobRing<Job>,
    faults: Option<&FaultPlan>,
) {
    let Some(entry) = registry.get(model) else {
        // The batcher only spawns workers for registered models; if the
        // registry ever disagrees, fail each job cleanly instead of
        // panicking the worker thread.
        while let Some(job) = ring.pop_blocking() {
            job.reply.send(BatchReply {
                result: Err(format!("model {model:?} is not registered")),
                batch_size: 0,
                micros: 0,
            });
        }
        return;
    };
    let max_batch = config.max_batch.max(1);
    // Worker scratch, reused across batches: the series buffer handed
    // to `predict_batch_into`, the reply slots awaiting labels, and
    // the label output. After the first full batch none of these grow.
    let mut series: Vec<Mts> = Vec::with_capacity(max_batch);
    let mut pending: Vec<(Instant, ReplySlot<BatchReply>)> = Vec::with_capacity(max_batch);
    let mut labels: Vec<Label> = Vec::with_capacity(max_batch);
    loop {
        // Block for the first job; a closed-and-drained ring is the
        // shutdown signal, so a shutting-down server still answers
        // everything already queued.
        let first = match ring.pop_blocking() {
            Some(job) => job,
            None => return,
        };
        let deadline = Instant::now() + config.max_wait;
        series.push(first.series);
        pending.push((first.enqueued, first.reply));
        while pending.len() < max_batch {
            match ring.pop_until(deadline) {
                Some(job) => {
                    series.push(job.series);
                    pending.push((job.enqueued, job.reply));
                }
                None => break,
            }
        }

        // Injected stall: the model "hangs" before the batch runs,
        // building real queue depth behind it.
        if let Some(pause) = faults.and_then(FaultPlan::stall) {
            std::thread::sleep(pause);
        }

        let batch_start = Instant::now();
        let outcome = entry.predict_batch_into(&series, &mut labels);
        let batch_micros = batch_start.elapsed().as_micros() as u64;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_items.fetch_add(pending.len() as u64, Ordering::Relaxed);
        stats.batch_latency.record(batch_micros);

        let batch_size = pending.len();
        match outcome {
            Ok(()) => {
                debug_assert_eq!(labels.len(), batch_size);
                for ((enqueued, reply), label) in pending.drain(..).zip(labels.drain(..)) {
                    let micros = enqueued.elapsed().as_micros() as u64;
                    stats.request_latency.record(micros);
                    reply.send(BatchReply { result: Ok(label), batch_size, micros });
                }
            }
            Err(e) => {
                let msg = format!("prediction failed: {e}");
                for (enqueued, reply) in pending.drain(..) {
                    let micros = enqueued.elapsed().as_micros() as u64;
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    stats.request_latency.record(micros);
                    reply.send(BatchReply { result: Err(msg.clone()), batch_size, micros });
                }
            }
        }
        series.clear();
    }
}

fn aug_worker_loop(
    pipelines: &PipelineRegistry,
    name: &str,
    stats: &ServerStats,
    config: BatchConfig,
    ring: &JobRing<AugJob>,
    faults: Option<&FaultPlan>,
) {
    let Some(pipeline) = pipelines.get(name) else {
        // Workers are only spawned for registered pipelines; if the
        // registry ever disagrees, fail each job cleanly instead of
        // panicking the worker thread.
        while let Some(job) = ring.pop_blocking() {
            job.reply.send(AugReply {
                result: Err(format!("pipeline {name:?} is not registered")),
                batch_size: 0,
                micros: 0,
            });
        }
        return;
    };
    let max_batch = config.max_batch.max(1);
    // Worker scratch, reused across batches. Each job's series MOVES
    // into the items buffer — no per-job clone. (The transformed
    // output series are fresh allocations by nature: they are handed
    // to the clients.)
    let mut items: Vec<(Mts, u64, u64)> = Vec::with_capacity(max_batch);
    let mut pending: Vec<(Instant, ReplySlot<AugReply>)> = Vec::with_capacity(max_batch);
    loop {
        let first = match ring.pop_blocking() {
            Some(job) => job,
            None => return,
        };
        let deadline = Instant::now() + config.max_wait;
        items.push((first.series, first.seed, first.index));
        pending.push((first.enqueued, first.reply));
        while pending.len() < max_batch {
            match ring.pop_until(deadline) {
                Some(job) => {
                    items.push((job.series, job.seed, job.index));
                    pending.push((job.enqueued, job.reply));
                }
                None => break,
            }
        }

        if let Some(pause) = faults.and_then(FaultPlan::stall) {
            std::thread::sleep(pause);
        }

        // One batched pool execution; each element is a pure function
        // of its own (seed, index), so results are independent of how
        // requests happened to coalesce into this batch.
        let batch_start = Instant::now();
        let results = pipeline.run_each(&items);
        let batch_micros = batch_start.elapsed().as_micros() as u64;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_items.fetch_add(pending.len() as u64, Ordering::Relaxed);
        stats.batch_latency.record(batch_micros);

        let batch_size = pending.len();
        debug_assert_eq!(results.len(), batch_size);
        for ((enqueued, reply), out) in pending.drain(..).zip(results) {
            let micros = enqueued.elapsed().as_micros() as u64;
            stats.request_latency.record(micros);
            reply.send(AugReply { result: Ok(out), batch_size, micros });
        }
        items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRates;
    use crate::registry::ModelEntry;
    use rand::Rng;
    use tsda_classify::persist::SavedModel;
    use tsda_classify::{Classifier, Rocket, RocketConfig};
    use tsda_core::rng::seeded;
    use tsda_core::Dataset;

    fn fitted_rocket() -> (Rocket, Dataset) {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(11);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.8 };
            for _ in 0..8 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..20)
                        .map(|t| (t as f64 * freq + phase).sin())
                        .collect()]),
                    c,
                );
            }
        }
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 40, ..RocketConfig::default() });
        rocket.fit(&ds, None, &mut seeded(12));
        (rocket, ds)
    }

    fn start_batcher(config: BatchConfig) -> (Batcher, Arc<ServerStats>, Dataset, Vec<usize>) {
        start_batcher_with_faults(config, None)
    }

    fn start_batcher_with_faults(
        config: BatchConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> (Batcher, Arc<ServerStats>, Dataset, Vec<usize>) {
        let (mut rocket, ds) = fitted_rocket();
        let offline = rocket.predict(&ds);
        let mut registry = ModelRegistry::new();
        registry
            .insert(ModelEntry::from_saved("rocket", SavedModel::Rocket(rocket), None).unwrap());
        let stats = Arc::new(ServerStats::new());
        let pipelines = Arc::new(
            PipelineRegistry::from_toml(
                "[pipeline]\nname = \"light\"\n[[stage]]\nchoose = [\"jitter\", \"scaling\"]\nprob = 0.8\n",
            )
            .unwrap(),
        );
        let batcher =
            Batcher::start(Arc::new(registry), pipelines, Arc::clone(&stats), config, faults)
                .expect("batch workers start");
        (batcher, stats, ds, offline)
    }

    #[test]
    fn concurrent_submissions_coalesce_and_match_offline() {
        let (batcher, stats, ds, offline) = start_batcher(BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(40),
            ..BatchConfig::default()
        });
        let receivers: Vec<_> = ds
            .series()
            .iter()
            .map(|s| batcher.submit("rocket", s.clone()).expect("queue open"))
            .collect();
        let mut max_batch_seen = 0;
        for (rx, want) in receivers.into_iter().zip(&offline) {
            let reply = rx.recv();
            assert_eq!(reply.result.as_ref().unwrap(), want);
            max_batch_seen = max_batch_seen.max(reply.batch_size);
        }
        assert!(max_batch_seen > 1, "expected coalescing, max batch {max_batch_seen}");
        let snap = stats.snapshot();
        assert_eq!(snap.batched_items, ds.series().len() as u64);
        assert!(snap.mean_batch > 1.0, "mean batch {}", snap.mean_batch);
        batcher.shutdown();
    }

    #[test]
    fn augment_submissions_coalesce_and_match_offline() {
        use tsda_augment::declarative::{AugPipeline, PipelineConfig};
        let (batcher, _, ds, _) = start_batcher(BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(40),
            ..BatchConfig::default()
        });
        let cfg = PipelineConfig::parse(
            "[pipeline]\nname = \"light\"\n[[stage]]\nchoose = [\"jitter\", \"scaling\"]\nprob = 0.8\n",
        )
        .unwrap();
        let offline = &AugPipeline::from_config(&cfg).unwrap()[0];
        let receivers: Vec<_> = ds
            .series()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                batcher.submit_augment("light", s.clone(), 7, i as u64).expect("queue open")
            })
            .collect();
        let mut max_batch_seen = 0;
        for (i, (rx, s)) in receivers.into_iter().zip(ds.series()).enumerate() {
            let reply = rx.recv();
            let got = reply.result.expect("augment succeeds");
            assert_eq!(got, offline.apply_one(s, 7, i as u64), "index {i}");
            max_batch_seen = max_batch_seen.max(reply.batch_size);
        }
        assert!(max_batch_seen > 1, "expected coalescing, max batch {max_batch_seen}");
        assert_eq!(
            batcher.submit_augment("nope", ds.series()[0].clone(), 1, 0).err(),
            Some(SubmitError::UnknownPipeline)
        );
        batcher.shutdown();
    }

    #[test]
    fn unknown_model_is_rejected_at_submit() {
        let (batcher, _, ds, _) = start_batcher(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        assert_eq!(
            batcher.submit("nope", ds.series()[0].clone()).err(),
            Some(SubmitError::UnknownModel)
        );
        batcher.shutdown();
    }

    #[test]
    fn shutdown_with_idle_worker_joins_quickly() {
        let (batcher, _, _, _) = start_batcher(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        let start = Instant::now();
        batcher.shutdown();
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn full_queue_sheds_with_a_retry_hint_and_recovers() {
        // A stalling fault plan wedges the worker so the tiny queue
        // fills; submits past the cap must shed, not buffer.
        let plan = Arc::new(FaultPlan::new(
            3,
            FaultRates {
                delay_write: 0,
                partial_write: 0,
                drop_connection: 0,
                corrupt_request: 0,
                stall_worker: 1000,
                shed_load: 0,
            },
        ));
        let (batcher, _, ds, _) = start_batcher_with_faults(
            BatchConfig { max_batch: 1, max_wait: Duration::from_millis(1), queue_cap: 2 },
            Some(plan),
        );
        let mut kept = Vec::new();
        let mut shed = 0usize;
        for _ in 0..40 {
            match batcher.submit("rocket", ds.series()[0].clone()) {
                Ok(rx) => kept.push(rx),
                Err(SubmitError::Overloaded { retry_ms }) => {
                    assert!(retry_ms > 0);
                    shed += 1;
                }
                Err(e) => panic!("unexpected submit error {e:?}"),
            }
        }
        assert!(shed > 0, "expected sheds with a wedged worker");
        // Every accepted job still completes (drain guarantee).
        for rx in kept {
            assert!(rx.recv().result.is_ok(), "accepted jobs are answered");
        }
        batcher.shutdown();
    }

    #[test]
    fn fault_plan_shed_refuses_submits_deterministically() {
        let all_shed = FaultRates {
            delay_write: 0,
            partial_write: 0,
            drop_connection: 0,
            corrupt_request: 0,
            stall_worker: 0,
            shed_load: 1000,
        };
        let plan = Arc::new(FaultPlan::new(5, all_shed));
        let (batcher, _, ds, _) =
            start_batcher_with_faults(BatchConfig::default(), Some(Arc::clone(&plan)));
        for _ in 0..5 {
            assert!(matches!(
                batcher.submit("rocket", ds.series()[0].clone()),
                Err(SubmitError::Overloaded { .. })
            ));
        }
        assert!(plan.injected_total() >= 5);
        batcher.shutdown();
    }

    #[test]
    fn queue_stats_report_submits_and_sheds_per_queue() {
        let (batcher, _, ds, _) = start_batcher(BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(5),
            ..BatchConfig::default()
        });
        let pending: Vec<_> = (0..4)
            .map(|_| batcher.submit("rocket", ds.series()[0].clone()).expect("queue open"))
            .collect();
        for p in pending {
            assert!(p.recv().result.is_ok());
        }
        let Value::Array(rows) = batcher.queue_stats() else { panic!("array of queue rows") };
        let rocket = rows
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("rocket"))
            .expect("rocket row");
        assert_eq!(rocket.get("lane").and_then(Value::as_str), Some("predict"));
        assert_eq!(rocket.get("submitted").and_then(Value::as_f64), Some(4.0));
        assert_eq!(rocket.get("shed").and_then(Value::as_f64), Some(0.0));
        // Sequential submits never outrun the warm ticket pool.
        assert_eq!(rocket.get("ticket_allocs").and_then(Value::as_f64), Some(0.0));
        let light = rows
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("light"))
            .expect("aug pipeline row");
        assert_eq!(light.get("lane").and_then(Value::as_str), Some("augment"));
        batcher.shutdown();
    }

    #[test]
    fn abandoned_jobs_still_answer_the_waiting_connection() {
        // A ReplySlot dropped without send (worker died mid-batch)
        // must post a shutdown error instead of deadlocking the waiter.
        let pool = TicketPool::<BatchReply>::warm(1);
        let ticket = pool.take().expect("warm ticket");
        let slot = ReplySlot { ticket: Arc::clone(&ticket), sent: false };
        let pending = PendingReply { ticket, pool };
        drop(slot);
        let reply = pending.recv();
        assert_eq!(reply.result.unwrap_err(), "server shutting down");
    }

    #[test]
    fn tickets_recycle_through_the_pool_without_stale_replies() {
        let pool = TicketPool::<BatchReply>::warm(1);
        for round in 0..3 {
            let ticket = pool.take().expect("pool stays warm across rounds");
            let slot = ReplySlot { ticket: Arc::clone(&ticket), sent: false };
            let pending = PendingReply { ticket, pool: Arc::clone(&pool) };
            slot.send(BatchReply { result: Ok(round), batch_size: 1, micros: round as u64 });
            let reply = pending.recv();
            assert_eq!(reply.result.unwrap(), round, "fresh value each round, never stale");
        }
    }
}
