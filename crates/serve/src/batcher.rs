//! Adaptive micro-batching: one worker thread per model coalesces
//! concurrent predict requests into single batched `predict` calls.
//!
//! The flush policy is the classic adaptive one: the first job to
//! arrive opens a window of `max_wait`; the batch runs when either
//! `max_batch` jobs are pending or the window closes, whichever comes
//! first. Under load batches fill instantly (amortising the transform /
//! forward pass across requests); a lone request waits at most
//! `max_wait` before running solo.
//!
//! Queues are **bounded** (`queue_cap` jobs per model). When a model's
//! queue is full, [`Batcher::submit`] refuses with
//! [`SubmitError::Overloaded`] and a backoff hint instead of buffering
//! without limit — the connection handler turns that into an explicit
//! `{"ok":false,"error":"overloaded","retry_ms":N}` reply, so overload
//! degrades into client backoff rather than unbounded memory growth and
//! latency collapse. A [`FaultPlan`](crate::faults::FaultPlan) can
//! additionally shed submits and stall workers to prove the path works.
//!
//! Shutdown: workers drain until every queue sender is dropped, so a
//! server shutting down under load still answers every job that was
//! accepted into a queue before the listener stopped.

use crate::faults::FaultPlan;
use crate::pipelines::PipelineRegistry;
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsda_core::{Mts, TsdaError};

/// Micro-batcher knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush this long after the first pending request arrived.
    pub max_wait: Duration,
    /// Maximum jobs queued per model before submits are shed with an
    /// `overloaded` reply.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 32, max_wait: Duration::from_millis(2), queue_cap: 256 }
    }
}

/// The answer a connection handler gets back for one queued series.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Predicted label, or a client-facing error message.
    pub result: Result<usize, String>,
    /// How many series shared the batch.
    pub batch_size: usize,
    /// Queue wait + predict time for this job, microseconds.
    pub micros: u64,
}

/// The answer a connection handler gets back for one queued augment.
#[derive(Debug, Clone)]
pub struct AugReply {
    /// Transformed series, or a client-facing error message.
    pub result: Result<Mts, String>,
    /// How many augments shared the batch.
    pub batch_size: usize,
    /// Queue wait + execute time for this job, microseconds.
    pub micros: u64,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No worker serves this model name.
    UnknownModel,
    /// No worker serves this pipeline name.
    UnknownPipeline,
    /// The model's queue is full (or the fault plan shed the submit);
    /// retry after roughly `retry_ms` milliseconds.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_ms: u64,
    },
    /// The batcher is shutting down; the job was not queued.
    Closed,
}

struct Job {
    series: Mts,
    enqueued: Instant,
    reply: SyncSender<BatchReply>,
}

struct AugJob {
    series: Mts,
    seed: u64,
    index: u64,
    enqueued: Instant,
    reply: SyncSender<AugReply>,
}

struct ModelQueue {
    tx: Sender<Job>,
    depth: Arc<AtomicUsize>,
}

struct AugQueue {
    tx: Sender<AugJob>,
    depth: Arc<AtomicUsize>,
}

/// Handle for submitting jobs to the per-model batch workers.
pub struct Batcher {
    queues: BTreeMap<String, ModelQueue>,
    aug_queues: BTreeMap<String, AugQueue>,
    workers: Vec<JoinHandle<()>>,
    queue_cap: usize,
    /// Backoff hint for queue-full sheds: a few flush windows.
    shed_retry_ms: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl Batcher {
    /// Spawn one batch worker per registered model. Errors when the OS
    /// refuses a worker thread; already-spawned workers are shut down
    /// cleanly before the error is returned.
    pub fn start(
        registry: Arc<ModelRegistry>,
        pipelines: Arc<PipelineRegistry>,
        stats: Arc<ServerStats>,
        config: BatchConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Self, TsdaError> {
        let mut queues = BTreeMap::new();
        let mut aug_queues = BTreeMap::new();
        let mut workers = Vec::new();
        let queue_cap = config.queue_cap.max(1);
        let shed_retry_ms = (config.max_wait.as_millis() as u64).max(1) * 4;
        for name in registry.names() {
            let (tx, rx) = std::sync::mpsc::channel::<Job>();
            let depth = Arc::new(AtomicUsize::new(0));
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let model = name.clone();
            let worker_depth = Arc::clone(&depth);
            let worker_faults = faults.clone();
            let spawned = std::thread::Builder::new().name(format!("batch-{name}")).spawn(
                move || {
                    worker_loop(
                        &registry,
                        &model,
                        &stats,
                        config,
                        &rx,
                        &worker_depth,
                        worker_faults.as_deref(),
                    )
                },
            );
            match spawned {
                Ok(handle) => {
                    queues.insert(name, ModelQueue { tx, depth });
                    workers.push(handle);
                }
                Err(e) => {
                    Self { queues, aug_queues, workers, queue_cap, shed_retry_ms, faults }
                        .shutdown();
                    return Err(TsdaError::Io(format!("spawn batch worker for {name:?}: {e}")));
                }
            }
        }
        for name in pipelines.names() {
            let (tx, rx) = std::sync::mpsc::channel::<AugJob>();
            let depth = Arc::new(AtomicUsize::new(0));
            let pipelines = Arc::clone(&pipelines);
            let stats = Arc::clone(&stats);
            let pipeline = name.clone();
            let worker_depth = Arc::clone(&depth);
            let worker_faults = faults.clone();
            let spawned = std::thread::Builder::new().name(format!("aug-{name}")).spawn(
                move || {
                    aug_worker_loop(
                        &pipelines,
                        &pipeline,
                        &stats,
                        config,
                        &rx,
                        &worker_depth,
                        worker_faults.as_deref(),
                    )
                },
            );
            match spawned {
                Ok(handle) => {
                    aug_queues.insert(name, AugQueue { tx, depth });
                    workers.push(handle);
                }
                Err(e) => {
                    Self { queues, aug_queues, workers, queue_cap, shed_retry_ms, faults }
                        .shutdown();
                    return Err(TsdaError::Io(format!("spawn aug worker for {name:?}: {e}")));
                }
            }
        }
        Ok(Self { queues, aug_queues, workers, queue_cap, shed_retry_ms, faults })
    }

    /// Queue one validated series for the named model. Returns a
    /// receiver the caller blocks on for the reply, or a [`SubmitError`]
    /// explaining the refusal (unknown model, full queue, shutdown).
    ///
    /// Hot path: runs once per request on the connection thread, so
    /// `tsda_analyze` R3 keeps allocations out of it and its callees.
    #[doc(alias = "tsda::hot")]
    pub fn submit(&self, model: &str, series: Mts) -> Result<Receiver<BatchReply>, SubmitError> {
        let queue = self.queues.get(model).ok_or(SubmitError::UnknownModel)?;
        if let Some(plan) = self.faults.as_deref() {
            if let Some(retry_ms) = plan.shed() {
                return Err(SubmitError::Overloaded { retry_ms });
            }
        }
        // Reserve a slot; the worker releases it when it pops the job.
        // fetch_add + rollback keeps the check-and-reserve race-free
        // without a lock: oversubscription by a racing submit is caught
        // here and rolled back before the job is queued.
        if queue.depth.fetch_add(1, Ordering::AcqRel) >= self.queue_cap {
            queue.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Overloaded { retry_ms: self.shed_retry_ms });
        }
        // Rendezvous capacity 1: the worker never blocks sending the
        // reply even if the requesting connection died mid-flight.
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        if queue.tx.send(Job { series, enqueued: Instant::now(), reply: reply_tx }).is_err() {
            queue.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Closed);
        }
        Ok(reply_rx)
    }

    /// Queue one series for the named augmentation pipeline. Same
    /// bounded-queue discipline as [`Self::submit`]: full queues shed
    /// with a retry hint instead of buffering without limit.
    ///
    /// Hot path: runs once per augment request on the connection
    /// thread, so `tsda_analyze` R3 keeps allocations out of it and
    /// its callees.
    #[doc(alias = "tsda::hot")]
    pub fn submit_augment(
        &self,
        pipeline: &str,
        series: Mts,
        seed: u64,
        index: u64,
    ) -> Result<Receiver<AugReply>, SubmitError> {
        let queue = self.aug_queues.get(pipeline).ok_or(SubmitError::UnknownPipeline)?;
        if let Some(plan) = self.faults.as_deref() {
            if let Some(retry_ms) = plan.shed() {
                return Err(SubmitError::Overloaded { retry_ms });
            }
        }
        // Same race-free reserve-then-rollback as `submit`.
        if queue.depth.fetch_add(1, Ordering::AcqRel) >= self.queue_cap {
            queue.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Overloaded { retry_ms: self.shed_retry_ms });
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        let job = AugJob { series, seed, index, enqueued: Instant::now(), reply: reply_tx };
        if queue.tx.send(job).is_err() {
            queue.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Closed);
        }
        Ok(reply_rx)
    }

    /// Current queue depth for a model (observability / tests).
    pub fn depth(&self, model: &str) -> Option<usize> {
        self.queues.get(model).map(|q| q.depth.load(Ordering::Acquire))
    }

    /// Drop the queues (workers drain every queued job, then exit) and
    /// join every worker.
    pub fn shutdown(self) {
        drop(self.queues);
        drop(self.aug_queues);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    registry: &ModelRegistry,
    model: &str,
    stats: &ServerStats,
    config: BatchConfig,
    rx: &Receiver<Job>,
    depth: &AtomicUsize,
    faults: Option<&FaultPlan>,
) {
    let Some(entry) = registry.get(model) else {
        // The batcher only spawns workers for registered models; if the
        // registry ever disagrees, fail each job cleanly instead of
        // panicking the worker thread.
        for job in rx.iter() {
            depth.fetch_sub(1, Ordering::AcqRel);
            let _ = job.reply.send(BatchReply {
                result: Err(format!("model {model:?} is not registered")),
                batch_size: 0,
                micros: 0,
            });
        }
        return;
    };
    let max_batch = config.max_batch.max(1);
    loop {
        // Block for the first job; `Disconnected` (all senders dropped)
        // is the drain-complete shutdown signal, so a shutting-down
        // server still answers everything already queued.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        depth.fetch_sub(1, Ordering::AcqRel);
        let deadline = Instant::now() + config.max_wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    depth.fetch_sub(1, Ordering::AcqRel);
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Injected stall: the model "hangs" before the batch runs,
        // building real queue depth behind it.
        if let Some(pause) = faults.and_then(FaultPlan::stall) {
            std::thread::sleep(pause);
        }

        let series: Vec<Mts> = jobs.iter().map(|j| j.series.clone()).collect();
        let batch_start = Instant::now();
        let outcome = entry.predict_batch(&series);
        let batch_micros = batch_start.elapsed().as_micros() as u64;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_items.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        stats.batch_latency.record(batch_micros);

        let batch_size = jobs.len();
        match outcome {
            Ok(labels) => {
                debug_assert_eq!(labels.len(), batch_size);
                for (job, label) in jobs.into_iter().zip(labels) {
                    let micros = job.enqueued.elapsed().as_micros() as u64;
                    stats.request_latency.record(micros);
                    let _ = job
                        .reply
                        .send(BatchReply { result: Ok(label), batch_size, micros });
                }
            }
            Err(e) => {
                let msg = format!("prediction failed: {e}");
                for job in jobs {
                    let micros = job.enqueued.elapsed().as_micros() as u64;
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    stats.request_latency.record(micros);
                    let _ = job
                        .reply
                        .send(BatchReply { result: Err(msg.clone()), batch_size, micros });
                }
            }
        }
    }
}

fn aug_worker_loop(
    pipelines: &PipelineRegistry,
    name: &str,
    stats: &ServerStats,
    config: BatchConfig,
    rx: &Receiver<AugJob>,
    depth: &AtomicUsize,
    faults: Option<&FaultPlan>,
) {
    let Some(pipeline) = pipelines.get(name) else {
        // Workers are only spawned for registered pipelines; if the
        // registry ever disagrees, fail each job cleanly instead of
        // panicking the worker thread.
        for job in rx.iter() {
            depth.fetch_sub(1, Ordering::AcqRel);
            let _ = job.reply.send(AugReply {
                result: Err(format!("pipeline {name:?} is not registered")),
                batch_size: 0,
                micros: 0,
            });
        }
        return;
    };
    let max_batch = config.max_batch.max(1);
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        depth.fetch_sub(1, Ordering::AcqRel);
        let deadline = Instant::now() + config.max_wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    depth.fetch_sub(1, Ordering::AcqRel);
                    jobs.push(job);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        if let Some(pause) = faults.and_then(FaultPlan::stall) {
            std::thread::sleep(pause);
        }

        // One batched pool execution; each element is a pure function
        // of its own (seed, index), so results are independent of how
        // requests happened to coalesce into this batch.
        let items: Vec<(Mts, u64, u64)> =
            jobs.iter().map(|j| (j.series.clone(), j.seed, j.index)).collect();
        let batch_start = Instant::now();
        let results = pipeline.run_each(&items);
        let batch_micros = batch_start.elapsed().as_micros() as u64;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_items.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        stats.batch_latency.record(batch_micros);

        let batch_size = jobs.len();
        debug_assert_eq!(results.len(), batch_size);
        for (job, out) in jobs.into_iter().zip(results) {
            let micros = job.enqueued.elapsed().as_micros() as u64;
            stats.request_latency.record(micros);
            let _ = job.reply.send(AugReply { result: Ok(out), batch_size, micros });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRates;
    use crate::registry::ModelEntry;
    use rand::Rng;
    use tsda_classify::persist::SavedModel;
    use tsda_classify::{Classifier, Rocket, RocketConfig};
    use tsda_core::rng::seeded;
    use tsda_core::Dataset;

    fn fitted_rocket() -> (Rocket, Dataset) {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(11);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.8 };
            for _ in 0..8 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..20)
                        .map(|t| (t as f64 * freq + phase).sin())
                        .collect()]),
                    c,
                );
            }
        }
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 40, ..RocketConfig::default() });
        rocket.fit(&ds, None, &mut seeded(12));
        (rocket, ds)
    }

    fn start_batcher(config: BatchConfig) -> (Batcher, Arc<ServerStats>, Dataset, Vec<usize>) {
        start_batcher_with_faults(config, None)
    }

    fn start_batcher_with_faults(
        config: BatchConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> (Batcher, Arc<ServerStats>, Dataset, Vec<usize>) {
        let (mut rocket, ds) = fitted_rocket();
        let offline = rocket.predict(&ds);
        let mut registry = ModelRegistry::new();
        registry
            .insert(ModelEntry::from_saved("rocket", SavedModel::Rocket(rocket), None).unwrap());
        let stats = Arc::new(ServerStats::new());
        let pipelines = Arc::new(
            PipelineRegistry::from_toml(
                "[pipeline]\nname = \"light\"\n[[stage]]\nchoose = [\"jitter\", \"scaling\"]\nprob = 0.8\n",
            )
            .unwrap(),
        );
        let batcher =
            Batcher::start(Arc::new(registry), pipelines, Arc::clone(&stats), config, faults)
                .expect("batch workers start");
        (batcher, stats, ds, offline)
    }

    #[test]
    fn concurrent_submissions_coalesce_and_match_offline() {
        let (batcher, stats, ds, offline) = start_batcher(BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(40),
            ..BatchConfig::default()
        });
        let receivers: Vec<_> = ds
            .series()
            .iter()
            .map(|s| batcher.submit("rocket", s.clone()).expect("queue open"))
            .collect();
        let mut max_batch_seen = 0;
        for (rx, want) in receivers.into_iter().zip(&offline) {
            let reply = rx.recv().expect("worker replies");
            assert_eq!(reply.result.as_ref().unwrap(), want);
            max_batch_seen = max_batch_seen.max(reply.batch_size);
        }
        assert!(max_batch_seen > 1, "expected coalescing, max batch {max_batch_seen}");
        let snap = stats.snapshot();
        assert_eq!(snap.batched_items, ds.series().len() as u64);
        assert!(snap.mean_batch > 1.0, "mean batch {}", snap.mean_batch);
        batcher.shutdown();
    }

    #[test]
    fn augment_submissions_coalesce_and_match_offline() {
        use tsda_augment::declarative::{AugPipeline, PipelineConfig};
        let (batcher, _, ds, _) = start_batcher(BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(40),
            ..BatchConfig::default()
        });
        let cfg = PipelineConfig::parse(
            "[pipeline]\nname = \"light\"\n[[stage]]\nchoose = [\"jitter\", \"scaling\"]\nprob = 0.8\n",
        )
        .unwrap();
        let offline = &AugPipeline::from_config(&cfg).unwrap()[0];
        let receivers: Vec<_> = ds
            .series()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                batcher.submit_augment("light", s.clone(), 7, i as u64).expect("queue open")
            })
            .collect();
        let mut max_batch_seen = 0;
        for (i, (rx, s)) in receivers.into_iter().zip(ds.series()).enumerate() {
            let reply = rx.recv().expect("worker replies");
            let got = reply.result.expect("augment succeeds");
            assert_eq!(got, offline.apply_one(s, 7, i as u64), "index {i}");
            max_batch_seen = max_batch_seen.max(reply.batch_size);
        }
        assert!(max_batch_seen > 1, "expected coalescing, max batch {max_batch_seen}");
        assert_eq!(
            batcher.submit_augment("nope", ds.series()[0].clone(), 1, 0).err(),
            Some(SubmitError::UnknownPipeline)
        );
        batcher.shutdown();
    }

    #[test]
    fn unknown_model_is_rejected_at_submit() {
        let (batcher, _, ds, _) = start_batcher(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        assert_eq!(
            batcher.submit("nope", ds.series()[0].clone()).err(),
            Some(SubmitError::UnknownModel)
        );
        batcher.shutdown();
    }

    #[test]
    fn shutdown_with_idle_worker_joins_quickly() {
        let (batcher, _, _, _) = start_batcher(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        let start = Instant::now();
        batcher.shutdown();
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn full_queue_sheds_with_a_retry_hint_and_recovers() {
        // A stalling fault plan wedges the worker so the tiny queue
        // fills; submits past the cap must shed, not buffer.
        let plan = Arc::new(FaultPlan::new(
            3,
            FaultRates {
                delay_write: 0,
                partial_write: 0,
                drop_connection: 0,
                corrupt_request: 0,
                stall_worker: 1000,
                shed_load: 0,
            },
        ));
        let (batcher, _, ds, _) = start_batcher_with_faults(
            BatchConfig { max_batch: 1, max_wait: Duration::from_millis(1), queue_cap: 2 },
            Some(plan),
        );
        let mut kept = Vec::new();
        let mut shed = 0usize;
        for _ in 0..40 {
            match batcher.submit("rocket", ds.series()[0].clone()) {
                Ok(rx) => kept.push(rx),
                Err(SubmitError::Overloaded { retry_ms }) => {
                    assert!(retry_ms > 0);
                    shed += 1;
                }
                Err(e) => panic!("unexpected submit error {e:?}"),
            }
        }
        assert!(shed > 0, "expected sheds with a wedged worker");
        // Every accepted job still completes (drain guarantee).
        for rx in kept {
            assert!(rx.recv().expect("accepted jobs are answered").result.is_ok());
        }
        batcher.shutdown();
    }

    #[test]
    fn fault_plan_shed_refuses_submits_deterministically() {
        let all_shed = FaultRates {
            delay_write: 0,
            partial_write: 0,
            drop_connection: 0,
            corrupt_request: 0,
            stall_worker: 0,
            shed_load: 1000,
        };
        let plan = Arc::new(FaultPlan::new(5, all_shed));
        let (batcher, _, ds, _) =
            start_batcher_with_faults(BatchConfig::default(), Some(Arc::clone(&plan)));
        for _ in 0..5 {
            assert!(matches!(
                batcher.submit("rocket", ds.series()[0].clone()),
                Err(SubmitError::Overloaded { .. })
            ));
        }
        assert!(plan.injected_total() >= 5);
        batcher.shutdown();
    }
}
