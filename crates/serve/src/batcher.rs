//! Adaptive micro-batching: one worker thread per model coalesces
//! concurrent predict requests into single batched `predict` calls.
//!
//! The flush policy is the classic adaptive one: the first job to
//! arrive opens a window of `max_wait`; the batch runs when either
//! `max_batch` jobs are pending or the window closes, whichever comes
//! first. Under load batches fill instantly (amortising the transform /
//! forward pass across requests); a lone request waits at most
//! `max_wait` before running solo.

use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsda_core::{Mts, TsdaError};

/// Micro-batcher knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush this long after the first pending request arrived.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 32, max_wait: Duration::from_millis(2) }
    }
}

/// The answer a connection handler gets back for one queued series.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Predicted label, or a client-facing error message.
    pub result: Result<usize, String>,
    /// How many series shared the batch.
    pub batch_size: usize,
    /// Queue wait + predict time for this job, microseconds.
    pub micros: u64,
}

struct Job {
    series: Mts,
    enqueued: Instant,
    reply: SyncSender<BatchReply>,
}

/// Handle for submitting jobs to the per-model batch workers.
pub struct Batcher {
    queues: BTreeMap<String, Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Spawn one batch worker per registered model. Errors when the OS
    /// refuses a worker thread; already-spawned workers are shut down
    /// cleanly before the error is returned.
    pub fn start(
        registry: Arc<ModelRegistry>,
        stats: Arc<ServerStats>,
        config: BatchConfig,
        shutdown: Arc<AtomicBool>,
    ) -> Result<Self, TsdaError> {
        let mut queues = BTreeMap::new();
        let mut workers = Vec::new();
        for name in registry.names() {
            let (tx, rx) = std::sync::mpsc::channel::<Job>();
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let model = name.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("batch-{name}"))
                .spawn(move || worker_loop(&registry, &model, &stats, config, &shutdown, &rx));
            match spawned {
                Ok(handle) => {
                    queues.insert(name, tx);
                    workers.push(handle);
                }
                Err(e) => {
                    Self { queues, workers }.shutdown();
                    return Err(TsdaError::Io(format!("spawn batch worker for {name:?}: {e}")));
                }
            }
        }
        Ok(Self { queues, workers })
    }

    /// Queue one validated series for the named model. Returns a
    /// receiver the caller blocks on for the reply; `None` when the
    /// model has no worker (unknown name) or its worker already exited.
    pub fn submit(&self, model: &str, series: Mts) -> Option<Receiver<BatchReply>> {
        let tx = self.queues.get(model)?;
        // Rendezvous capacity 1: the worker never blocks sending the
        // reply even if the requesting connection died mid-flight.
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        tx.send(Job { series, enqueued: Instant::now(), reply: reply_tx }).ok()?;
        Some(reply_rx)
    }

    /// Drop the queues (workers drain and exit) and join every worker.
    pub fn shutdown(self) {
        drop(self.queues);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    registry: &ModelRegistry,
    model: &str,
    stats: &ServerStats,
    config: BatchConfig,
    shutdown: &AtomicBool,
    rx: &Receiver<Job>,
) {
    let Some(entry) = registry.get(model) else {
        // The batcher only spawns workers for registered models; if the
        // registry ever disagrees, fail each job cleanly instead of
        // panicking the worker thread.
        for job in rx.iter() {
            let _ = job.reply.send(BatchReply {
                result: Err(format!("model {model:?} is not registered")),
                batch_size: 0,
                micros: 0,
            });
        }
        return;
    };
    let max_batch = config.max_batch.max(1);
    loop {
        // Idle: poll for the first job so a flipped shutdown flag is
        // noticed within 50ms even with no traffic.
        let first = loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => break job,
                Err(RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let deadline = Instant::now() + config.max_wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let series: Vec<Mts> = jobs.iter().map(|j| j.series.clone()).collect();
        let batch_start = Instant::now();
        let outcome = entry.predict_batch(&series);
        let batch_micros = batch_start.elapsed().as_micros() as u64;
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.batched_items.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        stats.batch_latency.record(batch_micros);

        let batch_size = jobs.len();
        match outcome {
            Ok(labels) => {
                debug_assert_eq!(labels.len(), batch_size);
                for (job, label) in jobs.into_iter().zip(labels) {
                    let micros = job.enqueued.elapsed().as_micros() as u64;
                    stats.request_latency.record(micros);
                    let _ = job
                        .reply
                        .send(BatchReply { result: Ok(label), batch_size, micros });
                }
            }
            Err(e) => {
                let msg = format!("prediction failed: {e}");
                for job in jobs {
                    let micros = job.enqueued.elapsed().as_micros() as u64;
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    stats.request_latency.record(micros);
                    let _ = job
                        .reply
                        .send(BatchReply { result: Err(msg.clone()), batch_size, micros });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelEntry;
    use rand::Rng;
    use tsda_classify::persist::SavedModel;
    use tsda_classify::{Classifier, Rocket, RocketConfig};
    use tsda_core::rng::seeded;
    use tsda_core::Dataset;

    fn fitted_rocket() -> (Rocket, Dataset) {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(11);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.8 };
            for _ in 0..8 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..20)
                        .map(|t| (t as f64 * freq + phase).sin())
                        .collect()]),
                    c,
                );
            }
        }
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 40, ..RocketConfig::default() });
        rocket.fit(&ds, None, &mut seeded(12));
        (rocket, ds)
    }

    fn start_batcher(config: BatchConfig) -> (Batcher, Arc<ServerStats>, Dataset, Vec<usize>) {
        let (mut rocket, ds) = fitted_rocket();
        let offline = rocket.predict(&ds);
        let mut registry = ModelRegistry::new();
        registry
            .insert(ModelEntry::from_saved("rocket", SavedModel::Rocket(rocket), None).unwrap());
        let stats = Arc::new(ServerStats::new());
        let batcher = Batcher::start(
            Arc::new(registry),
            Arc::clone(&stats),
            config,
            Arc::new(AtomicBool::new(false)),
        )
        .expect("batch workers start");
        (batcher, stats, ds, offline)
    }

    #[test]
    fn concurrent_submissions_coalesce_and_match_offline() {
        let (batcher, stats, ds, offline) = start_batcher(BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(40),
        });
        let receivers: Vec<_> = ds
            .series()
            .iter()
            .map(|s| batcher.submit("rocket", s.clone()).expect("queue open"))
            .collect();
        let mut max_batch_seen = 0;
        for (rx, want) in receivers.into_iter().zip(&offline) {
            let reply = rx.recv().expect("worker replies");
            assert_eq!(reply.result.as_ref().unwrap(), want);
            max_batch_seen = max_batch_seen.max(reply.batch_size);
        }
        assert!(max_batch_seen > 1, "expected coalescing, max batch {max_batch_seen}");
        let snap = stats.snapshot();
        assert_eq!(snap.batched_items, ds.series().len() as u64);
        assert!(snap.mean_batch > 1.0, "mean batch {}", snap.mean_batch);
        batcher.shutdown();
    }

    #[test]
    fn unknown_model_is_rejected_at_submit() {
        let (batcher, _, ds, _) =
            start_batcher(BatchConfig { max_batch: 4, max_wait: Duration::from_millis(1) });
        assert!(batcher.submit("nope", ds.series()[0].clone()).is_none());
        batcher.shutdown();
    }

    #[test]
    fn shutdown_with_idle_worker_joins_quickly() {
        let (batcher, _, _, _) =
            start_batcher(BatchConfig { max_batch: 4, max_wait: Duration::from_millis(1) });
        let start = Instant::now();
        batcher.shutdown();
        assert!(start.elapsed() < Duration::from_secs(2));
    }
}
