//! Protocol v2: length-prefixed, CRC-framed binary messages.
//!
//! NDJSON (protocol v1) re-parses text on every predict — JSON envelope
//! plus a float parse per series value. Protocol v2 replaces the hot
//! path with fixed-width binary built on the same
//! [`tsda_core::codec::ByteWriter`]/[`ByteReader`] primitives the model
//! files use, so `decode_request` materialises an [`Mts`] from raw
//! IEEE-754 bit patterns with zero text parsing.
//!
//! # Negotiation
//!
//! A connection starts in NDJSON. A client that wants v2 sends the
//! 4-byte [`PREAMBLE`] as its very first bytes; its first byte (0xB2)
//! can never begin a JSON request line, so the server decides the mode
//! from the first byte alone. A partial or mangled preamble (first byte
//! 0xB2 but the rest wrong) is answered with one NDJSON error line and
//! the connection closes. NDJSON remains fully supported for
//! compatibility — both protocols answer one response per request, in
//! order, on the same port.
//!
//! # Framing
//!
//! ```text
//! u32 LE  frame length N (body + 4-byte checksum; 5 ≤ N ≤ MAX_FRAME)
//! body    N - 4 bytes  (first byte = message kind)
//! u32 LE  IEEE CRC-32 of the body
//! ```
//!
//! The checksum is what makes corruption *recoverable*: a flipped byte
//! anywhere in the body or checksum fails [`check_frame`] and produces
//! an error reply, never a silently different request (CRC-32 detects
//! every burst error up to 32 bits, so any single corrupted byte is
//! caught — property-tested in `crates/serve/tests/proptests.rs`).
//! Because the length prefix is read before any payload validation,
//! frame boundaries survive body corruption and the connection keeps
//! serving.
//!
//! # Messages
//!
//! Requests: predict (id, model, series as `n_dims × len` f64 matrix),
//! stats, list, ping. Replies: predict-ok (id, label, batch, micros),
//! error (id, code, message, `retry_ms` backoff hint for shed /
//! throttled refusals), result (id, JSON payload — stats and list reuse
//! the v1 JSON schema; they are not hot).

use crate::protocol::{Response, OVERLOADED, THROTTLED};
use serde::Value;
use tsda_core::codec::{crc32, ByteReader, ByteWriter};
use tsda_core::Mts;

/// First bytes of a v2 connection: 0xB2 (never valid leading JSON or
/// UTF-8 whitespace), then `b"TS2"`.
pub const PREAMBLE: [u8; 4] = [0xB2, b'T', b'S', b'2'];

/// Hard cap on one frame (length prefix excluded). Large enough for any
/// realistic series batch, small enough that a corrupted length prefix
/// cannot request a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bound on decoded series dimensions/length: every value costs 8 wire
/// bytes, so no dimension count or series length above `MAX_FRAME / 8`
/// can ever arrive in a valid frame.
pub const MAX_SERIES_VALUES: usize = MAX_FRAME / 8;

/// Convert a raw wire length to `usize` and enforce `len <= max` in one
/// place. Every length decoded off a socket funnels through here: the
/// conversion cannot truncate (no `as`), and the bound is named at the
/// call site, which is exactly what the T1/C1 lints check for.
pub fn checked_len(raw: u32, max: usize, what: &str) -> Result<usize, String> {
    let len = usize::try_from(raw).map_err(|_| format!("{what} {raw} overflows usize"))?;
    if len > max {
        return Err(format!("{what} {len} exceeds cap {max}"));
    }
    Ok(len)
}

const REQ_PREDICT: u8 = 0x01;
const REQ_STATS: u8 = 0x02;
const REQ_LIST: u8 = 0x03;
const REQ_PING: u8 = 0x04;
const REQ_AUGMENT: u8 = 0x05;

const REPLY_PREDICT: u8 = 0x81;
const REPLY_ERROR: u8 = 0x82;
const REPLY_RESULT: u8 = 0x83;
const REPLY_AUGMENT: u8 = 0x84;

/// Error codes carried by v2 error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Plain refusal (bad request, unknown model, prediction failure).
    Error,
    /// Bounded-queue load shed; `retry_ms` hints the backoff.
    Overloaded,
    /// Per-client admission-control quota exceeded; `retry_ms` hints
    /// when the token bucket will have refilled.
    Throttled,
}

impl ErrCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrCode::Error => 0,
            ErrCode::Overloaded => 1,
            ErrCode::Throttled => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(ErrCode::Error),
            1 => Ok(ErrCode::Overloaded),
            2 => Ok(ErrCode::Throttled),
            other => Err(format!("unknown error code {other}")),
        }
    }
}

/// A decoded v2 request. Unlike the NDJSON [`crate::protocol::Request`],
/// predict carries the series already materialised — the server never
/// text-parses on the v2 path.
#[derive(Debug, Clone, PartialEq)]
pub enum Request2 {
    /// Classify one series with the named model.
    Predict {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// Registry name of the target model.
        model: String,
        /// The series, decoded from raw f64 bit patterns.
        series: Mts,
    },
    /// Server counters.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Served-model listing.
    List {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Run one series through a named augmentation pipeline. The reply
    /// carries the transformed series as raw f64 bit patterns, so the
    /// round trip is bit-exact by construction.
    Augment {
        /// Correlation id.
        id: u64,
        /// Registry name of the target pipeline.
        pipeline: String,
        /// Master seed for the derived per-sample streams.
        seed: u64,
        /// Sample index within the seeded corpus.
        index: u64,
        /// The input series, decoded from raw f64 bit patterns.
        series: Mts,
    },
}

impl Request2 {
    /// The correlation id of any request.
    pub fn id(&self) -> u64 {
        match self {
            Self::Predict { id, .. }
            | Self::Stats { id }
            | Self::List { id }
            | Self::Ping { id }
            | Self::Augment { id, .. } => *id,
        }
    }
}

/// Wrap a message body into a full frame: length prefix + body + CRC.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(4 + body.len() + 4);
    out.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Re-add the length prefix to a raw `body + crc` blob popped by
/// [`take_frame`] (routers relay frames verbatim without re-encoding).
pub fn reframe(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + raw.len());
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(raw);
    out
}

/// Pop one complete raw frame (`body + crc`, length prefix stripped and
/// validated) off the front of `buf`.
///
/// * `Ok(None)` — the buffer does not yet hold a complete frame.
/// * `Ok(Some(raw))` — one frame, not yet CRC-checked (see
///   [`check_frame`]; wire corruption is injected between the two).
/// * `Err(msg)` — the length prefix itself is invalid (too small or
///   over [`MAX_FRAME`]); the stream cannot be resynchronised and the
///   connection must close.
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = checked_len(
        u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
        MAX_FRAME,
        "frame length",
    )?;
    if len < 5 {
        return Err(format!("frame length {len} below minimum of 5"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let raw: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
    Ok(Some(raw))
}

/// Verify a raw frame's trailing CRC and return the body slice.
pub fn check_frame(raw: &[u8]) -> Result<&[u8], String> {
    if raw.len() < 5 {
        return Err("frame too short for checksum".into());
    }
    let split = raw.len() - 4;
    let (body, crc_bytes) = raw.split_at(split);
    let want = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != want {
        return Err("frame checksum mismatch".into());
    }
    Ok(body)
}

/// Encode one request into a full frame.
pub fn encode_request(req: &Request2) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match req {
        Request2::Predict { id, model, series } => {
            w.u8(REQ_PREDICT);
            w.u64(*id);
            w.string(model);
            w.u32(series.n_dims() as u32);
            w.u32(series.len() as u32);
            for &v in series.as_flat() {
                w.f64(v);
            }
        }
        Request2::Stats { id } => {
            w.u8(REQ_STATS);
            w.u64(*id);
        }
        Request2::List { id } => {
            w.u8(REQ_LIST);
            w.u64(*id);
        }
        Request2::Ping { id } => {
            w.u8(REQ_PING);
            w.u64(*id);
        }
        Request2::Augment { id, pipeline, seed, index, series } => {
            w.u8(REQ_AUGMENT);
            w.u64(*id);
            w.string(pipeline);
            w.u64(*seed);
            w.u64(*index);
            w.u32(series.n_dims() as u32);
            w.u32(series.len() as u32);
            for &v in series.as_flat() {
                w.f64(v);
            }
        }
    }
    frame(w.into_bytes())
}

/// Read a `u32 n_dims | u32 len | f64 × (n_dims·len)` series block —
/// shared tail of predict and augment requests. Both lengths funnel
/// through [`checked_len`] and the shape is proven to fit the remaining
/// frame bytes before any allocation.
fn read_series(r: &mut ByteReader<'_>, id: u64) -> Result<Mts, (u64, String)> {
    let fail = |e: tsda_core::TsdaError| (id, format!("bad frame: {e}"));
    let n_dims = checked_len(r.u32().map_err(fail)?, MAX_SERIES_VALUES, "series dims")
        .map_err(|m| (id, m))?;
    let len = checked_len(r.u32().map_err(fail)?, MAX_SERIES_VALUES, "series length")
        .map_err(|m| (id, m))?;
    if n_dims == 0 || len == 0 {
        return Err((id, format!("empty series shape {n_dims}x{len}")));
    }
    let total = n_dims
        .checked_mul(len)
        .filter(|&t| t.checked_mul(8).is_some_and(|b| b <= r.remaining()))
        .ok_or((id, format!("series shape {n_dims}x{len} exceeds frame")))?;
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(r.f64().map_err(fail)?);
    }
    Ok(Mts::from_flat(n_dims, len, data))
}

/// Decode one request body (CRC already checked). The error carries the
/// request id when it was readable (0 otherwise) so refusals stay
/// correlatable, mirroring `parse_request`.
pub fn decode_request(body: &[u8]) -> Result<Request2, (u64, String)> {
    let mut r = ByteReader::new(body);
    let kind = r.u8().map_err(|e| (0, format!("bad frame: {e}")))?;
    let id = r.u64().map_err(|e| (0, format!("bad frame: {e}")))?;
    let fail = |e: tsda_core::TsdaError| (id, format!("bad frame: {e}"));
    let req = match kind {
        REQ_PREDICT => {
            let model = r.string().map_err(fail)?;
            let series = read_series(&mut r, id)?;
            Request2::Predict { id, model, series }
        }
        REQ_STATS => Request2::Stats { id },
        REQ_LIST => Request2::List { id },
        REQ_PING => Request2::Ping { id },
        REQ_AUGMENT => {
            let pipeline = r.string().map_err(fail)?;
            let seed = r.u64().map_err(fail)?;
            let index = r.u64().map_err(fail)?;
            let series = read_series(&mut r, id)?;
            Request2::Augment { id, pipeline, seed, index, series }
        }
        other => return Err((id, format!("unknown request kind 0x{other:02x}"))),
    };
    r.finish().map_err(|e| (id, format!("bad frame: {e}")))?;
    Ok(req)
}

/// What a router needs from a request to place it: the op + model for
/// shard lookup and a content hash for rendezvous routing. Decoding
/// stops at the header — series payload bytes are hashed, never parsed,
/// so routing a v2 predict does no float work at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routing {
    /// A predict for `model`; `key` hashes the series payload bytes.
    Predict {
        /// Correlation id (for error replies the router originates).
        id: u64,
        /// Target model name.
        model: String,
        /// FNV-1a of the payload bytes after the model name.
        key: u64,
    },
    /// Stats — answered by the router itself.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// List — forwarded to any healthy replica.
    List {
        /// Correlation id.
        id: u64,
    },
    /// Ping — answered by the router itself.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// An augment for `pipeline`; every replica loads the same pipeline
    /// file, so any healthy replica can serve it — `key` keeps
    /// rendezvous placement stable for caching-friendly policies.
    Augment {
        /// Correlation id.
        id: u64,
        /// Target pipeline name.
        pipeline: String,
        /// FNV-1a of the payload bytes after the pipeline name.
        key: u64,
    },
}

/// FNV-1a over a byte slice: a deterministic, dependency-free content
/// hash for rendezvous routing (not cryptographic; it only needs to
/// spread keys evenly and stay stable across processes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Decode just the routing header of a request body (CRC already
/// checked).
pub fn decode_routing(body: &[u8]) -> Result<Routing, (u64, String)> {
    let mut r = ByteReader::new(body);
    let kind = r.u8().map_err(|e| (0, format!("bad frame: {e}")))?;
    let id = r.u64().map_err(|e| (0, format!("bad frame: {e}")))?;
    match kind {
        REQ_PREDICT => {
            let model = r.string().map_err(|e| (id, format!("bad frame: {e}")))?;
            let rest = r.bytes(r.remaining()).unwrap_or(&[]);
            Ok(Routing::Predict { id, model, key: fnv1a(rest) })
        }
        REQ_STATS => Ok(Routing::Stats { id }),
        REQ_LIST => Ok(Routing::List { id }),
        REQ_PING => Ok(Routing::Ping { id }),
        REQ_AUGMENT => {
            let pipeline = r.string().map_err(|e| (id, format!("bad frame: {e}")))?;
            let rest = r.bytes(r.remaining()).unwrap_or(&[]);
            Ok(Routing::Augment { id, pipeline, key: fnv1a(rest) })
        }
        other => Err((id, format!("unknown request kind 0x{other:02x}"))),
    }
}

/// Append one full frame to `out`: length prefix + the body written by
/// `fill` + CRC, laid out exactly as [`frame`] produces. The caller's
/// buffer is reused across replies, so a warm connection encodes
/// without allocating.
fn frame_into(out: &mut Vec<u8>, fill: impl FnOnce(&mut ByteWriter)) {
    let mut w = ByteWriter::from_vec(std::mem::take(out));
    let start = w.len();
    w.u32(0); // length prefix, patched once the body size is known
    fill(&mut w);
    let mut bytes = w.into_bytes();
    let body_start = start + 4;
    let crc = crc32(&bytes[body_start..]);
    let len = (bytes.len() - body_start + 4) as u32;
    bytes[start..body_start].copy_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&crc.to_le_bytes());
    *out = bytes;
}

/// Encode a successful predict reply into a reused buffer.
pub fn encode_reply_predict_into(out: &mut Vec<u8>, id: u64, label: u64, batch: u32, micros: u64) {
    frame_into(out, |w| {
        w.u8(REPLY_PREDICT);
        w.u64(id);
        w.u64(label);
        w.u32(batch);
        w.u64(micros);
    });
}

/// Encode a successful predict reply.
pub fn encode_reply_predict(id: u64, label: u64, batch: u32, micros: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_reply_predict_into(&mut out, id, label, batch, micros);
    out
}

/// Encode a successful augment reply into a reused buffer: the
/// transformed series as raw f64 bit patterns (no text hop, bit-exact
/// by construction).
pub fn encode_reply_augment_into(out: &mut Vec<u8>, id: u64, series: &Mts, batch: u32, micros: u64) {
    frame_into(out, |w| {
        w.u8(REPLY_AUGMENT);
        w.u64(id);
        w.u32(batch);
        w.u64(micros);
        w.u32(series.n_dims() as u32);
        w.u32(series.len() as u32);
        for &v in series.as_flat() {
            w.f64(v);
        }
    });
}

/// Encode a successful augment reply.
pub fn encode_reply_augment(id: u64, series: &Mts, batch: u32, micros: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_reply_augment_into(&mut out, id, series, batch, micros);
    out
}

/// Encode an error reply into a reused buffer. `retry_ms` is meaningful
/// for [`ErrCode::Overloaded`] / [`ErrCode::Throttled`] (0 otherwise).
pub fn encode_reply_error_into(
    out: &mut Vec<u8>,
    id: u64,
    code: ErrCode,
    message: &str,
    retry_ms: u64,
) {
    frame_into(out, |w| {
        w.u8(REPLY_ERROR);
        w.u64(id);
        w.u8(code.to_u8());
        w.u64(retry_ms);
        w.string(message);
    });
}

/// Encode an error reply.
pub fn encode_reply_error(id: u64, code: ErrCode, message: &str, retry_ms: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_reply_error_into(&mut out, id, code, message, retry_ms);
    out
}

/// Encode a result reply (stats / list) into a reused buffer. The
/// payload reuses the JSON value tree — these ops are observability,
/// not the hot path.
pub fn encode_reply_result_into(out: &mut Vec<u8>, id: u64, value: &Value) {
    frame_into(out, |w| {
        w.u8(REPLY_RESULT);
        w.u64(id);
        // Value trees always serialise; an empty object is the safe
        // fallback if that invariant ever breaks.
        w.string(&serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string()));
    });
}

/// Encode a result reply (stats / list).
pub fn encode_reply_result(id: u64, value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_reply_result_into(&mut out, id, value);
    out
}

/// Decode one reply body (CRC already checked) into the shared
/// [`Response`] the NDJSON client path also produces, so retry logic
/// upstream is protocol-agnostic.
pub fn decode_reply(body: &[u8]) -> Result<Response, String> {
    let mut r = ByteReader::new(body);
    let fail = |e: tsda_core::TsdaError| format!("bad reply frame: {e}");
    let kind = r.u8().map_err(fail)?;
    let id = r.u64().map_err(fail)?;
    let resp = match kind {
        REPLY_PREDICT => {
            let label = r.u64().map_err(fail)?;
            let batch = r.u32().map_err(fail)?;
            let micros = r.u64().map_err(fail)?;
            // Wire-derived counters: convert losslessly — a label that
            // overflows usize is a corrupt reply, not label 0.
            let label = usize::try_from(label).map_err(|_| "reply label overflows usize")?;
            let batch = usize::try_from(batch).map_err(|_| "reply batch overflows usize")?;
            Response {
                id,
                ok: true,
                label: Some(label),
                batch: Some(batch),
                micros: Some(micros),
                error: None,
                retry_ms: None,
                result: None,
                series: None,
            }
        }
        REPLY_AUGMENT => {
            let batch = r.u32().map_err(fail)?;
            let micros = r.u64().map_err(fail)?;
            let series = read_series(&mut r, id).map_err(|(_, m)| m)?;
            let batch = usize::try_from(batch).map_err(|_| "reply batch overflows usize")?;
            Response {
                id,
                ok: true,
                label: None,
                batch: Some(batch),
                micros: Some(micros),
                error: None,
                retry_ms: None,
                result: None,
                series: Some(series),
            }
        }
        REPLY_ERROR => {
            let code = ErrCode::from_u8(r.u8().map_err(fail)?)?;
            let retry_ms = r.u64().map_err(fail)?;
            let message = r.string().map_err(fail)?;
            // Shed / throttled refusals use the canonical marker strings
            // so `Response::is_overloaded` / `is_throttled` work
            // identically across protocols.
            let error = match code {
                ErrCode::Error => message,
                ErrCode::Overloaded => OVERLOADED.to_string(),
                ErrCode::Throttled => THROTTLED.to_string(),
            };
            Response {
                id,
                ok: false,
                label: None,
                batch: None,
                micros: None,
                error: Some(error),
                retry_ms: (code != ErrCode::Error).then_some(retry_ms),
                result: None,
                series: None,
            }
        }
        REPLY_RESULT => {
            let text = r.string().map_err(fail)?;
            let value = serde_json::parse_value(&text)
                .map_err(|e| format!("bad reply payload json: {e}"))?;
            Response {
                id,
                ok: true,
                label: None,
                batch: None,
                micros: None,
                error: None,
                retry_ms: None,
                result: Some(value),
                series: None,
            }
        }
        other => return Err(format!("unknown reply kind 0x{other:02x}")),
    };
    r.finish().map_err(fail)?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Mts {
        Mts::from_flat(2, 3, vec![1.0, -2.5, f64::MIN_POSITIVE, 0.0, 1e300, -0.0])
    }

    #[test]
    fn predict_request_round_trips_bit_exactly() {
        let req = Request2::Predict { id: 42, model: "rocket".into(), series: series() };
        let framed = encode_request(&req);
        let mut buf = framed.clone();
        let raw = take_frame(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty());
        let body = check_frame(&raw).unwrap();
        let back = decode_request(body).unwrap();
        assert_eq!(back, req);
        if let Request2::Predict { series: s, .. } = back {
            for (a, b) in s.as_flat().iter().zip(series().as_flat()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [Request2::Stats { id: 1 }, Request2::List { id: 2 }, Request2::Ping { id: 3 }] {
            let mut buf = encode_request(&req);
            let raw = take_frame(&mut buf).unwrap().unwrap();
            assert_eq!(decode_request(check_frame(&raw).unwrap()).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip_with_canonical_shed_markers() {
        let mut buf = encode_reply_predict(7, 3, 16, 812);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let r = decode_reply(check_frame(&raw).unwrap()).unwrap();
        assert!(r.ok);
        assert_eq!((r.id, r.label, r.batch, r.micros), (7, Some(3), Some(16), Some(812)));

        let mut buf = encode_reply_error(9, ErrCode::Overloaded, "queue full", 25);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let r = decode_reply(check_frame(&raw).unwrap()).unwrap();
        assert!(r.is_overloaded());
        assert_eq!(r.retry_ms, Some(25));

        let mut buf = encode_reply_error(9, ErrCode::Throttled, "quota", 40);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let r = decode_reply(check_frame(&raw).unwrap()).unwrap();
        assert!(r.is_throttled() && !r.is_overloaded());
        assert_eq!(r.retry_ms, Some(40));

        let mut buf = encode_reply_error(9, ErrCode::Error, "bad series", 0);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let r = decode_reply(check_frame(&raw).unwrap()).unwrap();
        assert!(!r.ok && r.retry_ms.is_none());
        assert_eq!(r.error.as_deref(), Some("bad series"));
    }

    #[test]
    fn partial_frames_wait_and_bad_lengths_reject() {
        let full = encode_request(&Request2::Ping { id: 1 });
        for cut in 0..full.len() {
            let mut buf = full[..cut].to_vec();
            assert_eq!(take_frame(&mut buf).unwrap(), None, "cut at {cut}");
            assert_eq!(buf.len(), cut, "partial frame must not be consumed");
        }
        // Oversized length prefix.
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(take_frame(&mut buf).is_err());
        // Undersized length prefix.
        let mut buf = 2u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(take_frame(&mut buf).is_err());
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let full = encode_request(&Request2::Predict {
            id: 5,
            model: "m".into(),
            series: series(),
        });
        for pos in 4..full.len() {
            let mut copy = full.clone();
            copy[pos] ^= 0x40;
            let mut buf = copy;
            let raw = take_frame(&mut buf).unwrap().expect("boundary intact");
            assert!(check_frame(&raw).is_err(), "corruption at {pos} not caught");
        }
    }

    #[test]
    fn routing_header_matches_full_decode_and_hash_is_content_sensitive() {
        let req = Request2::Predict { id: 11, model: "rocket".into(), series: series() };
        let mut buf = encode_request(&req);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let body = check_frame(&raw).unwrap();
        let Ok(Routing::Predict { id, model, key }) = decode_routing(body) else {
            panic!("routing decode failed");
        };
        assert_eq!((id, model.as_str()), (11, "rocket"));

        let mut other = series();
        other.set(0, 0, 2.0);
        let req2 = Request2::Predict { id: 11, model: "rocket".into(), series: other };
        let mut buf = encode_request(&req2);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let Ok(Routing::Predict { key: key2, .. }) = decode_routing(check_frame(&raw).unwrap())
        else {
            panic!("routing decode failed");
        };
        assert_ne!(key, key2, "content hash must depend on series values");
    }

    #[test]
    fn augment_request_and_reply_round_trip_bit_exactly() {
        let req = Request2::Augment {
            id: 21,
            pipeline: "light".into(),
            seed: 7,
            index: 3,
            series: series(),
        };
        let mut buf = encode_request(&req);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let body = check_frame(&raw).unwrap();
        assert_eq!(decode_request(body).unwrap(), req);

        let Ok(Routing::Augment { id, pipeline, key }) = decode_routing(body) else {
            panic!("routing decode failed");
        };
        assert_eq!((id, pipeline.as_str()), (21, "light"));
        // The routing key covers seed/index/series, so two requests
        // differing only in index land on different rendezvous keys.
        let req2 = Request2::Augment {
            id: 21,
            pipeline: "light".into(),
            seed: 7,
            index: 4,
            series: series(),
        };
        let mut buf = encode_request(&req2);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let Ok(Routing::Augment { key: key2, .. }) = decode_routing(check_frame(&raw).unwrap())
        else {
            panic!("routing decode failed");
        };
        assert_ne!(key, key2);

        let mut buf = encode_reply_augment(21, &series(), 4, 55);
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let r = decode_reply(check_frame(&raw).unwrap()).unwrap();
        assert!(r.ok);
        assert_eq!((r.id, r.batch, r.micros), (21, Some(4), Some(55)));
        let got = r.series.expect("augment reply carries a series");
        for (a, b) in got.as_flat().iter().zip(series().as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupted_augment_frames_never_pass_the_checksum() {
        let full = encode_request(&Request2::Augment {
            id: 5,
            pipeline: "p".into(),
            seed: 1,
            index: 2,
            series: series(),
        });
        for pos in 4..full.len() {
            let mut copy = full.clone();
            copy[pos] ^= 0x40;
            let mut buf = copy;
            let raw = take_frame(&mut buf).unwrap().expect("boundary intact");
            assert!(check_frame(&raw).is_err(), "corruption at {pos} not caught");
        }
    }

    #[test]
    fn reframe_reconstructs_the_original_frame() {
        let full = encode_request(&Request2::Stats { id: 3 });
        let mut buf = full.clone();
        let raw = take_frame(&mut buf).unwrap().unwrap();
        assert_eq!(reframe(&raw), full);
    }

    #[test]
    fn trailing_bytes_after_a_request_are_rejected() {
        let mut w = ByteWriter::new();
        w.u8(REQ_PING);
        w.u64(1);
        w.u8(0xEE); // smuggled trailing byte
        let mut buf = frame(w.into_bytes());
        let raw = take_frame(&mut buf).unwrap().unwrap();
        let err = decode_request(check_frame(&raw).unwrap()).unwrap_err();
        assert_eq!(err.0, 1);
        assert!(err.1.contains("unread"), "{}", err.1);
    }

    #[test]
    fn frame_into_matches_the_owned_frame_layout_and_survives_reuse() {
        let mut w = ByteWriter::new();
        w.u8(REPLY_PREDICT);
        w.u64(7);
        w.u64(3);
        w.u32(2);
        w.u64(88);
        let owned = frame(w.into_bytes());
        let mut reused = Vec::new();
        encode_reply_predict_into(&mut reused, 7, 3, 2, 88);
        assert_eq!(reused, owned, "in-place encoder must mirror frame() byte-for-byte");
        // Clearing and re-encoding into the same (now warm) buffer
        // must produce the identical frame — length prefix and CRC are
        // computed relative to the append position, not the buffer.
        reused.clear();
        encode_reply_error_into(&mut reused, 9, ErrCode::Overloaded, "overloaded", 20);
        let raw = check_frame(&take_frame(&mut reused.clone()).unwrap().unwrap()).is_ok();
        assert!(raw, "reused buffer still frames and checksums cleanly");
        reused.clear();
        encode_reply_predict_into(&mut reused, 7, 3, 2, 88);
        assert_eq!(reused, owned);
    }
}
