//! Client-side plumbing: connections, request builders, the readiness
//! probe, and a retrying client that survives fault injection.
//!
//! [`Conn`] is the raw one-request-in-flight connection the load
//! generator uses on the happy path. [`RetryingClient`] wraps it with
//! the recovery policy the chaos suites (and any real client) need:
//!
//! * **Per-request timeouts** — a read that exceeds
//!   [`RetryPolicy::timeout`] abandons the connection rather than
//!   hanging forever on a stalled or half-dead server.
//! * **Reconnect-and-replay** — any transport failure (mid-line drop,
//!   timeout, refused connect) discards the connection, because a
//!   half-read response would desync every later request on it, and
//!   replays the request on a fresh one. Predict requests are
//!   idempotent (same series + same model ⇒ same label, and the server
//!   keeps no per-request state), so replay is always safe.
//! * **Capped exponential backoff with seeded jitter** — refusals and
//!   transport errors back off `base·2ᵏ` capped at `max_backoff`, with
//!   a jitter drawn from a seeded [`StdRng`] so concurrent clients
//!   desynchronise without the schedule depending on ambient entropy.
//!   An `overloaded` reply's `retry_ms` hint raises the floor of the
//!   next backoff: explicit server backpressure wins over the local
//!   guess.
//!
//! Every refusal (`ok:false`) is treated as retryable up to the
//! attempt budget: under byte-level request corruption *any* field may
//! have been mangled in flight (a corrupted model name comes back
//! `unknown model`), so the only wrong move is giving up on the first
//! refusal. Genuine caller bugs still surface — the final refusal is
//! returned to the caller once the budget is spent.

use crate::proto2;
use crate::protocol::{parse_response, Response};
use rand::rngs::StdRng;
use rand::Rng;
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tsda_core::rng::derive_seed;
use tsda_core::Mts;

/// Which wire protocol a connection speaks. NDJSON is the default;
/// [`Proto::V2`] sends the binary preamble on connect and frames every
/// request/reply (see [`crate::proto2`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// Newline-delimited JSON (protocol v1).
    #[default]
    Ndjson,
    /// Length-prefixed binary frames (protocol v2).
    V2,
}

impl Proto {
    /// Parse a `--proto` flag value.
    pub fn from_flag(s: &str) -> Result<Self, String> {
        match s {
            "ndjson" | "v1" => Ok(Self::Ndjson),
            "v2" | "binary" => Ok(Self::V2),
            other => Err(format!("unknown protocol {other:?} (expected ndjson|v2)")),
        }
    }

    /// The canonical flag spelling (for bench rows and logs).
    pub fn name(self) -> &'static str {
        match self {
            Self::Ndjson => "ndjson",
            Self::V2 => "v2",
        }
    }
}

/// Build a request line from an op and extra fields.
pub fn request_line(id: u64, op: &str, extra: Vec<(String, Value)>) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::Num(id as f64)),
        ("op".to_string(), Value::Str(op.to_string())),
    ];
    pairs.extend(extra);
    // Value trees always serialise; the fallback ping keeps this
    // infallible without a panic site.
    serde_json::to_string(&Value::Object(pairs))
        .unwrap_or_else(|_| r#"{"id":0,"op":"ping"}"#.to_string())
}

/// Build a predict request line.
pub fn predict_line(id: u64, model: &str, series: &str) -> String {
    request_line(
        id,
        "predict",
        vec![
            ("model".into(), Value::Str(model.to_string())),
            ("series".into(), Value::Str(series.to_string())),
        ],
    )
}

/// Build an augment request line.
pub fn augment_line(id: u64, pipeline: &str, seed: u64, index: u64, series: &str) -> String {
    request_line(
        id,
        "augment",
        vec![
            ("pipeline".into(), Value::Str(pipeline.to_string())),
            ("seed".into(), Value::Num(seed as f64)),
            ("index".into(), Value::Num(index as f64)),
            ("series".into(), Value::Str(series.to_string())),
        ],
    )
}

/// One connection that sends a line and reads the matching response.
/// The server answers in order, so with one request in flight the next
/// line read is always the reply to the line just sent.
pub struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    proto: Proto,
}

impl Conn {
    /// Connect without timeouts (reads block indefinitely).
    pub fn open(addr: &str) -> Result<Self, String> {
        Self::open_with_timeout(addr, None)
    }

    /// Connect; `timeout` bounds every read and write on the socket.
    pub fn open_with_timeout(addr: &str, timeout: Option<Duration>) -> Result<Self, String> {
        Self::open_proto(addr, timeout, Proto::Ndjson)
    }

    /// Connect speaking `proto`. A v2 connection announces itself by
    /// writing the 4-byte preamble before anything else.
    pub fn open_proto(
        addr: &str,
        timeout: Option<Duration>,
        proto: Proto,
    ) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(timeout).map_err(|e| format!("set timeout: {e}"))?;
        stream.set_write_timeout(timeout).map_err(|e| format!("set timeout: {e}"))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("clone stream: {e}"))?);
        let mut conn = Self { writer: stream, reader, proto };
        if proto == Proto::V2 {
            conn.writer
                .write_all(&proto2::PREAMBLE)
                .map_err(|e| format!("send preamble: {e}"))?;
        }
        Ok(conn)
    }

    /// The protocol this connection negotiated at connect time.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Send one line, read one reply line. Any error leaves the stream
    /// in an unknown state — callers must not reuse the connection
    /// after a failure (the [`RetryingClient`] reconnects instead).
    pub fn round_trip(&mut self, line: &str) -> Result<Response, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        if !reply.ends_with('\n') {
            // EOF mid-line: the server (or a fault plan) dropped the
            // connection halfway through the reply.
            return Err("connection dropped mid-response".into());
        }
        parse_response(reply.trim_end())
    }

    /// Send one v2 frame, read one v2 reply frame. The same
    /// error-means-poisoned contract as [`Conn::round_trip`] applies.
    pub fn round_trip_frame(&mut self, frame: &[u8]) -> Result<Response, String> {
        self.writer.write_all(frame).map_err(|e| format!("send: {e}"))?;
        let mut len_bytes = [0u8; 4];
        self.reader.read_exact(&mut len_bytes).map_err(|e| format!("recv: {e}"))?;
        let len =
            proto2::checked_len(u32::from_le_bytes(len_bytes), proto2::MAX_FRAME, "reply frame")?;
        if len < 5 {
            return Err(format!("bad reply frame length {len}"));
        }
        let mut raw = vec![0u8; len];
        self.reader.read_exact(&mut raw).map_err(|e| format!("recv: {e}"))?;
        let body = proto2::check_frame(&raw)?;
        proto2::decode_reply(body)
    }

    /// Round-trip one request in this connection's protocol.
    pub fn round_trip_request(&mut self, req: &WireRequest) -> Result<Response, String> {
        match (self.proto, req) {
            (Proto::Ndjson, WireRequest::Line(line)) => self.round_trip(line),
            (Proto::V2, WireRequest::Frame(frame)) => self.round_trip_frame(frame),
            _ => Err("request encoding does not match connection protocol".into()),
        }
    }
}

/// A request already encoded for one protocol, ready to (re)send.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// An NDJSON request line (no trailing newline).
    Line(String),
    /// A complete v2 frame (length prefix included).
    Frame(Vec<u8>),
}

impl WireRequest {
    /// Encode a predict for `proto`. NDJSON renders the series back to
    /// `.ts` text; v2 ships raw f64 bit patterns.
    pub fn predict(proto: Proto, id: u64, model: &str, series: &Mts) -> Self {
        match proto {
            Proto::Ndjson => Self::Line(predict_line(
                id,
                model,
                &tsda_datasets::ts_format::format_series_line(series),
            )),
            Proto::V2 => Self::Frame(proto2::encode_request(&proto2::Request2::Predict {
                id,
                model: model.to_string(),
                series: series.clone(),
            })),
        }
    }

    /// Encode an augment for `proto`. The reply's `series` field is the
    /// transformed sample, bit-identical to offline
    /// `AugPipeline::apply_one(series, seed, index)`.
    pub fn augment(
        proto: Proto,
        id: u64,
        pipeline: &str,
        seed: u64,
        index: u64,
        series: &Mts,
    ) -> Self {
        match proto {
            Proto::Ndjson => Self::Line(augment_line(
                id,
                pipeline,
                seed,
                index,
                &tsda_datasets::ts_format::format_series_line(series),
            )),
            Proto::V2 => Self::Frame(proto2::encode_request(&proto2::Request2::Augment {
                id,
                pipeline: pipeline.to_string(),
                seed,
                index,
                series: series.clone(),
            })),
        }
    }

    /// Encode a no-payload op (`"ping"`, `"stats"`, `"list"`).
    pub fn simple(proto: Proto, id: u64, op: &str) -> Self {
        match proto {
            Proto::Ndjson => Self::Line(request_line(id, op, vec![])),
            Proto::V2 => {
                let req = match op {
                    "stats" => proto2::Request2::Stats { id },
                    "list" => proto2::Request2::List { id },
                    _ => proto2::Request2::Ping { id },
                };
                Self::Frame(proto2::encode_request(&req))
            }
        }
    }
}

/// Poll `addr` with ping requests until the server answers or `secs`
/// elapse.
pub fn wait_ready(addr: &str, secs: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let probe_gap = Duration::from_millis(200);
    let probe_timeout = Some(Duration::from_secs(2));
    let mut last;
    loop {
        match Conn::open_with_timeout(addr, probe_timeout)
            .and_then(|mut c| c.round_trip(&request_line(1, "ping", vec![])))
        {
            Ok(r) if r.ok => return Ok(()),
            Ok(r) => last = r.error.unwrap_or_else(|| "not ok".into()),
            Err(e) => last = e,
        }
        // Sleep between probes — never a busy-spin — but cap the nap to
        // the remaining budget so the timeout is honoured tightly. A
        // ready server always passes at least one probe, even with
        // `--wait-ready 0`.
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep(probe_gap.min(deadline - now));
    }
    Err(format!("server at {addr} not ready after {secs}s: {last}"))
}

/// Recovery knobs for [`RetryingClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Read/write timeout on the socket (the per-request deadline).
    pub timeout: Duration,
    /// Seeds the jitter stream (mixed with a per-client label so
    /// concurrent clients built from one seed still desynchronise).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
            timeout: Duration::from_secs(5),
            jitter_seed: 7,
        }
    }
}

/// What the retry machinery did on a client's behalf.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Requests issued through [`RetryingClient::round_trip`].
    pub requests: u64,
    /// Extra attempts beyond each request's first.
    pub retries: u64,
    /// Connections re-established after a transport failure.
    pub reconnects: u64,
    /// Backoffs taken in response to `overloaded` replies.
    pub shed_backoffs: u64,
}

/// A client that retries through faults: timeouts, refused or dropped
/// connections, torn replies, corrupted requests, and load shedding.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    proto: Proto,
    conn: Option<Conn>,
    jitter: StdRng,
    counters: ClientCounters,
    ever_connected: bool,
}

impl RetryingClient {
    /// A client for `addr` under `policy`. No IO happens until the
    /// first request (connect failures are retried like any transport
    /// fault). `label` distinguishes the jitter streams of clients
    /// sharing one `jitter_seed` (e.g. a worker index).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy, label: &str) -> Self {
        Self::new_proto(addr, policy, label, Proto::Ndjson)
    }

    /// Like [`RetryingClient::new`] but speaking `proto` on every
    /// connection (and reconnection).
    pub fn new_proto(
        addr: impl Into<String>,
        policy: RetryPolicy,
        label: &str,
        proto: Proto,
    ) -> Self {
        Self {
            addr: addr.into(),
            jitter: tsda_core::rng::seeded(derive_seed(policy.jitter_seed, label)),
            policy,
            proto,
            conn: None,
            counters: ClientCounters::default(),
            ever_connected: false,
        }
    }

    /// The protocol this client speaks.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Cumulative retry/reconnect counters.
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// Predict one series (NDJSON text form), retrying through faults.
    pub fn predict(&mut self, id: u64, model: &str, series: &str) -> Result<Response, String> {
        self.round_trip(&predict_line(id, model, series))
    }

    /// Predict one decoded series in this client's protocol, retrying
    /// through faults.
    pub fn predict_mts(&mut self, id: u64, model: &str, series: &Mts) -> Result<Response, String> {
        let req = WireRequest::predict(self.proto, id, model, series);
        self.round_trip_request(&req)
    }

    /// Augment one series through the named pipeline in this client's
    /// protocol, retrying through faults. Safe to replay: the result is
    /// a pure function of `(pipeline, seed, index, series)`.
    pub fn augment_mts(
        &mut self,
        id: u64,
        pipeline: &str,
        seed: u64,
        index: u64,
        series: &Mts,
    ) -> Result<Response, String> {
        let req = WireRequest::augment(self.proto, id, pipeline, seed, index, series);
        self.round_trip_request(&req)
    }

    /// Send `line` (NDJSON) until it gets an `ok:true` reply or the
    /// attempt budget runs out. The last refusal is returned as
    /// `Ok(response)` with `ok == false` (the server *did* answer);
    /// only transport failure on every attempt yields `Err`.
    pub fn round_trip(&mut self, line: &str) -> Result<Response, String> {
        self.round_trip_request(&WireRequest::Line(line.to_string()))
    }

    /// Protocol-agnostic retry loop shared by both wire formats.
    pub fn round_trip_request(&mut self, req: &WireRequest) -> Result<Response, String> {
        self.counters.requests += 1;
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.counters.retries += 1;
            }
            let outcome = match self.ensure_conn() {
                Ok(conn) => conn.round_trip_request(req),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(r) if r.ok => return Ok(r),
                Ok(r) => {
                    // The server answered but refused. Under request
                    // corruption any refusal may be transient (the
                    // mangled bytes, not our request, were rejected),
                    // so refusals retry up to the budget. Shed replies
                    // — `overloaded` from a replica's bounded queue OR
                    // `throttled` from router/replica admission control
                    // — carry an explicit backpressure hint that floors
                    // the next backoff.
                    let hint = if r.is_shed() {
                        self.counters.shed_backoffs += 1;
                        r.retry_ms
                    } else {
                        None
                    };
                    if attempt + 1 == attempts {
                        return Ok(r);
                    }
                    self.backoff(attempt, hint);
                }
                Err(e) => {
                    // Transport failure: reconnect-and-replay. The reply
                    // may have been half-read, so the old connection can
                    // never be trusted again.
                    self.conn = None;
                    last_err = e;
                    if attempt + 1 < attempts {
                        self.backoff(attempt, None);
                    }
                }
            }
        }
        Err(format!("request failed after {attempts} attempts: {last_err}"))
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn, String> {
        if self.conn.is_none() {
            let conn = Conn::open_proto(&self.addr, Some(self.policy.timeout), self.proto)?;
            if self.ever_connected {
                self.counters.reconnects += 1;
            }
            self.ever_connected = true;
            self.conn = Some(conn);
        }
        self.conn.as_mut().ok_or_else(|| "connection missing".to_string())
    }

    /// Sleep before retry `attempt + 1`: `base·2ᵏ` capped at
    /// `max_backoff`, floored by the server's `retry_ms` hint when one
    /// arrived, then jittered to `[d/2, d)` off the seeded stream.
    fn backoff(&mut self, attempt: u32, hint_ms: Option<u64>) {
        let exp = self.policy.base_backoff.saturating_mul(1u32 << attempt.min(10));
        let mut d = exp.min(self.policy.max_backoff);
        if let Some(ms) = hint_ms {
            d = d.max(Duration::from_millis(ms));
        }
        let half_us = (d.as_micros() as u64 / 2).max(1);
        let jitter = Duration::from_micros(self.jitter.gen_range(0..half_us));
        std::thread::sleep(d / 2 + jitter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_are_wellformed() {
        let line = predict_line(3, "rocket", "1,2:3,4");
        let parsed = crate::protocol::parse_request(&line).unwrap();
        assert_eq!(parsed.id(), 3);
        let ping = request_line(9, "ping", vec![]);
        assert!(crate::protocol::parse_request(&ping).is_ok());
    }

    /// A localhost port with nothing listening (bound then released),
    /// so connects fail fast with ECONNREFUSED instead of hanging.
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        addr
    }

    #[test]
    fn wait_ready_expires_against_a_dead_address() {
        let t0 = Instant::now();
        let err = wait_ready(&dead_addr(), 0).unwrap_err();
        assert!(err.contains("not ready"), "{err}");
        assert!(t0.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn retrying_client_gives_up_with_transport_error_when_nothing_listens() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            timeout: Duration::from_millis(200),
            jitter_seed: 1,
        };
        let mut client = RetryingClient::new(dead_addr(), policy, "t");
        let err = client.round_trip(&request_line(1, "ping", vec![])).unwrap_err();
        assert!(err.contains("after 2 attempts"), "{err}");
        let c = client.counters();
        assert_eq!((c.requests, c.retries), (1, 1));
    }

    /// A single-connection fake server that answers each request line
    /// with the next canned reply, then echoes ok pings forever. Lets
    /// the backoff tests observe exactly when the client retried.
    fn fake_server(replies: Vec<String>) -> (String, std::thread::JoinHandle<u64>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).ok();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut served = 0u64;
            let mut canned = replies.into_iter();
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return served;
                }
                served += 1;
                let id = crate::protocol::parse_request(line.trim_end())
                    .map(|r| r.id())
                    .unwrap_or(0);
                let reply = canned
                    .next()
                    .unwrap_or_else(|| format!("{{\"id\":{id},\"ok\":true}}"));
                writer.write_all(reply.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
            }
        });
        (addr, handle)
    }

    /// Satellite: a router-level `throttled` refusal's `retry_ms` hint
    /// must floor the next backoff exactly like a replica-level
    /// `overloaded` hint — `is_shed()` covers both markers.
    #[test]
    fn throttled_retry_hint_floors_the_backoff() {
        use crate::protocol::{overloaded_response, throttled_response};
        for (marker, reply) in
            [("throttled", throttled_response(1, 60)), ("overloaded", overloaded_response(1, 60))]
        {
            let (addr, server) = fake_server(vec![reply]);
            let policy = RetryPolicy {
                max_attempts: 3,
                // Local guesses are ~1 ms; only the 60 ms server hint
                // can push the retry past the threshold below.
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                timeout: Duration::from_secs(2),
                jitter_seed: 11,
            };
            let mut client = RetryingClient::new(addr, policy, marker);
            let t0 = Instant::now();
            let r = client.round_trip(&request_line(1, "ping", vec![])).unwrap();
            let elapsed = t0.elapsed();
            assert!(r.ok, "{marker}: retry after the hint must succeed");
            let c = client.counters();
            assert_eq!((c.retries, c.shed_backoffs), (1, 1), "{marker}");
            // The jittered floor is [hint/2, hint): with a 60 ms hint
            // the client waits ≥ 30 ms; the local policy alone would
            // wait < 3 ms.
            assert!(elapsed >= Duration::from_millis(30), "{marker}: backoff {elapsed:?} ignored the hint");
            drop(client);
            assert_eq!(server.join().unwrap_or(0), 2, "{marker}: exactly one retry");
        }
    }

    /// Plain refusals must NOT take the shed path or floor backoff.
    #[test]
    fn plain_errors_do_not_count_as_shed() {
        let (addr, server) = fake_server(vec![
            r#"{"id":1,"ok":false,"error":"unknown model \"x\"","retry_ms":500}"#.to_string(),
        ]);
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            timeout: Duration::from_secs(2),
            jitter_seed: 3,
        };
        let mut client = RetryingClient::new(addr, policy, "e");
        let t0 = Instant::now();
        let r = client.round_trip(&request_line(1, "ping", vec![])).unwrap();
        assert!(r.ok);
        assert_eq!(client.counters().shed_backoffs, 0);
        // Even with a (bogus) retry_ms on the error, backoff stays local.
        assert!(t0.elapsed() < Duration::from_millis(250));
        drop(client);
        assert_eq!(server.join().unwrap_or(0), 2);
    }

    #[test]
    fn jitter_streams_differ_per_label_but_are_seed_stable() {
        let draw = |label: &str| -> Vec<u64> {
            let mut rng =
                tsda_core::rng::seeded(derive_seed(RetryPolicy::default().jitter_seed, label));
            (0..4).map(|_| rng.gen_range(0..1000u64)).collect()
        };
        assert_eq!(draw("w0"), draw("w0"));
        assert_ne!(draw("w0"), draw("w1"));
    }
}
