//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded schedule of transport- and batcher-level
//! faults: delayed, torn, and dropped response writes, byte-corrupted
//! request lines, artificial batch-worker stalls, and load shedding at
//! the submit seam. Each injection site draws its decisions from
//! [`tsda_core::rng::derive_stream`] over `(seed, site-label, event
//! index)`, so the n-th event at a site makes the same call in every
//! run regardless of thread interleaving — the *plan* is a pure
//! function of the seed, which is what lets the chaos suites assert
//! exact survivability (zero lost requests, zero label mismatches)
//! instead of merely "it usually works".
//!
//! The plan also keeps per-kind event/injection counters (the
//! fault-plan log). Chaos tests assert every kind fired at least once
//! via [`FaultPlan::exercised_all`], and `chaos_soak` embeds
//! [`FaultPlan::to_value`] in `BENCH_chaos.json`.
//!
//! Fault injection is opt-in: servers run fault-free unless a plan is
//! handed to [`crate::server::ServerConfig`] (the `tsda_serve` bin
//! wires `--fault-seed` / `TSDA_FAULT_SEED` to [`FaultPlan::from_env`]).

use serde::Value;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tsda_core::rng::derive_stream;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep before writing a response (slow server / congested path).
    DelayWrite,
    /// Write a response in several flushed chunks with pauses between
    /// them (torn writes; the client sees partial lines mid-read).
    PartialWrite,
    /// Write a prefix of a response, then sever the connection
    /// (mid-line drop; the client must reconnect and replay).
    DropConnection,
    /// Overwrite one byte of a received request line before parsing
    /// (wire corruption; must yield an error reply, never a panic and
    /// never a silently different prediction).
    CorruptRequest,
    /// Sleep inside a batch worker before running the batch (a stalled
    /// model; builds queue depth and provokes real load shedding).
    StallWorker,
    /// Refuse a submit with an `overloaded` reply even though the
    /// queue had room (exercises the shedding path deterministically).
    ShedLoad,
}

impl FaultKind {
    /// Every kind, in a fixed order (indexes the plan's counters).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::DelayWrite,
        FaultKind::PartialWrite,
        FaultKind::DropConnection,
        FaultKind::CorruptRequest,
        FaultKind::StallWorker,
        FaultKind::ShedLoad,
    ];

    /// Stable label (stream derivation, logs, JSON reports).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DelayWrite => "delay_write",
            FaultKind::PartialWrite => "partial_write",
            FaultKind::DropConnection => "drop_connection",
            FaultKind::CorruptRequest => "corrupt_request",
            FaultKind::StallWorker => "stall_worker",
            FaultKind::ShedLoad => "shed_load",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::DelayWrite => 0,
            FaultKind::PartialWrite => 1,
            FaultKind::DropConnection => 2,
            FaultKind::CorruptRequest => 3,
            FaultKind::StallWorker => 4,
            FaultKind::ShedLoad => 5,
        }
    }
}

/// Per-kind injection rates in permille (0 = never, 1000 = always).
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// Response writes delayed.
    pub delay_write: u64,
    /// Response writes torn into flushed chunks.
    pub partial_write: u64,
    /// Response writes cut mid-line with the connection severed.
    pub drop_connection: u64,
    /// Request lines with one byte overwritten.
    pub corrupt_request: u64,
    /// Batches preceded by an artificial worker stall.
    pub stall_worker: u64,
    /// Submits shed with an `overloaded` reply.
    pub shed_load: u64,
}

impl FaultRates {
    /// The chaos-suite default: every kind frequent enough that a few
    /// hundred requests exercise all of them several times over.
    pub fn chaos() -> Self {
        Self {
            delay_write: 60,
            partial_write: 60,
            drop_connection: 30,
            corrupt_request: 40,
            stall_worker: 50,
            shed_load: 40,
        }
    }

    fn get(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::DelayWrite => self.delay_write,
            FaultKind::PartialWrite => self.partial_write,
            FaultKind::DropConnection => self.drop_connection,
            FaultKind::CorruptRequest => self.corrupt_request,
            FaultKind::StallWorker => self.stall_worker,
            FaultKind::ShedLoad => self.shed_load,
        }
    }
}

/// What to do to one response write (drawn once per response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    Clean,
    /// Sleep, then write normally.
    Delay(Duration),
    /// Write in chunks of `chunk` bytes, flushing and pausing between.
    Torn {
        /// Bytes per flushed chunk (≥ 1).
        chunk: usize,
        /// Pause between chunks.
        pause: Duration,
    },
    /// Write only the first `keep` bytes, then sever the connection.
    Drop {
        /// Bytes written before the cut (strictly less than the line).
        keep: usize,
    },
}

/// A seeded fault schedule plus its injection log.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Events observed per kind (the per-site stream index).
    events: [AtomicU64; 6],
    /// Faults actually injected per kind.
    injected: [AtomicU64; 6],
}

impl FaultPlan {
    /// A plan over explicit rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        Self {
            seed,
            rates,
            events: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A plan with the chaos-suite default rates.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, FaultRates::chaos())
    }

    /// Build a plan from `TSDA_FAULT_SEED` (absent, unparsable, or `0`
    /// means fault injection stays off).
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let seed = std::env::var("TSDA_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&s| s != 0)?;
        Some(Arc::new(FaultPlan::seeded(seed)))
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide the next event at `kind`'s site. Returns the event's
    /// decision word when the fault fires (callers derive magnitudes
    /// from it), `None` when this event passes clean.
    fn roll(&self, kind: FaultKind) -> Option<u64> {
        let rate = self.rates.get(kind);
        if rate == 0 {
            return None;
        }
        let idx = self.events[kind.index()].fetch_add(1, Ordering::Relaxed);
        let word = derive_stream(self.seed, kind.label(), idx);
        if word % 1000 < rate {
            self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
            // A fresh mix for magnitudes so they are independent of the
            // fire/no-fire threshold bits.
            Some(derive_stream(word, "magnitude", idx))
        } else {
            None
        }
    }

    /// Draw the fault (if any) for one response write of `len` bytes.
    /// At most one write fault applies per response; drop beats torn
    /// beats delay so each kind keeps its own deterministic stream.
    pub fn write_fault(&self, len: usize) -> WriteFault {
        if len >= 2 {
            if let Some(word) = self.roll(FaultKind::DropConnection) {
                // Keep at least 1 byte and never the whole line: the cut
                // must be observably mid-line.
                let keep = 1 + (word as usize % (len - 1));
                return WriteFault::Drop { keep };
            }
        }
        if len >= 2 {
            if let Some(word) = self.roll(FaultKind::PartialWrite) {
                let chunk = 1 + (word as usize % (len / 2).max(1));
                let pause = Duration::from_micros(500 + word % 1500);
                return WriteFault::Torn { chunk, pause };
            }
        }
        if let Some(word) = self.roll(FaultKind::DelayWrite) {
            return WriteFault::Delay(Duration::from_millis(1 + word % 8));
        }
        WriteFault::Clean
    }

    /// Maybe overwrite one byte of a received request line with an
    /// unprintable control byte. Returns true when corruption was
    /// applied. The replacement byte (0x01) cannot appear in any valid
    /// request, so a corrupted line always parses to a *recoverable
    /// error* — never to a well-formed request with different content,
    /// which would silently change a prediction.
    pub fn corrupt_line(&self, line: &mut [u8]) -> bool {
        if line.is_empty() {
            return false;
        }
        match self.roll(FaultKind::CorruptRequest) {
            Some(word) => {
                let pos = word as usize % line.len();
                line[pos] = 0x01;
                true
            }
            None => false,
        }
    }

    /// Maybe stall a batch worker before it runs a batch.
    pub fn stall(&self) -> Option<Duration> {
        self.roll(FaultKind::StallWorker)
            .map(|word| Duration::from_millis(5 + word % 35))
    }

    /// Maybe shed one submit. Returns the `retry_ms` hint to put in the
    /// overloaded reply.
    pub fn shed(&self) -> Option<u64> {
        self.roll(FaultKind::ShedLoad).map(|word| 5 + word % 20)
    }

    /// The fault-plan log: `(kind, events observed, faults injected)`.
    pub fn counts(&self) -> Vec<(FaultKind, u64, u64)> {
        FaultKind::ALL
            .iter()
            .map(|&k| {
                (
                    k,
                    self.events[k.index()].load(Ordering::Relaxed),
                    self.injected[k.index()].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// True when every fault kind has been injected at least once.
    pub fn exercised_all(&self) -> bool {
        self.injected.iter().all(|c| c.load(Ordering::Relaxed) > 0)
    }

    /// One summary line per kind (shutdown logs).
    pub fn summary(&self) -> String {
        self.counts()
            .iter()
            .map(|(k, events, injected)| format!("{}={injected}/{events}", k.label()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The plan and its log as a JSON value (for `BENCH_chaos.json`).
    pub fn to_value(&self) -> Value {
        let kinds = self
            .counts()
            .into_iter()
            .map(|(k, events, injected)| {
                (
                    k.label().to_string(),
                    Value::Object(vec![
                        ("rate_permille".into(), Value::Num(self.rates.get(k) as f64)),
                        ("events".into(), Value::Num(events as f64)),
                        ("injected".into(), Value::Num(injected as f64)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("seed".into(), Value::Num(self.seed as f64)),
            ("kinds".into(), Value::Object(kinds)),
        ])
    }
}

/// Write one response line through the plan's write faults. A
/// [`WriteFault::Drop`] writes a prefix and returns an error so the
/// connection handler closes the stream mid-line, exactly like a peer
/// vanishing under a half-written reply.
pub fn write_response(
    writer: &mut impl Write,
    bytes: &[u8],
    plan: Option<&FaultPlan>,
) -> std::io::Result<()> {
    let fault = match plan {
        Some(p) => p.write_fault(bytes.len()),
        None => WriteFault::Clean,
    };
    match fault {
        WriteFault::Clean => writer.write_all(bytes),
        WriteFault::Delay(pause) => {
            std::thread::sleep(pause);
            writer.write_all(bytes)
        }
        WriteFault::Torn { chunk, pause } => {
            let mut rest = bytes;
            while !rest.is_empty() {
                let n = chunk.min(rest.len());
                writer.write_all(&rest[..n])?;
                writer.flush()?;
                rest = &rest[n..];
                if !rest.is_empty() {
                    std::thread::sleep(pause);
                }
            }
            Ok(())
        }
        WriteFault::Drop { keep } => {
            let keep = keep.min(bytes.len().saturating_sub(1));
            writer.write_all(&bytes[..keep])?;
            writer.flush()?;
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "fault injection: connection dropped mid-line",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always() -> FaultRates {
        FaultRates {
            delay_write: 1000,
            partial_write: 1000,
            drop_connection: 1000,
            corrupt_request: 1000,
            stall_worker: 1000,
            shed_load: 1000,
        }
    }

    fn never() -> FaultRates {
        FaultRates {
            delay_write: 0,
            partial_write: 0,
            drop_connection: 0,
            corrupt_request: 0,
            stall_worker: 0,
            shed_load: 0,
        }
    }

    #[test]
    fn same_seed_produces_the_same_schedule() {
        let draw = |seed: u64| -> Vec<WriteFault> {
            let plan = FaultPlan::new(seed, FaultRates::chaos());
            (0..200).map(|_| plan.write_fault(64)).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn zero_rates_never_fire_and_log_nothing() {
        let plan = FaultPlan::new(9, never());
        for _ in 0..50 {
            assert_eq!(plan.write_fault(64), WriteFault::Clean);
            assert!(plan.stall().is_none());
            assert!(plan.shed().is_none());
            let mut line = b"{\"id\":1}".to_vec();
            assert!(!plan.corrupt_line(&mut line));
        }
        assert_eq!(plan.injected_total(), 0);
        assert!(!plan.exercised_all());
    }

    #[test]
    fn chaos_rates_exercise_every_kind_quickly() {
        let plan = FaultPlan::seeded(7);
        for _ in 0..600 {
            let _ = plan.write_fault(64);
            let _ = plan.stall();
            let _ = plan.shed();
            let mut line = vec![b'x'; 40];
            let _ = plan.corrupt_line(&mut line);
        }
        assert!(plan.exercised_all(), "log: {}", plan.summary());
    }

    #[test]
    fn corruption_replaces_exactly_one_byte_with_a_control_byte() {
        let plan = FaultPlan::new(3, always());
        let original = br#"{"id":1,"op":"predict","model":"rocket","series":"1,2"}"#;
        let mut line = original.to_vec();
        assert!(plan.corrupt_line(&mut line));
        let diffs: Vec<usize> =
            (0..line.len()).filter(|&i| line[i] != original[i]).collect();
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert_eq!(line[diffs[0]], 0x01);
    }

    #[test]
    fn torn_writes_deliver_every_byte_and_drops_cut_mid_line() {
        let plan = FaultPlan::new(5, always());
        // Rate 1000 fires on every roll; drop wins the priority order.
        let mut sink = Vec::new();
        let bytes = b"{\"id\":1,\"ok\":true}\n";
        let err = write_response(&mut sink, bytes, Some(&plan)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        assert!(!sink.is_empty() && sink.len() < bytes.len(), "{}", sink.len());

        // Torn-only plan: all bytes arrive, in order.
        let torn_only = FaultRates { drop_connection: 0, delay_write: 0, ..always() };
        let plan = FaultPlan::new(5, torn_only);
        let mut sink = Vec::new();
        write_response(&mut sink, bytes, Some(&plan)).unwrap();
        assert_eq!(sink, bytes);
    }

    #[test]
    fn write_without_a_plan_is_clean() {
        let mut sink = Vec::new();
        write_response(&mut sink, b"abc\n", None).unwrap();
        assert_eq!(sink, b"abc\n");
    }

    #[test]
    fn counts_track_events_and_injections() {
        let plan = FaultPlan::seeded(11);
        for _ in 0..100 {
            let _ = plan.shed();
        }
        let shed = plan
            .counts()
            .into_iter()
            .find(|(k, _, _)| *k == FaultKind::ShedLoad)
            .map(|(_, events, injected)| (events, injected));
        let Some((events, injected)) = shed else {
            panic!("shed_load missing from counts");
        };
        assert_eq!(events, 100);
        assert!(injected > 0 && injected < 100, "injected {injected}");
        let text = serde_json::to_string(&plan.to_value()).unwrap();
        assert!(text.contains("shed_load") && text.contains("seed"), "{text}");
    }

    #[test]
    fn from_env_requires_a_nonzero_seed() {
        // Not set in the test environment unless the caller exported it;
        // only assert the parse rules via the documented contract.
        std::env::remove_var("TSDA_FAULT_SEED_TEST_PROBE");
        assert!(FaultPlan::from_env().map(|p| p.seed() != 0).unwrap_or(true));
    }
}
