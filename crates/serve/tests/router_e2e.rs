//! End-to-end router tests: routing over live replicas, admission
//! control at the frontend, and the chaos contract — killing a replica
//! mid-load loses zero requests and never changes a label.

use serde::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsda_classify::persist::{load_model, load_model_bytes, SavedModel};
use tsda_classify::{Classifier, Rocket, RocketConfig};
use tsda_core::rng::seeded;
use tsda_core::{Dataset, Label, Mts};
use tsda_serve::admission::AdmissionConfig;
use tsda_serve::batcher::BatchConfig;
use tsda_serve::client::{Conn, Proto, RetryPolicy, RetryingClient, WireRequest};
use tsda_serve::registry::{ModelEntry, ModelRegistry};
use tsda_serve::router::{ReplicaSpec, RoutePolicy, Router, RouterConfig};
use tsda_serve::server::{serve, ServerConfig, ServerHandle};

fn toy_problem(seed: u64) -> (Dataset, Dataset) {
    let make = |split_seed: u64| {
        use rand::Rng;
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(split_seed);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.75 };
            for _ in 0..12 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                let dims = (0..2)
                    .map(|d| {
                        (0..24)
                            .map(|t| ((t as f64) * freq + phase + d as f64).sin())
                            .collect()
                    })
                    .collect();
                ds.push(Mts::from_dims(dims), c);
            }
        }
        ds
    };
    (make(seed), make(seed ^ 0xdead_beef))
}

/// One in-process replica serving a save/load-cycled rocket model.
/// Deterministic in `seed`, so two calls build byte-identical replicas.
fn replica_server(seed: u64) -> (ServerHandle, Vec<Label>, Dataset) {
    let (train, test) = toy_problem(seed);
    let mut rocket = Rocket::new(RocketConfig { n_kernels: 60, ..RocketConfig::default() });
    rocket.fit(&train, None, &mut seeded(5));
    let offline = rocket.predict(&test);
    let bytes = SavedModel::Rocket(rocket).save_bytes().unwrap();
    let loaded = load_model_bytes(&bytes).unwrap();
    let mut registry = ModelRegistry::new();
    registry.insert(ModelEntry::from_saved("rocket", loaded, None).unwrap());
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(2),
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("replica starts");
    (handle, offline, test)
}

fn external(addr: String) -> ReplicaSpec {
    ReplicaSpec::External { addr, models: vec!["rocket".to_string()] }
}

#[test]
fn router_routes_both_protocols_over_external_replicas() {
    let (replica_a, offline, test) = replica_server(21);
    let (replica_b, offline_b, _) = replica_server(21);
    assert_eq!(offline, offline_b, "replicas must hold identical models");

    let handle = Router::start(RouterConfig {
        replicas: vec![external(replica_a.addr().to_string()), external(replica_b.addr().to_string())],
        policy: RoutePolicy::Hash,
        ..RouterConfig::default()
    })
    .expect("router starts");
    let addr = handle.addr().to_string();

    // The whole test set twice — once per protocol — through the
    // router: every label must equal offline predict.
    for proto in [Proto::Ndjson, Proto::V2] {
        let mut conn = Conn::open_proto(&addr, Some(Duration::from_secs(10)), proto).unwrap();
        for (i, s) in test.series().iter().enumerate() {
            let r = conn
                .round_trip_request(&WireRequest::predict(proto, i as u64, "rocket", s))
                .expect("round trip");
            assert!(r.ok, "{proto:?} request {i} failed: {:?}", r.error);
            assert_eq!(
                r.label.unwrap(),
                offline[i],
                "{proto:?} series {i}: routed label diverged from offline predict"
            );
        }
    }

    // Rendezvous hashing spread the distinct series over both replicas,
    // and the router's own stats agree with the traffic.
    let mut conn = Conn::open_proto(&addr, Some(Duration::from_secs(10)), Proto::V2).unwrap();
    let stats = conn
        .round_trip_request(&WireRequest::simple(Proto::V2, 1, "stats"))
        .expect("stats")
        .result
        .expect("stats result");
    assert_eq!(stats.get("role").and_then(Value::as_str), Some("router"));
    let total = (2 * test.series().len()) as f64;
    assert_eq!(stats.get("requests").and_then(Value::as_f64), Some(total));
    assert_eq!(stats.get("forwarded").and_then(Value::as_f64), Some(total));
    let replicas = match stats.get("replicas") {
        Some(Value::Array(a)) => a,
        other => panic!("replicas not an array: {other:?}"),
    };
    for r in replicas {
        let forwarded = r.get("forwarded").and_then(Value::as_f64).unwrap();
        assert!(forwarded > 0.0, "hash routing left a replica idle: {r:?}");
    }

    // Same series → same replica: stickiness is observable as exactly
    // one replica's counter moving when one series repeats.
    let before: Vec<f64> = replicas
        .iter()
        .map(|r| r.get("forwarded").and_then(Value::as_f64).unwrap())
        .collect();
    for rep in 0..6u64 {
        let r = conn
            .round_trip_request(&WireRequest::predict(Proto::V2, 100 + rep, "rocket", &test.series()[0]))
            .expect("round trip");
        assert!(r.ok);
    }
    let stats = conn
        .round_trip_request(&WireRequest::simple(Proto::V2, 2, "stats"))
        .expect("stats")
        .result
        .expect("stats result");
    let after: Vec<f64> = match stats.get("replicas") {
        Some(Value::Array(a)) => a
            .iter()
            .map(|r| r.get("forwarded").and_then(Value::as_f64).unwrap())
            .collect(),
        other => panic!("replicas not an array: {other:?}"),
    };
    let moved = before.iter().zip(&after).filter(|(b, a)| a > b).count();
    assert_eq!(moved, 1, "a repeated series must stick to one replica: {before:?} -> {after:?}");

    handle.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}

#[test]
fn router_admission_throttles_with_retry_hints() {
    let (replica, _offline, test) = replica_server(33);
    let handle = Router::start(RouterConfig {
        replicas: vec![external(replica.addr().to_string())],
        policy: RoutePolicy::LeastLoaded,
        // Tiny quota: burst of 2, then one token per 200ms.
        admission: Some(AdmissionConfig::new(5.0, 2.0)),
        ..RouterConfig::default()
    })
    .expect("router starts");
    let addr = handle.addr().to_string();

    // A burst beyond the quota on a raw connection (no retries): the
    // excess must be refused as `throttled` with a nonzero retry hint,
    // over both protocols.
    let mut throttled = 0;
    for proto in [Proto::V2, Proto::Ndjson] {
        let mut conn = Conn::open_proto(&addr, Some(Duration::from_secs(10)), proto).unwrap();
        for i in 0..6u64 {
            let r = conn
                .round_trip_request(&WireRequest::predict(proto, i, "rocket", &test.series()[0]))
                .expect("round trip");
            if r.is_throttled() {
                assert!(r.is_shed(), "throttled must count as shed");
                assert!(
                    r.retry_ms.is_some_and(|ms| ms > 0),
                    "throttled reply must carry a retry hint: {r:?}"
                );
                throttled += 1;
            }
        }
    }
    assert!(throttled >= 4, "12 rapid requests on a 2-burst quota throttled only {throttled}");

    // The retrying client rides the hints out to success.
    let mut client = RetryingClient::new_proto(
        addr,
        RetryPolicy { max_attempts: 16, jitter_seed: 5, ..RetryPolicy::default() },
        "quota",
        Proto::V2,
    );
    let r = client.predict_mts(99, "rocket", &test.series()[1]).expect("retries succeed");
    assert!(r.ok, "request must succeed once the bucket refills: {:?}", r.error);
    assert!(client.counters().shed_backoffs > 0, "the throttle hint should have floored a backoff");

    let snap = handle.snapshot();
    assert!(
        snap.get("throttled").and_then(Value::as_f64).unwrap() >= 4.0,
        "router stats must count throttles: {snap:?}"
    );

    handle.shutdown();
    replica.shutdown();
}

/// The chaos contract from the issue: spawn real `tsda_serve`
/// processes, kill one mid-load, and require zero lost requests, zero
/// label divergence, and an automatic restart.
#[test]
fn router_chaos_replica_kill_loses_nothing() {
    let serve_bin = env!("CARGO_BIN_EXE_tsda_serve");
    let dir = std::env::temp_dir().join(format!("tsda-router-e2e-{}", std::process::id()));
    let dir_s = dir.to_string_lossy().into_owned();
    std::fs::create_dir_all(&dir).expect("mkdir model dir");

    // Pretrain once (--max-seconds 0 trains, saves, exits) so both
    // replicas load byte-identical model files.
    let status = std::process::Command::new(serve_bin)
        .args([
            "--addr", "127.0.0.1:0", "--models", "rocket", "--dataset", "RacketSports",
            "--seed", "7", "--dir", &dir_s, "--fast", "--max-seconds", "0",
        ])
        .stdout(std::process::Stdio::null())
        .status()
        .expect("pretrain spawn");
    assert!(status.success(), "pretrain run failed: {status}");

    // Offline ground truth from the exact bytes the replicas serve.
    let saved = load_model(&dir.join("rocket.tsda")).expect("load pretrained rocket");
    let meta = tsda_datasets::registry::ALL_DATASETS
        .iter()
        .find(|m| m.name == "RacketSports")
        .expect("dataset meta");
    let tt = tsda_datasets::synth::generate(meta, &tsda_datasets::synth::GenOptions::ci(7));
    let offline = match saved {
        SavedModel::Rocket(mut m) => m.predict(&tt.test),
        other => panic!("expected a rocket model, got {:?}", other.kind()),
    };

    let spawn_spec = || ReplicaSpec::Spawn {
        bin: serve_bin.to_string(),
        args: [
            "--addr", "127.0.0.1:0", "--models", "rocket", "--dataset", "RacketSports",
            "--seed", "7", "--dir", &dir_s, "--fast", "--max-wait-ms", "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        models: vec!["rocket".to_string()],
    };
    let handle = Router::start(RouterConfig {
        replicas: vec![spawn_spec(), spawn_spec()],
        policy: RoutePolicy::LeastLoaded,
        ..RouterConfig::default()
    })
    .expect("router starts");
    let addr = handle.addr().to_string();

    // Load: three workers round-robin the test set through retrying v2
    // clients while the main thread kills replica 0 mid-flight.
    let n_workers = 3usize;
    let per_worker = 40usize;
    let completed = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::new();
    for worker in 0..n_workers {
        let addr = addr.clone();
        let test = tt.test.clone();
        let offline = offline.clone();
        let completed = Arc::clone(&completed);
        workers.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new_proto(
                addr,
                RetryPolicy {
                    max_attempts: 16,
                    timeout: Duration::from_secs(10),
                    jitter_seed: worker as u64,
                    ..RetryPolicy::default()
                },
                &format!("chaos-{worker}"),
                Proto::V2,
            );
            for i in 0..per_worker {
                let idx = (worker + i * n_workers) % test.series().len();
                let r = client
                    .predict_mts(i as u64, "rocket", &test.series()[idx])
                    .expect("request must survive the replica kill");
                assert!(r.ok, "worker {worker} request {i} failed: {:?}", r.error);
                assert_eq!(
                    r.label.unwrap(),
                    offline[idx],
                    "worker {worker} series {idx}: label diverged after failover"
                );
                completed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // Kill replica 0 once the load is demonstrably in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.load(Ordering::Relaxed) < 10 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.kill_replica(0), "kill must land on a live spawned replica");

    for w in workers {
        w.join().expect("no worker may lose a request");
    }
    assert_eq!(completed.load(Ordering::Relaxed), n_workers * per_worker);

    // The monitor must respawn the dead replica and probe it healthy.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let restarted = handle.restarts_total() >= 1;
        let healthy = match handle.snapshot().get("replicas") {
            Some(Value::Array(a)) => a
                .iter()
                .all(|r| r.get("healthy") == Some(&Value::Bool(true))),
            _ => false,
        };
        if restarted && healthy {
            break;
        }
        assert!(Instant::now() < deadline, "replica 0 was not restarted within 60s");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Traffic after the restart still matches offline.
    let mut client = RetryingClient::new_proto(
        addr,
        RetryPolicy { max_attempts: 8, jitter_seed: 9, ..RetryPolicy::default() },
        "post-restart",
        Proto::V2,
    );
    for (idx, s) in tt.test.series().iter().take(8).enumerate() {
        let r = client.predict_mts(idx as u64, "rocket", s).expect("post-restart request");
        assert!(r.ok);
        assert_eq!(r.label.unwrap(), offline[idx]);
    }

    handle.shutdown();
    let _cleanup = std::fs::remove_dir_all(&dir).is_ok();
}
