//! Property tests for the wire-facing parsers: adversarial inputs must
//! produce recoverable errors, never panics, hangs, or silently
//! altered requests. These are exactly the invariants the fault
//! injector leans on — a corrupted byte stream may reach
//! `parse_request` and `decode_series` verbatim.

use proptest::prelude::*;
use tsda_core::Mts;
use tsda_datasets::ts_format::{format_series_line, parse_series_line};
use tsda_serve::client::predict_line;
use tsda_serve::proto2::{
    self, check_frame, decode_request, decode_routing, encode_request, take_frame, Request2,
};
use tsda_serve::protocol::{decode_series, parse_request, parse_response, Request};

/// The control byte the fault plan writes over corrupted request
/// lines. (A named const keeps `\u` escapes out of `prop_assert!`
/// conditions, whose stringified form doubles as a format string.)
const CORRUPT_BYTE: char = '\x01';

/// Bytes over the full range, including NULs, control bytes, and
/// invalid UTF-8 fragments.
fn byte_soup() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..96)
}

/// Characters plausible in a `.ts` data line, so the series parser sees
/// near-miss inputs rather than pure noise.
fn series_soup() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> =
        "0123456789.,:?-+eE infNa\t".chars().collect();
    proptest::collection::vec(0usize..alphabet.len(), 0..64)
        .prop_map(move |idx| idx.into_iter().map(|i| alphabet[i]).collect())
}

/// A well-formed v2 predict request with an arbitrary small series.
fn valid_predict_v2() -> impl Strategy<Value = Request2> {
    let name: Vec<char> = "abcdefghijklmnopqrstuvwxyz_0123456789".chars().collect();
    let model = proptest::collection::vec(0usize..name.len(), 1..12)
        .prop_map(move |idx| idx.into_iter().map(|i| name[i]).collect::<String>());
    // Values come from raw u64 bit patterns so NaNs, infinities, and
    // denormals all flow through the binary framing.
    let series = (1usize..4, proptest::collection::vec(0u64..u64::MAX, 1..12)).prop_map(
        |(n_dims, bits)| {
            let mut vals: Vec<f64> = bits.into_iter().map(f64::from_bits).collect();
            let len = (vals.len() / n_dims).max(1);
            vals.resize(n_dims * len, 0.0);
            Mts::from_flat(n_dims, len, vals)
        },
    );
    (0u64..u64::MAX, model, series)
        .prop_map(|(id, model, series)| Request2::Predict { id, model, series })
}

/// A syntactically valid predict request with printable payloads.
fn valid_predict() -> impl Strategy<Value = (u64, String, String)> {
    let name: Vec<char> = "abcdefghijklmnopqrstuvwxyz_0123456789".chars().collect();
    let model = proptest::collection::vec(0usize..name.len(), 1..12)
        .prop_map(move |idx| idx.into_iter().map(|i| name[i]).collect::<String>());
    let series = proptest::collection::vec(-1000.0f64..1000.0, 1..16).prop_map(|vals| {
        vals.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",")
    });
    // Ids stay below 2^53: the protocol routes them through f64, which
    // is exact only up to that bound.
    (0u64..(1 << 53), model, series)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_request_never_panics_on_byte_soup(bytes in byte_soup()) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        match parse_request(line.trim()) {
            Ok(r) => {
                // Whatever parsed must carry a well-defined id.
                let _ = r.id();
            }
            Err((_id, msg)) => prop_assert!(!msg.is_empty()),
        }
    }

    #[test]
    fn parse_response_never_panics_on_byte_soup(bytes in byte_soup()) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_response(line.trim());
    }

    #[test]
    fn series_parsers_never_panic_on_near_miss_lines(s in series_soup()) {
        // decode_series is the serving entry; parse_series_line the
        // dataset-IO one. Same behaviour required of both: Ok with a
        // well-formed series, or Err — never a panic.
        if let Ok(m) = decode_series(&s) {
            prop_assert!(m.n_dims() >= 1);
            prop_assert!(!m.is_empty());
        }
        let _ = parse_series_line(&s);
    }

    #[test]
    fn valid_predicts_round_trip_exactly((id, model, series) in valid_predict()) {
        let line = predict_line(id, &model, &series);
        let parsed = parse_request(&line);
        prop_assert!(parsed.is_ok(), "{line}: {parsed:?}");
        if let Ok(Request::Predict { id: pid, model: pm, series: ps }) = parsed {
            prop_assert_eq!(pid, id, "id must echo exactly below 2^53");
            prop_assert_eq!(&pm, &model);
            let decoded = decode_series(&ps);
            prop_assert!(decoded.is_ok(), "series {} failed decode", ps);
        } else {
            prop_assert!(false, "parsed to a non-predict request");
        }
    }

    #[test]
    fn single_byte_corruption_is_never_a_silent_predict(
        (id, model, series) in valid_predict(),
        pos_word in 0u64..u64::MAX,
    ) {
        // The fault plan's corruption model: one byte overwritten with
        // 0x01. A corrupted request may still parse (e.g. mangling the
        // `id` key only loses the correlation id), but it must never
        // become a servable predict for a *different* model or series —
        // that would silently change a label. A changed model keeps the
        // control byte (→ unknown-model refusal); a changed series
        // keeps it too (→ decode refusal).
        let line = predict_line(id, &model, &series);
        let mut bytes = line.into_bytes();
        let pos = (pos_word as usize) % bytes.len();
        bytes[pos] = 0x01;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(Request::Predict { model: cm, series: cs, .. }) =
            parse_request(corrupted.trim())
        {
            prop_assert!(
                cm == model || cm.contains(CORRUPT_BYTE),
                "corruption at {} changed the model to a clean name {:?}",
                pos, cm
            );
            prop_assert!(
                cs == series || decode_series(&cs).is_err(),
                "corruption at {} changed the series to a decodable {:?}",
                pos, cs
            );
        }
    }

    #[test]
    fn v2_requests_round_trip_bit_exactly(req in valid_predict_v2()) {
        let mut buf = encode_request(&req);
        let raw = take_frame(&mut buf).unwrap().expect("complete frame");
        prop_assert!(buf.is_empty(), "one request is exactly one frame");
        let body = check_frame(&raw).expect("fresh frame passes its own checksum");
        let back = decode_request(body).expect("fresh frame decodes");
        // PartialEq on f64 misses NaN payloads and -0.0; compare bits.
        if let (
            Request2::Predict { id: ia, model: ma, series: sa },
            Request2::Predict { id: ib, model: mb, series: sb },
        ) = (&req, &back)
        {
            prop_assert_eq!(ia, ib);
            prop_assert_eq!(ma, mb);
            prop_assert_eq!(sa.n_dims(), sb.n_dims());
            prop_assert_eq!(sa.len(), sb.len());
            for (a, b) in sa.as_flat().iter().zip(sb.as_flat()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        } else {
            prop_assert!(false, "decoded to a non-predict request");
        }
        // The routing header agrees with the full decode.
        let routing = decode_routing(body).expect("routing header decodes");
        if let (Request2::Predict { id, model, .. }, proto2::Routing::Predict { id: rid, model: rm, .. }) =
            (&req, &routing)
        {
            prop_assert_eq!(id, rid);
            prop_assert_eq!(model, rm);
        }
    }

    #[test]
    fn v2_truncation_is_never_a_panic_or_a_decode(
        req in valid_predict_v2(),
        cut_word in 0u64..u64::MAX,
    ) {
        // Any strict prefix of a frame either waits for more bytes
        // (boundary intact) — it must never pop a frame.
        let full = encode_request(&req);
        let cut = (cut_word as usize) % full.len();
        let mut buf = full[..cut].to_vec();
        match take_frame(&mut buf) {
            Ok(None) => prop_assert_eq!(buf.len(), cut, "partial frame must not be consumed"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame at {} popped as complete", cut),
            // A cut inside the length prefix can read as an invalid
            // length; that is a clean connection-close error.
            Err(msg) => prop_assert!(!msg.is_empty()),
        }
    }

    #[test]
    fn v2_single_byte_corruption_is_never_a_silent_different_request(
        req in valid_predict_v2(),
        pos_word in 0u64..u64::MAX,
        xor in 1u8..=255,
    ) {
        // Flip one byte anywhere in the full frame (length prefix
        // included). Every outcome is acceptable except one: decoding
        // successfully to a request other than the original.
        let full = encode_request(&req);
        let pos = (pos_word as usize) % full.len();
        let mut corrupted = full.clone();
        corrupted[pos] ^= xor;
        let mut buf = corrupted;
        match take_frame(&mut buf) {
            Err(_) | Ok(None) => {} // bad or now-incomplete length prefix
            Ok(Some(raw)) => {
                if let Ok(body) = check_frame(&raw) {
                    // CRC-32 catches any single corrupted byte inside
                    // the frame, so a passing checksum means the length
                    // prefix was corrupted yet still framed a valid
                    // checksummed span — only possible if it re-framed
                    // the identical bytes.
                    let back = decode_request(body);
                    prop_assert!(
                        back.as_ref().ok() == Some(&req) || back.is_err(),
                        "corruption at {} decoded as a different request: {:?}",
                        pos, back
                    );
                }
            }
        }
    }

    #[test]
    fn v2_decoders_never_panic_on_byte_soup(bytes in byte_soup()) {
        // Byte soup straight into every v2 entry point: the negotiation
        // path guarantees arbitrary client bytes can reach each of
        // these, and none may panic.
        let mut buf = bytes.clone();
        if let Ok(Some(raw)) = take_frame(&mut buf) {
            if let Ok(body) = check_frame(&raw) {
                let _ = decode_request(body);
                let _ = decode_routing(body);
                let _ = proto2::decode_reply(body);
            }
        }
        let _ = check_frame(&bytes);
        let _ = decode_request(&bytes);
        let _ = decode_routing(&bytes);
        let _ = proto2::decode_reply(&bytes);
    }

    #[test]
    fn format_parse_series_round_trip(
        vals in proptest::collection::vec(-1e6f64..1e6, 2..40),
        n_dims in 1usize..4,
    ) {
        let len = vals.len() / n_dims;
        if len == 0 {
            return Ok(());
        }
        let m = tsda_core::Mts::from_flat(n_dims, len, vals[..n_dims * len].to_vec());
        let line = format_series_line(&m);
        let back = decode_series(&line);
        prop_assert!(back.is_ok(), "{line}");
        if let Ok(back) = back {
            prop_assert_eq!(back.n_dims(), n_dims);
            prop_assert_eq!(back.len(), len);
            for (a, b) in back.as_flat().iter().zip(m.as_flat()) {
                prop_assert!((a - b).abs() <= 1e-9_f64.max(b.abs() * 1e-12), "{} vs {}", a, b);
            }
        }
    }
}
