//! End-to-end smoke test: a real server on an ephemeral port, saved
//! models reloaded from disk, concurrent pipelining clients, and the
//! contract that served labels are bit-identical to offline
//! `Classifier::predict` on the same saved model.

use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use tsda_classify::persist::{load_model_bytes, SavedModel};
use tsda_classify::{Classifier, RidgeClassifier, Rocket, RocketConfig};
use tsda_core::rng::seeded;
use tsda_core::{Dataset, Label, Mts};
use tsda_datasets::ts_format::format_series_line;
use tsda_serve::batcher::BatchConfig;
use tsda_serve::proto2::{self, Request2};
use tsda_serve::protocol::{parse_response, Response};
use tsda_serve::registry::{ModelEntry, ModelRegistry};
use tsda_serve::server::{serve, ServerConfig};

fn toy_problem(seed: u64) -> (Dataset, Dataset) {
    let make = |split_seed: u64| {
        use rand::Rng;
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(split_seed);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.75 };
            for _ in 0..12 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                let dims = (0..2)
                    .map(|d| {
                        (0..24)
                            .map(|t| ((t as f64) * freq + phase + d as f64).sin())
                            .collect()
                    })
                    .collect();
                ds.push(Mts::from_dims(dims), c);
            }
        }
        ds
    };
    (make(seed), make(seed ^ 0xdead_beef))
}

fn flatten(ds: &Dataset) -> Vec<Vec<f64>> {
    ds.series().iter().map(|s| s.as_flat().to_vec()).collect()
}

fn request_line(id: u64, op: &str, extra: &[(&str, &str)]) -> String {
    let mut pairs = vec![
        ("id".to_string(), Value::Num(id as f64)),
        ("op".to_string(), Value::Str(op.to_string())),
    ];
    for (k, v) in extra {
        pairs.push((k.to_string(), Value::Str(v.to_string())));
    }
    serde_json::to_string(&Value::Object(pairs)).unwrap()
}

/// Send every request line first, then read every response: pipelining
/// lets the micro-batcher coalesce requests from one connection too.
fn pipeline(addr: &str, lines: &[String]) -> Vec<Response> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).unwrap() > 0, "server closed early");
        responses.push(parse_response(reply.trim_end()).expect("parse response"));
    }
    responses
}

/// Pipeline over protocol v2: send the preamble, then every frame,
/// then read one reply frame per request.
fn pipeline_v2(addr: &str, requests: &[Request2]) -> Vec<Response> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&proto2::PREAMBLE).unwrap();
    for req in requests {
        writer.write_all(&proto2::encode_request(req)).unwrap();
    }
    writer.flush().unwrap();
    let mut responses = Vec::with_capacity(requests.len());
    for _ in 0..requests.len() {
        let mut len_bytes = [0u8; 4];
        reader.read_exact(&mut len_bytes).expect("reply length");
        let len = u32::from_le_bytes(len_bytes) as usize;
        assert!((5..=proto2::MAX_FRAME).contains(&len), "reply frame length {len}");
        let mut raw = vec![0u8; len];
        reader.read_exact(&mut raw).expect("reply frame");
        let body = proto2::check_frame(&raw).expect("reply frame intact");
        responses.push(proto2::decode_reply(body).expect("decode reply"));
    }
    responses
}

/// Build a registry holding a rocket and a ridge model — both put
/// through a save/load cycle first, so the server demonstrably runs on
/// reloaded bytes, not the originally fitted structs.
fn build_registry(train: &Dataset) -> (ModelRegistry, Vec<Label>, Vec<Label>, Dataset) {
    let (_, test) = toy_problem(21);

    let mut rocket = Rocket::new(RocketConfig { n_kernels: 60, ..RocketConfig::default() });
    rocket.fit(train, None, &mut seeded(5));
    let rocket_offline = rocket.predict(&test);
    let bytes = SavedModel::Rocket(rocket).save_bytes().unwrap();
    let rocket_loaded = load_model_bytes(&bytes).unwrap();

    let mut ridge = RidgeClassifier::default();
    ridge.fit_features(&flatten(train), train.labels(), train.n_classes());
    let ridge_offline = ridge.try_predict_features(&flatten(&test)).unwrap();
    let bytes = SavedModel::Ridge(ridge).save_bytes().unwrap();
    let ridge_loaded = load_model_bytes(&bytes).unwrap();

    let shape = (test.series()[0].n_dims(), test.series()[0].len());
    let mut registry = ModelRegistry::new();
    registry.insert(ModelEntry::from_saved("rocket", rocket_loaded, None).unwrap());
    registry.insert(ModelEntry::from_saved("ridge", ridge_loaded, Some(shape)).unwrap());
    (registry, rocket_offline, ridge_offline, test)
}

#[test]
fn served_predictions_match_offline_bit_for_bit() {
    let (train, _) = toy_problem(21);
    let (registry, rocket_offline, ridge_offline, test) = build_registry(&train);

    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // Generous window so concurrent clients reliably coalesce.
            batch: BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(30),
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Three client threads per model, each pipelining the whole test set.
    let mut workers = Vec::new();
    for (model, expected) in
        [("rocket", rocket_offline.clone()), ("ridge", ridge_offline.clone())]
    {
        for worker in 0..3 {
            let addr = addr.clone();
            let test = test.clone();
            let expected = expected.clone();
            let model = model.to_string();
            workers.push(std::thread::spawn(move || -> usize {
                let lines: Vec<String> = test
                    .series()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        request_line(
                            (worker * 1000 + i) as u64,
                            "predict",
                            &[("model", model.as_str()), ("series", &format_series_line(s))],
                        )
                    })
                    .collect();
                let responses = pipeline(&addr, &lines);
                let mut max_batch = 0;
                for (i, r) in responses.iter().enumerate() {
                    assert!(r.ok, "{model} request {i} failed: {:?}", r.error);
                    assert_eq!(r.id, (worker * 1000 + i) as u64, "responses out of order");
                    assert_eq!(
                        r.label.unwrap(),
                        expected[i],
                        "{model} series {i}: served label diverged from offline predict"
                    );
                    max_batch = max_batch.max(r.batch.unwrap_or(1));
                }
                max_batch
            }));
        }
    }
    let max_batch = workers.into_iter().map(|w| w.join().unwrap()).max().unwrap();
    assert!(max_batch > 1, "no coalescing observed (max batch {max_batch})");

    // The stats endpoint agrees that batching happened.
    let responses = pipeline(&addr, &[request_line(1, "stats", &[])]);
    let stats = responses[0].result.as_ref().expect("stats result");
    let mean_batch = stats.get("mean_batch").and_then(Value::as_f64).unwrap();
    assert!(mean_batch > 1.0, "mean batch {mean_batch}");
    let requests = stats.get("requests").and_then(Value::as_f64).unwrap() as usize;
    assert_eq!(requests, 6 * test.series().len());

    handle.shutdown();
}

#[test]
fn v2_served_predictions_match_offline_and_quantiles_resolve() {
    let (train, _) = toy_problem(21);
    let (registry, rocket_offline, ridge_offline, test) = build_registry(&train);

    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // max_batch matches the 3 concurrent workers per model
            // (each connection is served request-by-request), so full
            // batches flush the moment all three requests are pending,
            // while a lone request must wait out the long timer — a
            // controlled bimodal latency distribution for the quantile
            // check below.
            batch: BatchConfig {
                max_batch: 3,
                max_wait: Duration::from_millis(150),
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Three pipelining v2 clients per model, same contract as the
    // NDJSON smoke: served labels must equal offline predict bit for
    // bit, with batching observed.
    let mut workers = Vec::new();
    for (model, expected) in
        [("rocket", rocket_offline.clone()), ("ridge", ridge_offline.clone())]
    {
        for worker in 0..3usize {
            let addr = addr.clone();
            let test = test.clone();
            let expected = expected.clone();
            let model = model.to_string();
            workers.push(std::thread::spawn(move || -> usize {
                let requests: Vec<Request2> = test
                    .series()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| Request2::Predict {
                        id: (worker * 1000 + i) as u64,
                        model: model.clone(),
                        series: s.clone(),
                    })
                    .collect();
                let responses = pipeline_v2(&addr, &requests);
                let mut max_batch = 0;
                for (i, r) in responses.iter().enumerate() {
                    assert!(r.ok, "{model} v2 request {i} failed: {:?}", r.error);
                    assert_eq!(r.id, (worker * 1000 + i) as u64, "responses out of order");
                    assert_eq!(
                        r.label.unwrap(),
                        expected[i],
                        "{model} series {i}: v2 served label diverged from offline predict"
                    );
                    max_batch = max_batch.max(r.batch.unwrap_or(1));
                }
                max_batch
            }));
        }
    }
    let max_batch = workers.into_iter().map(|w| w.join().unwrap()).max().unwrap();
    assert!(max_batch > 1, "no coalescing observed over v2 (max batch {max_batch})");

    // Stats over v2, and both protocols on one port: an NDJSON probe
    // still works against the same server.
    let responses = pipeline_v2(&addr, &[Request2::Stats { id: 9 }]);
    let stats = responses[0].result.as_ref().expect("stats result");
    let requests = stats.get("requests").and_then(Value::as_f64).unwrap() as usize;
    assert_eq!(requests, 6 * test.series().len());

    // Four lone requests, each on a fresh connection: a batch of one
    // can only flush on the 150ms timer, so these are pinned to the
    // slow mode of the distribution while the pipelined bursts above
    // flushed when full (fast mode).
    for rep in 0..4u64 {
        let responses = pipeline_v2(
            &addr,
            &[Request2::Predict {
                id: 500 + rep,
                model: "rocket".into(),
                series: test.series()[0].clone(),
            }],
        );
        assert!(responses[0].ok);
    }
    let responses = pipeline_v2(&addr, &[Request2::Stats { id: 10 }]);
    let stats = responses[0].result.as_ref().expect("stats result");
    let p50 = stats.get("request_p50_us").and_then(Value::as_f64).unwrap();
    let p99 = stats.get("request_p99_us").and_then(Value::as_f64).unwrap();
    // The old power-of-two histogram quantized every latency in
    // 4.1–8.2ms to the same 8192us bucket, shipping p50 == p99; the
    // log-linear layout must resolve the fast flushes from the 150ms
    // timer waits.
    assert!(
        p50 < p99,
        "latency histogram failed to resolve quantiles: p50 {p50}us == p99 {p99}us"
    );
    let ndjson = pipeline(&addr, &[request_line(1, "ping", &[])]);
    assert!(ndjson[0].ok, "NDJSON ping after v2 traffic");

    handle.shutdown();
}

#[test]
fn protocol_errors_are_answered_not_dropped() {
    let (train, _) = toy_problem(33);
    let (registry, _, _, test) = build_registry(&train);
    let handle = serve(
        registry,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    let good = format_series_line(&test.series()[0]);
    let lines = vec![
        request_line(1, "ping", &[]),
        request_line(2, "list", &[]),
        "not json at all".to_string(),
        request_line(4, "predict", &[("model", "nope"), ("series", good.as_str())]),
        request_line(5, "predict", &[("model", "rocket"), ("series", "1,2,3")]),
        request_line(6, "predict", &[("model", "rocket"), ("series", "zz,qq")]),
        request_line(7, "predict", &[("model", "rocket"), ("series", good.as_str())]),
    ];
    let responses = pipeline(&addr, &lines);
    assert!(responses[0].ok, "ping");
    assert!(responses[1].ok, "list");
    assert!(!responses[2].ok, "bad json must produce an error response");
    assert!(!responses[3].ok && responses[3].error.as_ref().unwrap().contains("unknown model"));
    assert!(!responses[4].ok, "shape mismatch must be rejected");
    assert!(!responses[5].ok, "unparseable series must be rejected");
    assert!(responses[6].ok, "well-formed request after errors still served");

    // The model listing carries the input contract clients need.
    let listing = responses[1].result.as_ref().unwrap();
    let as_text = serde_json::to_string(listing).unwrap();
    assert!(as_text.contains("\"rocket\"") && as_text.contains("\"ridge\""), "{as_text}");

    handle.shutdown();
}

#[test]
fn shutdown_is_graceful_under_traffic() {
    let (train, _) = toy_problem(44);
    let (registry, _, _, test) = build_registry(&train);
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    // A round of traffic, then shutdown must join within the test
    // timeout and leave the socket refusing new work.
    let lines: Vec<String> = test
        .series()
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, s)| {
            request_line(
                i as u64,
                "predict",
                &[("model", "rocket"), ("series", &format_series_line(s))],
            )
        })
        .collect();
    let responses = pipeline(&addr, &lines);
    assert!(responses.iter().all(|r| r.ok));

    handle.shutdown();
    // After shutdown the listener is gone: connecting (or speaking on a
    // fresh connection) must fail rather than hang.
    match TcpStream::connect(&addr) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("set timeout");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let _ = writer.write_all(b"{\"id\":1,\"op\":\"ping\"}\n");
            let mut reply = String::new();
            let n = reader.read_line(&mut reply).unwrap_or(0);
            assert_eq!(n, 0, "server answered after shutdown: {reply}");
        }
    }
}
