//! End-to-end battery for the served `augment` endpoint: served samples
//! must be bit-identical to offline [`AugPipeline`] execution over both
//! protocols, corrupted v2 frames must never come back as silently
//! different samples (the CRC catches them), faults must not change a
//! single byte, and killing a replica mid-load through the router must
//! lose zero augment requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsda_augment::declarative::{AugPipeline, PipelineConfig};
use tsda_core::Mts;
use tsda_datasets::ts_format::format_series_line;
use tsda_serve::batcher::BatchConfig;
use tsda_serve::client::{augment_line, Proto, RetryPolicy, RetryingClient};
use tsda_serve::faults::FaultPlan;
use tsda_serve::pipelines::PipelineRegistry;
use tsda_serve::proto2::{self, Request2};
use tsda_serve::protocol::{parse_response, Response};
use tsda_serve::registry::ModelRegistry;
use tsda_serve::router::{ReplicaSpec, RoutePolicy, Router, RouterConfig};
use tsda_serve::server::{serve, ServerConfig, ServerHandle};

const SEED: u64 = 42;

/// Nonzero chaos seed: `TSDA_FAULT_SEED` when set, 7 otherwise.
fn fault_seed() -> u64 {
    std::env::var("TSDA_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s != 0)
        .unwrap_or(7)
}

/// The committed fleet config — the exact TOML CI serves.
fn pipelines_toml() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../pipelines.toml");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Offline ground truth: the same TOML built into executable pipelines.
fn offline_pipelines() -> Vec<AugPipeline> {
    let cfg = PipelineConfig::parse(&pipelines_toml()).expect("committed config parses");
    AugPipeline::from_config(&cfg).expect("committed config builds")
}

/// Deterministic synthetic inputs (closed-form, no RNG) with mixed
/// dims/lengths so shape-dependent techniques are exercised.
fn fixture_series(n: usize) -> Vec<Mts> {
    (0..n)
        .map(|i| {
            let n_dims = 1 + i % 3;
            let len = 24 + 8 * (i % 2);
            let dims: Vec<Vec<f64>> = (0..n_dims)
                .map(|d| {
                    (0..len)
                        .map(|t| {
                            let x = t as f64 * 0.31 + d as f64;
                            (x + i as f64 * 0.17).sin() * (1.5 + d as f64) + x * 0.04
                        })
                        .collect()
                })
                .collect();
            Mts::from_dims(dims)
        })
        .collect()
}

/// A server with no models but the committed pipelines loaded — the
/// augment endpoint needs nothing else.
fn augment_server(faults: Option<Arc<FaultPlan>>) -> ServerHandle {
    let registry = PipelineRegistry::from_toml(&pipelines_toml()).expect("registry builds");
    serve(
        ModelRegistry::new(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(10),
                ..BatchConfig::default()
            },
            faults,
            pipelines: Some(Arc::new(registry)),
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// Send every NDJSON line, then read every response (pipelining).
fn pipeline(addr: &str, lines: &[String]) -> Vec<Response> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        let mut reply = String::new();
        assert!(reader.read_line(&mut reply).unwrap() > 0, "server closed early");
        responses.push(parse_response(reply.trim_end()).expect("parse response"));
    }
    responses
}

/// Pipeline over protocol v2: preamble, every frame, then the replies.
fn pipeline_v2(addr: &str, requests: &[Request2]) -> Vec<Response> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&proto2::PREAMBLE).unwrap();
    for req in requests {
        writer.write_all(&proto2::encode_request(req)).unwrap();
    }
    writer.flush().unwrap();
    read_replies(&mut reader, requests.len())
}

fn read_replies(reader: &mut impl Read, n: usize) -> Vec<Response> {
    let mut responses = Vec::with_capacity(n);
    for _ in 0..n {
        let mut len_bytes = [0u8; 4];
        reader.read_exact(&mut len_bytes).expect("reply length");
        let len = u32::from_le_bytes(len_bytes) as usize;
        assert!((5..=proto2::MAX_FRAME).contains(&len), "reply frame length {len}");
        let mut raw = vec![0u8; len];
        reader.read_exact(&mut raw).expect("reply frame");
        let body = proto2::check_frame(&raw).expect("reply frame intact");
        responses.push(proto2::decode_reply(body).expect("decode reply"));
    }
    responses
}

/// Served augment == offline `AugPipeline`, bit for bit, over both
/// protocols, for every committed pipeline — and the aug lane batches.
#[test]
fn served_augment_matches_offline_on_both_protocols() {
    let handle = augment_server(None);
    let addr = handle.addr().to_string();
    let series = fixture_series(10);

    for pipe in offline_pipelines() {
        let name = pipe.name().to_string();
        let expected: Vec<Mts> = series
            .iter()
            .enumerate()
            .map(|(i, s)| pipe.apply_one(s, SEED, i as u64))
            .collect();

        // NDJSON: one pipelined burst per pipeline.
        let lines: Vec<String> = series
            .iter()
            .enumerate()
            .map(|(i, s)| {
                augment_line(i as u64, &name, SEED, i as u64, &format_series_line(s))
            })
            .collect();
        for (i, r) in pipeline(&addr, &lines).iter().enumerate() {
            assert!(r.ok, "{name} ndjson request {i} failed: {:?}", r.error);
            assert_eq!(r.id, i as u64, "responses out of order");
            assert_eq!(
                r.series.as_ref(),
                Some(&expected[i]),
                "{name} sample {i}: ndjson served series diverged from offline"
            );
        }

        // Protocol v2: same contract, binary framing.
        let requests: Vec<Request2> = series
            .iter()
            .enumerate()
            .map(|(i, s)| Request2::Augment {
                id: 100 + i as u64,
                pipeline: name.clone(),
                seed: SEED,
                index: i as u64,
                series: s.clone(),
            })
            .collect();
        for (i, r) in pipeline_v2(&addr, &requests).iter().enumerate() {
            assert!(r.ok, "{name} v2 request {i} failed: {:?}", r.error);
            assert_eq!(r.id, 100 + i as u64, "responses out of order");
            assert_eq!(
                r.series.as_ref(),
                Some(&expected[i]),
                "{name} sample {i}: v2 served series diverged from offline"
            );
        }
    }

    // The aug lane coalesces: requests within one connection are served
    // in order, so batching is only observable across concurrent
    // connections — three clients bursting the same pipeline must see a
    // batch bigger than one, and stay bit-identical to offline.
    let pipe = Arc::new(offline_pipelines().remove(0));
    let series = Arc::new(series);
    let mut workers = Vec::new();
    for worker in 0..3usize {
        let addr = addr.clone();
        let pipe = Arc::clone(&pipe);
        let series = Arc::clone(&series);
        workers.push(std::thread::spawn(move || -> usize {
            let lines: Vec<String> = series
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    augment_line(
                        (worker * 1000 + i) as u64,
                        pipe.name(),
                        SEED,
                        i as u64,
                        &format_series_line(s),
                    )
                })
                .collect();
            let mut max_batch = 0;
            for (i, r) in pipeline(&addr, &lines).iter().enumerate() {
                assert!(r.ok, "worker {worker} request {i} failed: {:?}", r.error);
                assert_eq!(
                    r.series.as_ref(),
                    Some(&pipe.apply_one(&series[i], SEED, i as u64)),
                    "worker {worker} sample {i}: concurrent augment diverged from offline"
                );
                max_batch = max_batch.max(r.batch.unwrap_or(1));
            }
            max_batch
        }));
    }
    let max_batch = workers.into_iter().map(|w| w.join().unwrap()).max().unwrap();
    assert!(max_batch > 1, "aug lane never coalesced (max batch {max_batch})");

    // Unknown pipelines are typed refusals on both protocols.
    let bad = pipeline(
        &addr,
        &[augment_line(7, "nope", SEED, 0, &format_series_line(&series[0]))],
    );
    assert!(!bad[0].ok && bad[0].error.as_ref().unwrap().contains("unknown pipeline"));
    let bad = pipeline_v2(
        &addr,
        &[Request2::Augment {
            id: 8,
            pipeline: "nope".into(),
            seed: SEED,
            index: 0,
            series: series[0].clone(),
        }],
    );
    assert!(!bad[0].ok && bad[0].error.as_ref().unwrap().contains("unknown pipeline"));

    handle.shutdown();
}

/// CRC contract: flipping any single byte of an augment frame's
/// CRC-covered region (body + checksum — everything after the length
/// prefix) is always answered with an error, never a silently different
/// sample, and the stream stays usable afterwards.
#[test]
fn corrupted_augment_frames_are_rejected_never_rewritten() {
    let handle = augment_server(None);
    let addr = handle.addr().to_string();
    let series = fixture_series(1).remove(0);
    let pipe = offline_pipelines().remove(0);
    let expected = pipe.apply_one(&series, SEED, 3);

    let good = proto2::encode_request(&Request2::Augment {
        id: 1,
        pipeline: pipe.name().to_string(),
        seed: SEED,
        index: 3,
        series: series.clone(),
    });

    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&proto2::PREAMBLE).unwrap();

    // Every byte position after the length prefix, every one a fresh
    // single-byte corruption on the same live connection.
    let positions: Vec<usize> = (4..good.len()).collect();
    for &pos in &positions {
        let mut bad = good.clone();
        bad[pos] ^= 0x41;
        writer.write_all(&bad).unwrap();
    }
    // Then one intact frame: the stream must still be in sync.
    writer.write_all(&good).unwrap();
    writer.flush().unwrap();

    let replies = read_replies(&mut reader, positions.len() + 1);
    for (k, r) in replies[..positions.len()].iter().enumerate() {
        assert!(
            !r.ok,
            "corrupting byte {} was served as ok — CRC failed to catch it",
            positions[k]
        );
        assert!(r.series.is_none(), "corrupted frame returned a series");
    }
    let last = &replies[positions.len()];
    assert!(last.ok, "intact frame after corruption storm failed: {:?}", last.error);
    assert_eq!(
        last.series.as_ref(),
        Some(&expected),
        "series after corruption storm diverged from offline"
    );

    handle.shutdown();
}

/// Chaos: under a nonzero fault seed (drops, torn writes, corruption,
/// stalls, sheds), retrying clients on both protocols lose zero augment
/// requests and every served sample stays bit-identical to offline.
#[test]
fn augment_under_faults_stays_bit_identical_with_zero_lost_requests() {
    let seed = fault_seed();
    let plan = Arc::new(FaultPlan::seeded(seed));
    let handle = augment_server(Some(Arc::clone(&plan)));
    let addr = handle.addr().to_string();
    let series = Arc::new(fixture_series(8));
    let pipes = Arc::new(offline_pipelines());
    let names: Vec<String> = pipes.iter().map(|p| p.name().to_string()).collect();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 40;
    let policy = RetryPolicy { max_attempts: 16, jitter_seed: seed, ..RetryPolicy::default() };
    let mut workers = Vec::new();
    for worker in 0..CLIENTS {
        let addr = addr.clone();
        let series = Arc::clone(&series);
        let pipes = Arc::clone(&pipes);
        let names = names.clone();
        let proto = if worker % 2 == 0 { Proto::V2 } else { Proto::Ndjson };
        workers.push(std::thread::spawn(move || -> u64 {
            let mut client =
                RetryingClient::new_proto(addr, policy, &format!("aug-chaos-{worker}"), proto);
            for i in 0..REQUESTS {
                let g = worker * REQUESTS + i;
                let p = g % pipes.len();
                let s = &series[g % series.len()];
                let index = g as u64;
                let reply = client
                    .augment_mts(g as u64, &names[p], SEED, index, s)
                    .unwrap_or_else(|e| panic!("augment request {g} lost: {e}"));
                assert!(reply.ok, "request {g} refused after retries: {:?}", reply.error);
                assert_eq!(
                    reply.series.as_ref(),
                    Some(&pipes[p].apply_one(s, SEED, index)),
                    "request {g} ({}, index {index}): faults changed the served sample",
                    names[p]
                );
            }
            client.counters().retries
        }));
    }
    let retries: u64 = workers.into_iter().map(|w| w.join().expect("chaos client")).sum();

    assert!(plan.injected_total() > 0, "no faults injected: {}", plan.summary());
    // With drops and corruption in the schedule something must have
    // needed a second attempt; zero retries means the plan was a no-op.
    assert!(retries > 0, "faults fired but no augment client ever retried");
    handle.shutdown();
}

/// Router chaos: two replicas serving the same pipelines.toml, a kill
/// mid-load, and zero lost or rewritten augment requests — relayed
/// frames are forwarded verbatim, so bit-identity survives failover.
#[test]
fn router_kill_replica_mid_augment_load_loses_nothing() {
    let replica_a = augment_server(None);
    let replica_b = augment_server(None);
    let external = |addr: String| ReplicaSpec::External { addr, models: Vec::new() };
    let handle = Router::start(RouterConfig {
        replicas: vec![
            external(replica_a.addr().to_string()),
            external(replica_b.addr().to_string()),
        ],
        policy: RoutePolicy::Hash,
        ..RouterConfig::default()
    })
    .expect("router starts");
    let addr = handle.addr().to_string();

    let series = Arc::new(fixture_series(8));
    let pipes = Arc::new(offline_pipelines());
    let names: Vec<String> = pipes.iter().map(|p| p.name().to_string()).collect();

    const WORKERS: usize = 3;
    const REQUESTS: usize = 40;
    let completed = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::new();
    for worker in 0..WORKERS {
        let addr = addr.clone();
        let series = Arc::clone(&series);
        let pipes = Arc::clone(&pipes);
        let names = names.clone();
        let completed = Arc::clone(&completed);
        let proto = if worker % 2 == 0 { Proto::V2 } else { Proto::Ndjson };
        workers.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new_proto(
                addr,
                RetryPolicy {
                    max_attempts: 16,
                    timeout: Duration::from_secs(10),
                    jitter_seed: worker as u64,
                    ..RetryPolicy::default()
                },
                &format!("aug-kill-{worker}"),
                proto,
            );
            for i in 0..REQUESTS {
                let g = worker * REQUESTS + i;
                let p = g % pipes.len();
                let s = &series[g % series.len()];
                let index = g as u64;
                let reply = client
                    .augment_mts(g as u64, &names[p], SEED, index, s)
                    .expect("augment request must survive the replica kill");
                assert!(reply.ok, "worker {worker} request {i} failed: {:?}", reply.error);
                assert_eq!(
                    reply.series.as_ref(),
                    Some(&pipes[p].apply_one(s, SEED, index)),
                    "worker {worker} request {i}: failover changed the served sample"
                );
                completed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        }));
    }

    // Kill replica A once the load is demonstrably in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.load(Ordering::Relaxed) < 10 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(completed.load(Ordering::Relaxed) >= 10, "load never got going");
    replica_a.shutdown();

    for w in workers {
        w.join().expect("no worker may lose an augment request");
    }
    assert_eq!(completed.load(Ordering::Relaxed), WORKERS * REQUESTS);

    handle.shutdown();
    replica_b.shutdown();
}
