//! Chaos suite: the full serving stack under deterministic fault
//! injection, plus shutdown-drain and readiness-deadline contracts.
//!
//! The fault seed defaults to 7 and can be overridden with
//! `TSDA_FAULT_SEED` (any nonzero value) to sweep other schedules;
//! every assertion here must hold for *any* seed, because the faults
//! only perturb transport and scheduling — never predictions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsda_classify::persist::{load_model_bytes, SavedModel};
use tsda_classify::{Classifier, Rocket, RocketConfig};
use tsda_core::rng::seeded;
use tsda_core::{Dataset, Label, Mts};
use tsda_datasets::ts_format::format_series_line;
use tsda_serve::batcher::BatchConfig;
use tsda_serve::client::{predict_line, wait_ready, RetryPolicy, RetryingClient};
use tsda_serve::faults::FaultPlan;
use tsda_serve::protocol::parse_response;
use tsda_serve::registry::{ModelEntry, ModelRegistry};
use tsda_serve::server::{serve, ServerConfig, ServerHandle};

/// Nonzero chaos seed: `TSDA_FAULT_SEED` when set, 7 otherwise.
fn fault_seed() -> u64 {
    std::env::var("TSDA_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s != 0)
        .unwrap_or(7)
}

fn toy_problem(seed: u64) -> (Dataset, Dataset) {
    let make = |split_seed: u64| {
        use rand::Rng;
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(split_seed);
        for c in 0..2usize {
            let freq = if c == 0 { 0.25 } else { 0.75 };
            for _ in 0..12 {
                let phase: f64 = rng.gen_range(0.0..1.0);
                let dims = (0..2)
                    .map(|d| {
                        (0..24)
                            .map(|t| ((t as f64) * freq + phase + d as f64).sin())
                            .collect()
                    })
                    .collect();
                ds.push(Mts::from_dims(dims), c);
            }
        }
        ds
    };
    (make(seed), make(seed ^ 0xdead_beef))
}

/// Rocket through a save/load cycle + its offline predictions on the
/// test split — the ground truth served labels must match bit-for-bit.
fn build_registry(seed: u64) -> (ModelRegistry, Vec<Label>, Dataset) {
    let (train, test) = toy_problem(seed);
    let mut rocket = Rocket::new(RocketConfig { n_kernels: 60, ..RocketConfig::default() });
    rocket.fit(&train, None, &mut seeded(5));
    let offline = rocket.predict(&test);
    let bytes = SavedModel::Rocket(rocket).save_bytes().unwrap();
    let loaded = load_model_bytes(&bytes).unwrap();
    let mut registry = ModelRegistry::new();
    registry.insert(ModelEntry::from_saved("rocket", loaded, None).unwrap());
    (registry, offline, test)
}

fn chaos_server(plan: Arc<FaultPlan>) -> (ServerHandle, Vec<Label>, Dataset) {
    let (registry, offline, test) = build_registry(21);
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // Small batches so the worker-stall site sees many events.
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
            faults: Some(plan),
            admission: None,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    (handle, offline, test)
}

/// The tentpole assertion: under a nonzero fault seed, retrying clients
/// lose zero requests and every served label is bit-identical to
/// offline `Classifier::predict` — drops, torn writes, corrupted
/// requests, stalls, and sheds included — and every fault kind actually
/// fired.
#[test]
fn chaos_labels_match_offline_with_zero_lost_requests() {
    let seed = fault_seed();
    let plan = Arc::new(FaultPlan::seeded(seed));
    let (handle, offline, test) = chaos_server(Arc::clone(&plan));
    let addr = handle.addr().to_string();

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 4;
    let policy = RetryPolicy {
        max_attempts: 16,
        jitter_seed: seed,
        ..RetryPolicy::default()
    };
    let mut workers = Vec::new();
    for worker in 0..CLIENTS {
        let addr = addr.clone();
        let test = test.clone();
        let offline = offline.clone();
        workers.push(std::thread::spawn(move || {
            let mut client =
                RetryingClient::new(addr, policy, &format!("chaos-{worker}"));
            let mut sent = 0u64;
            for round in 0..ROUNDS {
                for (i, s) in test.series().iter().enumerate() {
                    let id = (worker * 100_000 + round * 1000 + i) as u64;
                    let line = format_series_line(s);
                    let reply = client
                        .predict(id, "rocket", &line)
                        .unwrap_or_else(|e| panic!("request {id} lost: {e}"));
                    assert!(
                        reply.ok,
                        "request {id} still refused after retries: {:?}",
                        reply.error
                    );
                    assert_eq!(
                        reply.label,
                        Some(offline[i]),
                        "series {i}: served label diverged from offline predict under faults"
                    );
                    sent += 1;
                }
            }
            (sent, client.counters())
        }));
    }

    let mut total = 0u64;
    let mut retries = 0u64;
    for w in workers {
        let (sent, counters) = w.join().expect("chaos client panicked");
        total += sent;
        retries += counters.retries;
    }
    assert_eq!(total, (CLIENTS * ROUNDS * test.series().len()) as u64);

    // The suite only proves something if faults actually happened.
    assert!(plan.injected_total() > 0, "no faults injected: {}", plan.summary());
    assert!(
        plan.exercised_all(),
        "some fault kinds never fired (add rounds or adjust rates): {}",
        plan.summary()
    );
    // With drops + corruption in the schedule, at least one retry must
    // have been needed; zero retries would mean the plan was a no-op.
    assert!(retries > 0, "faults fired but no client ever retried");

    let snap = handle.stats().snapshot();
    assert!(snap.shed > 0, "shed path never exercised: {}", plan.summary());
    handle.shutdown();
}

/// Shutdown under load drains: every request the server *accepted*
/// (read off a socket) is answered before its connection closes.
#[test]
fn shutdown_under_load_answers_every_accepted_request() {
    let (registry, offline, test) = build_registry(33);
    let handle = serve(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            // Slow flushes so a pipelined burst is still queued when
            // shutdown lands.
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(20),
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    const BURST: usize = 40;
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for i in 0..BURST {
        let s = &test.series()[i % test.series().len()];
        let line = predict_line(i as u64 + 1, "rocket", &format_series_line(s));
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    // Let the burst reach the server's kernel buffer, then pull the rug.
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();

    // Every accepted request must have been answered (drain), in order,
    // with the right labels; then EOF.
    let mut answered = 0usize;
    loop {
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).expect("read response");
        if n == 0 {
            break;
        }
        let r = parse_response(reply.trim_end()).expect("parse response");
        assert!(r.ok, "drained request answered with error: {:?}", r.error);
        assert_eq!(r.id, answered as u64 + 1, "responses out of order during drain");
        let i = answered % test.series().len();
        assert_eq!(r.label, Some(offline[i]), "drained label diverged");
        answered += 1;
    }
    assert_eq!(answered, BURST, "shutdown lost {} accepted requests", BURST - answered);
}

/// The readiness probe: expires on schedule against a dead address and
/// passes promptly against a live server.
#[test]
fn wait_ready_deadline_expires_and_liveness_passes() {
    // Dead address: bind-then-drop a listener so connects fail fast.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        drop(l);
        addr
    };
    let t0 = Instant::now();
    let err = wait_ready(&dead, 1).unwrap_err();
    assert!(err.contains("not ready after 1s"), "{err}");
    let waited = t0.elapsed();
    assert!(waited >= Duration::from_secs(1), "expired early: {waited:?}");
    assert!(waited < Duration::from_secs(8), "deadline overshot: {waited:?}");

    // Live server (fault-free): ready immediately, even with budget 0.
    let (registry, _, _) = build_registry(44);
    let handle = serve(
        registry,
        ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() },
    )
    .expect("server starts");
    wait_ready(&handle.addr().to_string(), 0).expect("live server must probe ready");
    handle.shutdown();
}
