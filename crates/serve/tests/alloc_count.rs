//! Allocation-count harness for the batcher's zero-allocation steady
//! state — the runtime check behind the `tsda_analyze` R3v2/A1 static
//! rules. A counting `#[global_allocator]` wraps the system allocator;
//! after a warm-up pass, a full submit → coalesce → predict → reply →
//! wait round-trip must perform **zero** heap allocations anywhere in
//! the process (connection side, ring, ticket pool, worker scratch,
//! stub predict).
//!
//! Everything lives in one `#[test]` on purpose: the counter is
//! process-global, and sibling tests in the same binary would run on
//! parallel threads and pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tsda_core::Mts;
use tsda_serve::batcher::{BatchConfig, Batcher};
use tsda_serve::{ModelEntry, ModelRegistry, PipelineRegistry, ServerStats};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only added
// behaviour is a relaxed counter bump, which cannot violate any
// GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to System.alloc with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to System.realloc with the caller's pointer,
    // layout, and size, all forwarded untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place is still an allocator round-trip the hot
        // path promised not to make.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to System.dealloc with the caller's pointer
    // and layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Frees are not counted: dropping request-owned data is fine;
        // the discipline is about acquiring memory per request.
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_batcher_answers_requests_without_allocating() {
    let mut registry = ModelRegistry::new();
    registry.insert(ModelEntry::stub("stub", 1, 1, 8));
    let stats = Arc::new(ServerStats::new());
    let batcher = Batcher::start(
        Arc::new(registry),
        Arc::new(PipelineRegistry::new()),
        Arc::clone(&stats),
        BatchConfig { max_batch: 4, max_wait: Duration::from_millis(1), queue_cap: 64 },
        None,
    )
    .expect("batch worker starts");

    let template = Mts::from_dims(vec![(0..8).map(|t| t as f64).collect()]);

    // Warm-up: fault in every lazy one-time allocation — worker
    // scratch growth, thread-local init, lazy locale/libc state behind
    // the first condvar timeouts.
    for _ in 0..32 {
        let reply = batcher.submit("stub", template.clone()).expect("queue open").recv();
        assert_eq!(reply.result, Ok(1));
    }

    // The measured requests' series are built (and counted) out here:
    // the request payload is the client's allocation, not the
    // server's.
    let payloads: Vec<Mts> = (0..64).map(|_| template.clone()).collect();

    let before = ALLOCS.load(Ordering::SeqCst);
    for series in payloads {
        let reply = batcher.submit("stub", series).expect("queue open").recv();
        assert_eq!(reply.result, Ok(1));
    }
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        during, 0,
        "steady-state submit→wait round-trips must not allocate ({during} allocations leaked \
         into the measurement window)"
    );

    // The batcher's own evidence agrees: the warm ticket pool covered
    // every in-flight reply.
    let rows = batcher.queue_stats();
    let row = match &rows {
        serde::Value::Array(rows) => rows[0].clone(),
        other => panic!("queue_stats should be an array, got {other:?}"),
    };
    assert_eq!(row.get("ticket_allocs").and_then(serde::Value::as_f64), Some(0.0));
    assert_eq!(row.get("shed").and_then(serde::Value::as_f64), Some(0.0));
    batcher.shutdown();
}
