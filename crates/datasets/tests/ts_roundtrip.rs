//! `.ts` archive IO round trip: write → parse must reproduce the
//! dataset exactly, including NaN padding, and the single-line
//! series codec used on the serving wire must invert itself.

use proptest::prelude::*;
use tsda_core::{Dataset, Mts};
use tsda_datasets::registry::{DatasetId, ALL_DATASETS};
use tsda_datasets::synth::{generate, GenOptions};
use tsda_datasets::{format_series_line, parse_series_line, parse_ts, write_ts};

fn assert_datasets_equal(a: &Dataset, b: &Dataset) {
    assert_eq!(a.n_classes(), b.n_classes());
    assert_eq!(a.labels(), b.labels());
    assert_eq!(a.series().len(), b.series().len());
    for (x, y) in a.series().iter().zip(b.series()) {
        assert_eq!(x.n_dims(), y.n_dims());
        assert_eq!(x.len(), y.len());
        for (u, v) in x.as_flat().iter().zip(y.as_flat()) {
            assert!(
                u.to_bits() == v.to_bits() || (u.is_nan() && v.is_nan()),
                "value mismatch: {u} vs {v}"
            );
        }
    }
}

#[test]
fn generated_archives_survive_write_then_parse() {
    // CharacterTrajectories has NaN padding (missing_prop > 0); RacketSports
    // is the serving default. Both must round trip exactly.
    for id in [DatasetId::CharacterTrajectories, DatasetId::RacketSports] {
        let meta = ALL_DATASETS.iter().find(|m| m.id == id).unwrap();
        let tt = generate(meta, &GenOptions::ci(42));
        for split in [&tt.train, &tt.test] {
            let text = write_ts(split, meta.name, None);
            let parsed = parse_ts(&text).expect("parse what we wrote");
            assert_datasets_equal(split, &parsed.dataset);
        }
    }
}

#[test]
fn series_line_inverts_on_generated_series() {
    let meta = ALL_DATASETS.iter().find(|m| m.id == DatasetId::RacketSports).unwrap();
    let tt = generate(meta, &GenOptions::ci(7));
    for s in tt.test.series() {
        let line = format_series_line(s);
        let back = parse_series_line(&line).expect("parse formatted line");
        assert_eq!(back.n_dims(), s.n_dims());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.as_flat(), s.as_flat());
    }
}

#[test]
fn series_line_handles_missing_values() {
    let s = Mts::from_dims(vec![vec![1.0, f64::NAN, -3.5], vec![0.0, 0.25, f64::NAN]]);
    let line = format_series_line(&s);
    assert!(line.contains('?'), "NaN should encode as ?: {line}");
    let back = parse_series_line(&line).unwrap();
    assert!(back.as_flat()[1].is_nan());
    assert!(back.as_flat()[5].is_nan());
    assert_eq!(back.as_flat()[2], -3.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    /// Arbitrary values in a small grid survive the line codec
    /// bit-for-bit, with some entries knocked out to NaN.
    fn series_line_round_trips_arbitrary_values(
        vals in proptest::collection::vec(-1e12f64..1e12, 2..24),
        n_dims in 1usize..4,
        nan_stride in 2usize..7,
    ) {
        let len = (vals.len() / n_dims).max(1);
        let dims: Vec<Vec<f64>> = (0..n_dims)
            .map(|d| {
                (0..len)
                    .map(|t| {
                        let i = d * len + t;
                        let v = vals[i % vals.len()];
                        if i % nan_stride == 0 { f64::NAN } else { v }
                    })
                    .collect()
            })
            .collect();
        let s = Mts::from_dims(dims);
        let back = parse_series_line(&format_series_line(&s)).unwrap();
        prop_assert_eq!(back.n_dims(), s.n_dims());
        prop_assert_eq!(back.len(), s.len());
        for (u, v) in s.as_flat().iter().zip(back.as_flat()) {
            prop_assert!(
                u.to_bits() == v.to_bits() || (u.is_nan() && v.is_nan()),
                "{} vs {}", u, v
            );
        }
    }
}
