//! Property-based tests of the archive simulator and the `.ts` format.

use proptest::prelude::*;
use tsda_datasets::registry::{DatasetMeta, ALL_DATASETS};
use tsda_datasets::synth::{generate, GenOptions};
use tsda_datasets::ts_format::{parse_ts, write_ts};
use tsda_core::{Dataset, Mts};

fn any_meta() -> impl Strategy<Value = &'static DatasetMeta> {
    (0usize..ALL_DATASETS.len()).prop_map(|i| &ALL_DATASETS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generation_respects_caps_and_floors(meta in any_meta(), seed in 0u64..500) {
        let opts = GenOptions::ci(seed);
        let data = generate(meta, &opts);
        prop_assert!(data.train.series_len() <= opts.max_length);
        prop_assert!(data.train.n_dims() <= opts.max_dims);
        prop_assert!(data.train.len() <= opts.max_train_size.max(meta.n_classes * opts.min_train_per_class));
        for c in data.train.class_counts() {
            prop_assert!(c >= opts.min_train_per_class);
        }
        for c in data.test.class_counts() {
            prop_assert!(c >= opts.min_test_per_class);
        }
        // Shapes agree between splits.
        prop_assert_eq!(data.train.n_dims(), data.test.n_dims());
        prop_assert_eq!(data.train.series_len(), data.test.series_len());
    }

    #[test]
    fn generation_values_are_finite_or_trailing_nan(meta in any_meta(), seed in 0u64..200) {
        let data = generate(meta, &GenOptions::ci(seed));
        for s in data.train.series() {
            for m in 0..s.n_dims() {
                let d = s.dim(m);
                // NaNs, when present, form a suffix (variable-length padding).
                let first_nan = d.iter().position(|v| v.is_nan());
                if let Some(p) = first_nan {
                    prop_assert!(d[p..].iter().all(|v| v.is_nan()), "{}", meta.name);
                }
                prop_assert!(d.iter().all(|v| v.is_nan() || v.is_finite()));
            }
        }
    }

    #[test]
    fn ts_format_round_trips_arbitrary_datasets(
        vals in proptest::collection::vec(-1000.0f64..1000.0, 24),
        labels in proptest::collection::vec(0usize..3, 4),
    ) {
        let mut ds = Dataset::empty(3);
        for (i, &l) in labels.iter().enumerate() {
            ds.push(Mts::from_flat(2, 3, vals[i * 6..(i + 1) * 6].to_vec()), l);
        }
        let text = write_ts(&ds, "Prop", None);
        let parsed = parse_ts(&text).unwrap();
        prop_assert_eq!(parsed.dataset.len(), ds.len());
        for (a, b) in parsed.dataset.series().iter().zip(ds.series()) {
            for (x, y) in a.as_flat().iter().zip(b.as_flat()) {
                prop_assert!((x - y).abs() < 1e-9, "{} vs {}", x, y);
            }
        }
    }
}
