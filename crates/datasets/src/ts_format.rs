//! Reader/writer for the sktime `.ts` multivariate file layout, so real
//! UCR/UEA archive files can replace the simulator when available.
//!
//! Supported subset (what the archive's multivariate files actually use):
//!
//! ```text
//! #comment lines
//! @problemName Name
//! @timeStamps false
//! @univariate false
//! @classLabel true a b c
//! @data
//! v,v,v:v,v,v:label      <- dimensions separated by ':', values by ','
//! ```
//!
//! Missing values are `?` and map to `NaN`. Class labels may be arbitrary
//! tokens; they are densely re-indexed in first-appearance order of the
//! `@classLabel` declaration.

use std::collections::BTreeMap;
use tsda_core::{Dataset, Mts, TsdaError};

/// A parsed `.ts` file: the dataset plus the original label names.
#[derive(Debug, Clone)]
pub struct TsFile {
    /// The parsed dataset.
    pub dataset: Dataset,
    /// Original class tokens, indexed by dense label.
    pub class_names: Vec<String>,
    /// Problem name from the header, when present.
    pub problem_name: Option<String>,
}

/// Parse `.ts` content from a string.
pub fn parse_ts(content: &str) -> Result<TsFile, TsdaError> {
    let mut class_names: Vec<String> = Vec::new();
    let mut problem_name = None;
    let mut in_data = false;
    let mut series: Vec<Mts> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut name_to_label: BTreeMap<String, usize> = BTreeMap::new();

    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !in_data {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@problemname") {
                problem_name = line.split_whitespace().nth(1).map(str::to_string);
            } else if lower.starts_with("@classlabel") {
                let mut parts = line.split_whitespace();
                let _tag = parts.next();
                let flag = parts.next().unwrap_or("false");
                if flag.eq_ignore_ascii_case("true") {
                    for (i, name) in parts.enumerate() {
                        name_to_label.insert(name.to_string(), i);
                        class_names.push(name.to_string());
                    }
                }
            } else if lower.starts_with("@data") {
                in_data = true;
            }
            // Other @ directives (timeStamps, univariate, …) are accepted
            // and ignored.
            continue;
        }
        // Data line: dim:dim:...:label
        let mut fields: Vec<&str> = line.split(':').collect();
        if fields.len() < 2 {
            return Err(TsdaError::Parse {
                line: lineno,
                message: "data line needs at least one dimension and a label".into(),
            });
        }
        let Some(label_tok) = fields.pop().map(str::trim) else {
            // Guarded by the len >= 2 check above; keep the parser total.
            continue;
        };
        let label = match name_to_label.get(label_tok) {
            Some(&l) => l,
            None => {
                // Undeclared label: extend the mapping (lenient mode).
                let l = class_names.len();
                class_names.push(label_tok.to_string());
                name_to_label.insert(label_tok.to_string(), l);
                l
            }
        };
        series.push(parse_dims(&fields, lineno)?);
        labels.push(label);
    }
    let n_classes = class_names.len().max(labels.iter().map(|&l| l + 1).max().unwrap_or(0));
    let dataset = Dataset::from_parts(series, labels, n_classes)?;
    Ok(TsFile { dataset, class_names, problem_name })
}

/// Parse the dimension fields of one data line (label already removed).
fn parse_dims(fields: &[&str], lineno: usize) -> Result<Mts, TsdaError> {
    let mut dims: Vec<Vec<f64>> = Vec::with_capacity(fields.len());
    for dim_str in fields {
        let vals: Result<Vec<f64>, TsdaError> = dim_str
            .split(',')
            .map(|tok| {
                let tok = tok.trim();
                if tok == "?" {
                    Ok(f64::NAN)
                } else {
                    tok.parse::<f64>().map_err(|_| TsdaError::Parse {
                        line: lineno,
                        message: format!("bad value {tok:?}"),
                    })
                }
            })
            .collect();
        dims.push(vals?);
    }
    if dims.is_empty() || dims[0].is_empty() {
        return Err(TsdaError::Parse { line: lineno, message: "empty series".into() });
    }
    let width = dims[0].len();
    if dims.iter().any(|d| d.len() != width) {
        return Err(TsdaError::Parse {
            line: lineno,
            message: "dimensions of one series differ in length".into(),
        });
    }
    Ok(Mts::from_dims(dims))
}

/// Parse one label-less series in `.ts` data-line layout — dimensions
/// separated by `:`, values by `,`, `?` for missing — e.g.
/// `"1.0,2.0,3.0:0.5,0.5,0.5"` for a 2-dim series of length 3.
///
/// This is the payload format the `tsda-serve` wire protocol uses for
/// predict requests, so serving and archive IO share one parser.
/// Reported error line numbers are always 1.
pub fn parse_series_line(text: &str) -> Result<Mts, TsdaError> {
    let fields: Vec<&str> = text.trim().split(':').collect();
    parse_dims(&fields, 1)
}

/// Serialise one series to the `.ts` data-line layout (no label field);
/// the exact inverse of [`parse_series_line`]. Values are printed with
/// Rust's shortest round-trip float formatting, so parse → format →
/// parse is bit-exact (NaN included, as `?`).
pub fn format_series_line(s: &Mts) -> String {
    let mut out = String::new();
    for m in 0..s.n_dims() {
        if m > 0 {
            out.push(':');
        }
        let vals: Vec<String> = s
            .dim(m)
            .iter()
            .map(|v| if v.is_nan() { "?".to_string() } else { format!("{v}") })
            .collect();
        out.push_str(&vals.join(","));
    }
    out
}

/// Serialise a dataset to `.ts` text. Labels are written as `c<index>`
/// unless names are supplied.
pub fn write_ts(ds: &Dataset, problem_name: &str, class_names: Option<&[String]>) -> String {
    let mut out = String::new();
    out.push_str(&format!("@problemName {problem_name}\n"));
    out.push_str("@timeStamps false\n");
    out.push_str(&format!("@univariate {}\n", ds.n_dims() == 1));
    out.push_str("@classLabel true");
    let names: Vec<String> = match class_names {
        Some(n) => n.to_vec(),
        None => (0..ds.n_classes()).map(|i| format!("c{i}")).collect(),
    };
    for n in &names {
        out.push(' ');
        out.push_str(n);
    }
    out.push_str("\n@data\n");
    for (s, l) in ds.iter() {
        out.push_str(&format_series_line(s));
        out.push(':');
        out.push_str(&names[l]);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
#UEA-style sample
@problemName Toy
@timeStamps false
@univariate false
@classLabel true up down
@data
1.0,2.0,3.0:10.0,20.0,30.0:up
-1.0,?,-3.0:0.5,0.5,0.5:down
";

    #[test]
    fn parses_header_and_data() {
        let f = parse_ts(SAMPLE).unwrap();
        assert_eq!(f.problem_name.as_deref(), Some("Toy"));
        assert_eq!(f.class_names, vec!["up", "down"]);
        assert_eq!(f.dataset.len(), 2);
        assert_eq!(f.dataset.n_dims(), 2);
        assert_eq!(f.dataset.series_len(), 3);
        assert_eq!(f.dataset.labels(), &[0, 1]);
    }

    #[test]
    fn question_mark_becomes_nan() {
        let f = parse_ts(SAMPLE).unwrap();
        assert!(f.dataset.series()[1].value(0, 1).is_nan());
    }

    #[test]
    fn round_trip_preserves_dataset() {
        let f = parse_ts(SAMPLE).unwrap();
        let text = write_ts(&f.dataset, "Toy", Some(&f.class_names));
        let g = parse_ts(&text).unwrap();
        assert_eq!(g.dataset.len(), f.dataset.len());
        assert_eq!(g.dataset.labels(), f.dataset.labels());
        // Values (NaN-aware comparison).
        for (a, b) in f.dataset.series().iter().zip(g.dataset.series()) {
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_flat().iter().zip(b.as_flat()) {
                assert!(x == y || (x.is_nan() && y.is_nan()));
            }
        }
    }

    #[test]
    fn bad_value_reports_line() {
        let bad = "@classLabel true a\n@data\n1.0,zzz:a\n";
        let err = parse_ts(bad).unwrap_err();
        assert!(matches!(err, TsdaError::Parse { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn missing_label_field_is_rejected() {
        let bad = "@classLabel true a\n@data\n1.0,2.0\n";
        assert!(parse_ts(bad).is_err());
    }

    #[test]
    fn undeclared_label_is_accepted_leniently() {
        let text = "@classLabel true a\n@data\n1.0:a\n2.0:b\n";
        let f = parse_ts(text).unwrap();
        assert_eq!(f.class_names, vec!["a", "b"]);
        assert_eq!(f.dataset.n_classes(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "#c\n\n@classLabel true x\n@data\n#not data? no: comments stop at @data\n";
        // After @data a comment line starting with # is still skipped.
        let f = parse_ts(text).unwrap();
        assert_eq!(f.dataset.len(), 0);
    }
}
