//! UCR/UEA multivariate archive simulator.
//!
//! The paper evaluates on the 13 *imbalanced multivariate* datasets of
//! the UCR/UEA archive (its Table III). The archive itself is an external
//! artifact this workspace cannot ship, so this crate substitutes a
//! *simulator*: for each of the 13 datasets, a seeded synthetic generator
//! that matches the published characteristics — class count, train size,
//! dimension count, series length, class imbalance, per-position
//! variance, train/test distribution shift, and missing-value proportion
//! — while producing class structure (per-class latent prototypes plus
//! noise and nuisance transformations) that makes classification
//! non-trivial and augmentation-sensitive.
//!
//! Real archive data can be dropped in through the [`ts_format`] parser,
//! which reads the sktime `.ts` layout.

#![forbid(unsafe_code)]

pub mod registry;
pub mod synth;
pub mod ts_format;

pub use registry::{DatasetId, DatasetMeta, ALL_DATASETS};
pub use synth::{generate, GenOptions};
pub use ts_format::{format_series_line, parse_series_line, parse_ts, write_ts, TsFile};
