//! Seeded synthetic generators for the 13 archive datasets.
//!
//! Each dataset is generated from class *prototypes* — smooth latent
//! patterns drawn from a class-seeded RNG so the train and test splits
//! share class structure — plus per-sample nuisance variation (amplitude
//! jitter, time warp/shift, additive noise) and dataset-level knobs from
//! the registry: class imbalance, missing-value padding, and a train/test
//! domain shift.

use crate::registry::{DatasetMeta, SignalFamily};
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::rng::{derive_seed, normal, seeded};
use tsda_core::{Dataset, Mts, TrainTest};

/// Generation options: scale and seed.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Master seed; the same seed always regenerates the same archive.
    pub seed: u64,
    /// Multiplier on the archive train/test sizes (1.0 = paper scale).
    pub size_factor: f64,
    /// Cap on series length (usize::MAX = paper scale).
    pub max_length: usize,
    /// Cap on dimension count (usize::MAX = paper scale).
    pub max_dims: usize,
    /// Minimum training series per class after scaling.
    pub min_train_per_class: usize,
    /// Minimum test series per class after scaling.
    pub min_test_per_class: usize,
    /// Hard cap on the scaled training-set size (keeps PenDigits-sized
    /// archives tractable in the laptop profile).
    pub max_train_size: usize,
    /// Hard cap on the scaled test-set size.
    pub max_test_size: usize,
}

impl GenOptions {
    /// Full archive sizes (matches Table III exactly).
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            size_factor: 1.0,
            max_length: usize::MAX,
            max_dims: usize::MAX,
            min_train_per_class: 2,
            min_test_per_class: 1,
            max_train_size: usize::MAX,
            max_test_size: usize::MAX,
        }
    }

    /// Laptop-scale profile used by the default harness runs: an order of
    /// magnitude fewer series, lengths capped at 96, dimensions at 24.
    pub fn ci(seed: u64) -> Self {
        Self {
            seed,
            size_factor: 0.12,
            max_length: 96,
            max_dims: 24,
            min_train_per_class: 6,
            min_test_per_class: 4,
            max_train_size: 360,
            max_test_size: 240,
        }
    }
}

/// Apportion `total` series over classes by the given proportions with
/// the largest-remainder method, flooring every class at `min_per`.
fn apportion(total: usize, proportions: &[f64], min_per: usize) -> Vec<usize> {
    let k = proportions.len();
    let total = total.max(k * min_per);
    let raw: Vec<f64> = proportions.iter().map(|p| p * total as f64).collect();
    let mut counts: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
    let mut remainder: Vec<(usize, f64)> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r - r.floor()))
        .collect();
    remainder.sort_by(|a, b| b.1.total_cmp(&a.1));
    let assigned: usize = counts.iter().sum();
    for (i, _) in remainder.iter().take(total.saturating_sub(assigned)) {
        counts[*i] += 1;
    }
    // Enforce the floor by pulling from the largest classes.
    for i in 0..k {
        while counts[i] < min_per {
            // Every archive dataset has k >= 2 classes; a single-class
            // grid never enters this loop (counts[0] == total >= min_per).
            let Some(donor) = (0..k).filter(|&j| j != i).max_by_key(|&j| counts[j]) else {
                break;
            };
            assert!(counts[donor] > min_per, "not enough series to satisfy class floors");
            counts[donor] -= 1;
            counts[i] += 1;
        }
    }
    counts
}

/// A class prototype: per-dimension waveform *parameters*. Samples are
/// rendered by re-drawing these parameters with the dataset's
/// `sample_jitter` — structural within-class variability, which is what
/// actually controls classification difficulty (a fixed curve plus iid
/// noise is always linearly separable; overlapping parameter
/// distributions are not).
struct Prototype {
    params: ProtoParams,
}

enum ProtoParams {
    /// Per dim: cosine-basis amplitudes.
    Strokes(Vec<Vec<f64>>),
    /// Per dim: (amplitude, frequency, phase) sinusoid components.
    SlowWaves(Vec<Vec<(f64, f64, f64)>>),
    /// Per dim: (centre, width, amplitude, carrier frequency) bursts.
    Bursts(Vec<Vec<(f64, f64, f64, f64)>>),
    /// Per dim: faint linear drift slopes (EEG). A slope survives the
    /// per-series z-normalisation every classifier applies, unlike a
    /// constant offset, which z-norm erases entirely.
    Eeg(Vec<f64>),
    /// Per dim station amplitude; shared class peak positions.
    Traffic { station_amp: Vec<f64>, peak1: f64, peak2: f64 },
    /// Per dim: (centre, width, amplitude, tilt) band envelope.
    Bands(Vec<(f64, f64, f64, f64)>),
}

fn build_prototype(
    meta: &DatasetMeta,
    class: usize,
    dims: usize,
    _len: usize,
    rng: &mut StdRng,
) -> Prototype {
    let sep = meta.separation;
    let params = match meta.family {
        SignalFamily::Strokes => ProtoParams::Strokes(
            (0..dims)
                .map(|_| (0..5).map(|_| normal(rng, 0.0, sep)).collect())
                .collect(),
        ),
        SignalFamily::SlowWaves => ProtoParams::SlowWaves(
            (0..dims)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            (
                                normal(rng, 0.0, sep),
                                rng.gen_range(0.5..3.0),
                                rng.gen_range(0.0..std::f64::consts::TAU),
                            )
                        })
                        .collect()
                })
                .collect(),
        ),
        SignalFamily::Bursts => ProtoParams::Bursts(
            (0..dims)
                .map(|_| {
                    (0..2)
                        .map(|_| {
                            (
                                rng.gen_range(0.15..0.85),
                                rng.gen_range(0.04..0.15),
                                normal(rng, 0.0, sep),
                                rng.gen_range(4.0..12.0),
                            )
                        })
                        .collect()
                })
                .collect(),
        ),
        SignalFamily::EegNoise => ProtoParams::Eeg(
            (0..dims)
                .map(|_| if rng.gen::<bool>() { sep } else { -sep })
                .collect(),
        ),
        SignalFamily::Traffic => {
            let phase = class as f64 / meta.n_classes as f64 * 0.25;
            ProtoParams::Traffic {
                station_amp: (0..dims).map(|_| rng.gen_range(0.5..1.5)).collect(),
                peak1: 0.3 + phase + rng.gen_range(-0.02..0.02),
                peak2: 0.7 + phase * 0.5 + rng.gen_range(-0.02..0.02),
            }
        }
        SignalFamily::BandEnvelopes => ProtoParams::Bands(
            (0..dims)
                .map(|dim| {
                    let decay = 1.0 / (1.0 + dim as f64 / dims.max(1) as f64 * 3.0);
                    (
                        rng.gen_range(0.2..0.8),
                        rng.gen_range(0.1..0.3),
                        normal(rng, 0.0, sep) * decay,
                        normal(rng, 0.0, sep * 0.3) * decay,
                    )
                })
                .collect(),
        ),
    };
    Prototype { params }
}

/// Re-draw the prototype parameters with the dataset's structural jitter
/// and render the per-dimension curves.
fn render_jittered(
    proto: &Prototype,
    meta: &DatasetMeta,
    dims: usize,
    len: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    use std::f64::consts::TAU;
    let j = meta.sample_jitter;
    let x_at = |t: usize| t as f64 / len.max(1) as f64;
    match &proto.params {
        ProtoParams::Strokes(amps) => (0..dims)
            .map(|d| {
                let a: Vec<f64> = amps[d]
                    .iter()
                    .map(|&v| v * (1.0 + 0.5 * j * normal(rng, 0.0, 1.0)))
                    .collect();
                (0..len)
                    .map(|t| {
                        let x = x_at(t);
                        tsda_core::math::sum_stable(a.iter().enumerate().map(|(k, &av)| {
                            av * (std::f64::consts::PI * (k + 1) as f64 * x).cos()
                        }))
                    })
                    .collect()
            })
            .collect(),
        ProtoParams::SlowWaves(comps) => (0..dims)
            .map(|d| {
                let c: Vec<(f64, f64, f64)> = comps[d]
                    .iter()
                    .map(|&(a, f, p)| {
                        (
                            a * (1.0 + 0.5 * j * normal(rng, 0.0, 1.0)),
                            (f * (1.0 + 0.3 * j * normal(rng, 0.0, 1.0))).max(0.1),
                            p + j * TAU * 0.5 * normal(rng, 0.0, 1.0),
                        )
                    })
                    .collect();
                (0..len)
                    .map(|t| {
                        let x = x_at(t);
                        c.iter().map(|(a, f, p)| a * (TAU * f * x + p).sin()).sum()
                    })
                    .collect()
            })
            .collect(),
        ProtoParams::Bursts(bursts) => (0..dims)
            .map(|d| {
                let b: Vec<(f64, f64, f64, f64)> = bursts[d]
                    .iter()
                    .map(|&(c, w, a, f)| {
                        (
                            (c + 0.25 * j * normal(rng, 0.0, 1.0)).clamp(0.05, 0.95),
                            (w * (1.0 + 0.4 * j * normal(rng, 0.0, 1.0))).max(0.01),
                            a * (1.0 + 0.5 * j * normal(rng, 0.0, 1.0)),
                            (f * (1.0 + 0.3 * j * normal(rng, 0.0, 1.0))).max(0.5),
                        )
                    })
                    .collect();
                (0..len)
                    .map(|t| {
                        let x = x_at(t);
                        b.iter()
                            .map(|(c, w, a, f)| {
                                let env = (-(x - c) * (x - c) / (2.0 * w * w)).exp();
                                a * env * (TAU * f * x).sin()
                            })
                            .sum()
                    })
                    .collect()
            })
            .collect(),
        ProtoParams::Eeg(slopes) => (0..dims)
            .map(|d| {
                let slope = slopes[d] * (1.0 + 0.5 * j * normal(rng, 0.0, 1.0));
                (0..len).map(|t| slope * (x_at(t) - 0.5)).collect()
            })
            .collect(),
        ProtoParams::Traffic { station_amp, peak1, peak2 } => {
            let p1 = (peak1 + 0.05 * j * normal(rng, 0.0, 1.0)).clamp(0.05, 0.95);
            let p2 = (peak2 + 0.05 * j * normal(rng, 0.0, 1.0)).clamp(0.05, 0.95);
            (0..dims)
                .map(|d| {
                    let amp = meta.separation
                        * station_amp[d]
                        * (1.0 + 0.3 * j * normal(rng, 0.0, 1.0));
                    (0..len)
                        .map(|t| {
                            let x = x_at(t);
                            let bump = |c: f64| (-(x - c) * (x - c) / 0.008).exp();
                            amp * (bump(p1) + 0.8 * bump(p2))
                        })
                        .collect()
                })
                .collect()
        }
        ProtoParams::Bands(params) => (0..dims)
            .map(|d| {
                let (c0, w0, a0, t0) = params[d];
                let c = (c0 + 0.2 * j * normal(rng, 0.0, 1.0)).clamp(0.05, 0.95);
                let w = (w0 * (1.0 + 0.4 * j * normal(rng, 0.0, 1.0))).max(0.02);
                let a = a0 * (1.0 + 0.5 * j * normal(rng, 0.0, 1.0));
                let tilt = t0 * (1.0 + 0.5 * j * normal(rng, 0.0, 1.0));
                (0..len)
                    .map(|t| {
                        let x = x_at(t);
                        a * (-(x - c) * (x - c) / (2.0 * w * w)).exp() + tilt * x
                    })
                    .collect()
            })
            .collect(),
    }
}

/// Sample one series around a prototype: time shift, amplitude jitter,
/// additive (AR(1) for EEG, white otherwise) noise.
fn sample_series(
    meta: &DatasetMeta,
    proto: &Prototype,
    dims: usize,
    len: usize,
    shift: f64,
    rng: &mut StdRng,
) -> Mts {
    let amp_jitter = 1.0 + normal(rng, 0.0, 0.08);
    let t_shift = normal(rng, 0.0, 0.02) * len as f64;
    let ar = matches!(meta.family, SignalFamily::EegNoise);
    let curves = render_jittered(proto, meta, dims, len, rng);
    let mut dims_out = Vec::with_capacity(dims);
    for curve in curves.iter().take(dims) {
        let mut prev_noise = 0.0;
        let dim: Vec<f64> = (0..len)
            .map(|t| {
                let src = (t as f64 + t_shift).clamp(0.0, (len - 1) as f64);
                let i = src.floor() as usize;
                let frac = src - i as f64;
                let base = if i + 1 < len {
                    curve[i] * (1.0 - frac) + curve[i + 1] * frac
                } else {
                    curve[len - 1]
                };
                let noise = if ar {
                    prev_noise = 0.8 * prev_noise + normal(rng, 0.0, meta.noise);
                    prev_noise
                } else {
                    normal(rng, 0.0, meta.noise)
                };
                amp_jitter * base + noise + shift
            })
            .collect();
        dims_out.push(dim);
    }
    let mut s = Mts::from_dims(dims_out);
    // Variable-length datasets: pad the tail with NaN so the expected
    // missing fraction matches the published proportion.
    if meta.missing_prop > 0.0 {
        let min_frac = (1.0 - 2.0 * meta.missing_prop).max(0.05);
        let valid_frac = rng.gen_range(min_frac..1.0);
        let valid = ((len as f64 * valid_frac) as usize).max(4).min(len);
        for m in 0..dims {
            for v in s.dim_mut(m)[valid..].iter_mut() {
                *v = f64::NAN;
            }
        }
    }
    s
}

/// Generate the train/test pair for one dataset.
pub fn generate(meta: &DatasetMeta, opts: &GenOptions) -> TrainTest {
    let dims = meta.dims.min(opts.max_dims);
    let len = meta.length.min(opts.max_length);
    let proportions = meta.class_proportions();
    // Imbalanced datasets need headroom above the per-class floor:
    // without it, tiny scaled totals pin every class to the minimum and
    // the generated archive silently loses its class imbalance (making
    // the augmentation protocol vacuous).
    let slack = usize::from(meta.minority_classes > 0);
    let train_total = ((meta.train_size as f64 * opts.size_factor).round() as usize)
        .min(opts.max_train_size)
        .max(meta.n_classes * (opts.min_train_per_class + slack));
    let test_total = ((meta.test_size as f64 * opts.size_factor).round() as usize)
        .min(opts.max_test_size)
        .max(meta.n_classes * (opts.min_test_per_class + slack));
    let train_counts = apportion(train_total, &proportions, opts.min_train_per_class);
    let test_counts = apportion(test_total, &proportions, opts.min_test_per_class);

    let prototypes: Vec<Prototype> = (0..meta.n_classes)
        .map(|c| {
            let mut rng = seeded(derive_seed(opts.seed, &format!("{}/proto/{c}", meta.name)));
            build_prototype(meta, c, dims, len, &mut rng)
        })
        .collect();

    let build_split = |counts: &[usize], split: &str, shift: f64| {
        let mut ds = Dataset::empty(meta.n_classes);
        for (c, &n) in counts.iter().enumerate() {
            let mut rng =
                seeded(derive_seed(opts.seed, &format!("{}/{split}/{c}", meta.name)));
            for _ in 0..n {
                ds.push(sample_series(meta, &prototypes[c], dims, len, shift, &mut rng), c);
            }
        }
        ds
    };

    let train = build_split(&train_counts, "train", 0.0);
    let test = build_split(&test_counts, "test", meta.test_shift);
    // Both splits come from the same meta (same dims, length, classes),
    // so the `TrainTest::new` shape check cannot fail; construct directly
    // to keep this path panic-free.
    TrainTest { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetId, ALL_DATASETS};
    use tsda_core::characteristics::DatasetCharacteristics;

    fn meta(id: DatasetId) -> &'static DatasetMeta {
        DatasetMeta::get(id)
    }

    #[test]
    fn generation_is_deterministic() {
        let m = meta(DatasetId::RacketSports);
        let a = generate(m, &GenOptions::ci(42));
        let b = generate(m, &GenOptions::ci(42));
        assert_eq!(a.train.series()[0], b.train.series()[0]);
        assert_eq!(a.test.labels(), b.test.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let m = meta(DatasetId::RacketSports);
        let a = generate(m, &GenOptions::ci(1));
        let b = generate(m, &GenOptions::ci(2));
        assert_ne!(a.train.series()[0], b.train.series()[0]);
    }

    #[test]
    fn ci_scale_caps_shapes() {
        let m = meta(DatasetId::EigenWorms);
        let d = generate(m, &GenOptions::ci(0));
        assert!(d.train.series_len() <= 96);
        assert_eq!(d.train.n_dims(), 6);
        let pems = generate(meta(DatasetId::PemsSf), &GenOptions::ci(0));
        assert_eq!(pems.train.n_dims(), 24); // capped from 963
    }

    #[test]
    fn every_class_is_populated_in_both_splits() {
        for m in &ALL_DATASETS {
            let d = generate(m, &GenOptions::ci(7));
            assert!(
                d.train.class_counts().iter().all(|&c| c >= 6),
                "{}: {:?}",
                m.name,
                d.train.class_counts()
            );
            assert!(d.test.class_counts().iter().all(|&c| c >= 4), "{}", m.name);
        }
    }

    #[test]
    fn imbalanced_datasets_generate_imbalanced_counts() {
        let d = generate(meta(DatasetId::CharacterTrajectories), &GenOptions::ci(3));
        let counts = d.train.class_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max >= 2 * min, "{counts:?}");
    }

    #[test]
    fn missing_proportion_is_realised() {
        let d = generate(meta(DatasetId::SpokenArabicDigits), &GenOptions::ci(5));
        let tt = TrainTest::new(d.train.clone(), d.test.clone()).unwrap();
        let ch = DatasetCharacteristics::compute(&tt);
        assert!(
            (ch.missing_proportion - 0.57).abs() < 0.2,
            "missing {}",
            ch.missing_proportion
        );
        let no_miss = generate(meta(DatasetId::Epilepsy), &GenOptions::ci(5));
        assert_eq!(no_miss.train.missing_proportion(), 0.0);
    }

    #[test]
    fn test_shift_creates_train_test_distance() {
        let d = generate(meta(DatasetId::EthanolConcentration), &GenOptions::ci(9));
        let tt = TrainTest::new(d.train.clone(), d.test.clone()).unwrap();
        let ch = DatasetCharacteristics::compute(&tt);
        assert!(ch.train_test_distance > 0.0);
    }

    #[test]
    fn classes_are_separable_for_easy_datasets() {
        // Nearest-centroid accuracy on PenDigits-like data should beat
        // chance by a wide margin: the generator must encode real class
        // structure.
        let d = generate(meta(DatasetId::PenDigits), &GenOptions::ci(11));
        let k = d.train.n_classes();
        let dims = d.train.n_dims();
        let len = d.train.series_len();
        let mut centroids = vec![vec![0.0; dims * len]; k];
        let counts = d.train.class_counts();
        for (s, l) in d.train.iter() {
            for (j, &v) in s.as_flat().iter().enumerate() {
                centroids[l][j] += v;
            }
        }
        for (c, cen) in centroids.iter_mut().enumerate() {
            for v in cen.iter_mut() {
                *v /= counts[c].max(1) as f64;
            }
        }
        let mut correct = 0;
        for (s, l) in d.test.iter() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    let da: f64 = s
                        .as_flat()
                        .iter()
                        .zip(&centroids[a])
                        .map(|(x, c)| (x - c) * (x - c))
                        .sum();
                    let db: f64 = s
                        .as_flat()
                        .iter()
                        .zip(&centroids[b])
                        .map(|(x, c)| (x - c) * (x - c))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test.len() as f64;
        assert!(acc > 3.0 / k as f64, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn near_chance_dataset_is_hard() {
        // FingerMovements must stay close to chance even for the
        // centroid classifier — its published accuracy is ~52%.
        let d = generate(meta(DatasetId::FingerMovements), &GenOptions::ci(13));
        // The class offset (separation 0.12) is far below the noise (1.0).
        let ch = DatasetCharacteristics::compute(
            &TrainTest::new(d.train.clone(), d.test.clone()).unwrap(),
        );
        assert!(ch.var_train > 0.5, "variance {}", ch.var_train);
    }

    #[test]
    fn apportion_respects_floor_and_total() {
        let counts = apportion(20, &[0.7, 0.2, 0.1], 2);
        assert_eq!(counts.iter().sum::<usize>(), 20);
        assert!(counts.iter().all(|&c| c >= 2));
        assert!(counts[0] > counts[2]);
    }
}
