//! The 13 imbalanced multivariate UCR/UEA datasets (paper Table III).
//!
//! Each entry records the archive's published characteristics plus the
//! simulator knobs (signal family, class separation, noise floor,
//! train/test shift) tuned so the synthetic stand-ins exercise the same
//! regimes: near-chance EEG sets, near-perfect digit sets, long slow
//! series, very wide sensor panels, and missing-value padding.

use serde::{Deserialize, Serialize};

/// Identifier for one of the 13 archive datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// 20-class 3-D pen trajectories, variable length (NaN-padded).
    CharacterTrajectories,
    /// 5-class, 6-dim, extremely long worm locomotion series.
    EigenWorms,
    /// 4-class tri-axial accelerometer epilepsy episodes.
    Epilepsy,
    /// 4-class near-infrared spectra of ethanol/water mixtures.
    EthanolConcentration,
    /// 2-class, 28-channel EEG; near-chance for every model.
    FingerMovements,
    /// 26-class 3-D accelerometer handwriting.
    Handwriting,
    /// 2-class, 61-channel heart-sound spectrogram bands.
    Heartbeat,
    /// 14-class astronomical transient light curves, very short.
    Lsst,
    /// 7-class, 963-station California traffic occupancy.
    PemsSf,
    /// 10-class pen-tip digit skeletons, length 8.
    PenDigits,
    /// 4-class racket-sport accelerometer/gyroscope bursts.
    RacketSports,
    /// 2-class slow-cortical-potential EEG.
    SelfRegulationScp1,
    /// 10-class, 13-band MFCC spoken digits, variable length.
    SpokenArabicDigits,
}

/// The waveform family the simulator uses for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignalFamily {
    /// Smooth pen strokes: splines through class-specific control points.
    Strokes,
    /// Low-frequency sinusoid mixtures (worms, spectra, SCP).
    SlowWaves,
    /// Localised Gaussian-windowed oscillation bursts.
    Bursts,
    /// Autoregressive noise with a faint class offset (EEG).
    EegNoise,
    /// Double-peaked daily occupancy profiles with class phase.
    Traffic,
    /// Per-band spectral envelopes (MFCC / heart-sound bands).
    BandEnvelopes,
}

/// Static description of one dataset: Table III characteristics plus
/// simulator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Which dataset.
    pub id: DatasetId,
    /// Archive name, as printed in Table III.
    pub name: &'static str,
    /// Number of classes.
    pub n_classes: usize,
    /// Archive training-set size.
    pub train_size: usize,
    /// Archive test-set size.
    pub test_size: usize,
    /// Number of variables per series.
    pub dims: usize,
    /// Series length.
    pub length: usize,
    /// Number of minority classes implied by the published Hellinger
    /// imbalance degree (`m = ceil(Im_ratio)`, 0 when balanced).
    pub minority_classes: usize,
    /// Published missing-value proportion (realised as trailing NaN
    /// padding of variable-length series).
    pub missing_prop: f64,
    /// Simulator: class separation (prototype distance in noise units).
    /// Larger ⇒ easier; tuned to land near the paper's baseline accuracy.
    pub separation: f64,
    /// Simulator: per-sample noise standard deviation.
    pub noise: f64,
    /// Simulator: per-sample *structural* variability — the fraction by
    /// which each sample re-draws its waveform parameters (amplitudes,
    /// frequencies, burst positions) around the class prototype, and for
    /// oscillatory families the fraction of a full cycle by which phases
    /// are re-randomised. This, not additive noise, is what makes the
    /// hard datasets hard: fixed prototypes plus iid noise are always
    /// linearly separable, overlapping parameter distributions are not.
    pub sample_jitter: f64,
    /// Simulator: additive offset applied to the test split, producing
    /// the `d_train_test` domain shift of Table III.
    pub test_shift: f64,
    /// Waveform family.
    pub family: SignalFamily,
}

/// All 13 datasets in Table III order.
pub const ALL_DATASETS: [DatasetMeta; 13] = [
    DatasetMeta {
        id: DatasetId::CharacterTrajectories,
        name: "CharacterTrajectories",
        n_classes: 20,
        train_size: 1422,
        test_size: 1436,
        dims: 3,
        length: 182,
        minority_classes: 14,
        missing_prop: 0.33,
        separation: 3.0,
        sample_jitter: 0.22,
        noise: 0.35,
        test_shift: 0.02,
        family: SignalFamily::Strokes,
    },
    DatasetMeta {
        id: DatasetId::EigenWorms,
        name: "EigenWorms",
        n_classes: 5,
        train_size: 128,
        test_size: 131,
        dims: 6,
        length: 17984,
        minority_classes: 4,
        missing_prop: 0.0,
        separation: 1.6,
        sample_jitter: 0.52,
        noise: 0.5,
        test_shift: 0.05,
        family: SignalFamily::SlowWaves,
    },
    DatasetMeta {
        id: DatasetId::Epilepsy,
        name: "Epilepsy",
        n_classes: 4,
        train_size: 137,
        test_size: 138,
        dims: 3,
        length: 206,
        minority_classes: 2,
        missing_prop: 0.0,
        separation: 3.2,
        sample_jitter: 0.22,
        noise: 0.35,
        test_shift: 0.02,
        family: SignalFamily::Bursts,
    },
    DatasetMeta {
        id: DatasetId::EthanolConcentration,
        name: "EthanolConcentration",
        n_classes: 4,
        train_size: 261,
        test_size: 263,
        dims: 3,
        length: 1751,
        minority_classes: 2,
        missing_prop: 0.0,
        separation: 0.25,
        sample_jitter: 1.35,
        noise: 1.2,
        test_shift: 0.35,
        family: SignalFamily::SlowWaves,
    },
    DatasetMeta {
        id: DatasetId::FingerMovements,
        name: "FingerMovements",
        n_classes: 2,
        train_size: 316,
        test_size: 100,
        dims: 28,
        length: 50,
        minority_classes: 0,
        missing_prop: 0.0,
        separation: 0.6,
        sample_jitter: 1.0,
        noise: 1.0,
        test_shift: 0.03,
        family: SignalFamily::EegNoise,
    },
    DatasetMeta {
        id: DatasetId::Handwriting,
        name: "Handwriting",
        n_classes: 26,
        train_size: 150,
        test_size: 850,
        dims: 3,
        length: 152,
        minority_classes: 13,
        missing_prop: 0.0,
        separation: 0.55,
        sample_jitter: 2.9,
        noise: 1.1,
        test_shift: 0.05,
        family: SignalFamily::Strokes,
    },
    DatasetMeta {
        id: DatasetId::Heartbeat,
        name: "Heartbeat",
        n_classes: 2,
        train_size: 204,
        test_size: 205,
        dims: 61,
        length: 405,
        minority_classes: 1,
        missing_prop: 0.0,
        separation: 0.75,
        sample_jitter: 1.0,
        noise: 0.8,
        test_shift: 0.05,
        family: SignalFamily::BandEnvelopes,
    },
    DatasetMeta {
        id: DatasetId::Lsst,
        name: "LSST",
        n_classes: 14,
        train_size: 2459,
        test_size: 2466,
        dims: 6,
        length: 36,
        minority_classes: 10,
        missing_prop: 0.0,
        separation: 1.1,
        sample_jitter: 0.22,
        noise: 0.6,
        test_shift: 0.1,
        family: SignalFamily::Bursts,
    },
    DatasetMeta {
        id: DatasetId::PemsSf,
        name: "PEMS-SF",
        n_classes: 7,
        train_size: 267,
        test_size: 173,
        dims: 963,
        length: 144,
        minority_classes: 4,
        missing_prop: 0.0,
        separation: 1.3,
        sample_jitter: 0.35,
        noise: 0.6,
        test_shift: 0.05,
        family: SignalFamily::Traffic,
    },
    DatasetMeta {
        id: DatasetId::PenDigits,
        name: "PenDigits",
        n_classes: 10,
        train_size: 7494,
        test_size: 3498,
        dims: 2,
        length: 8,
        minority_classes: 5,
        missing_prop: 0.0,
        separation: 3.5,
        sample_jitter: 0.35,
        noise: 0.25,
        test_shift: 0.01,
        family: SignalFamily::Strokes,
    },
    DatasetMeta {
        id: DatasetId::RacketSports,
        name: "RacketSports",
        n_classes: 4,
        train_size: 151,
        test_size: 152,
        dims: 6,
        length: 30,
        minority_classes: 2,
        missing_prop: 0.0,
        separation: 1.9,
        sample_jitter: 0.31,
        noise: 0.45,
        test_shift: 0.03,
        family: SignalFamily::Bursts,
    },
    DatasetMeta {
        id: DatasetId::SelfRegulationScp1,
        name: "SelfRegulationSCP1",
        n_classes: 2,
        train_size: 268,
        test_size: 293,
        dims: 6,
        length: 896,
        minority_classes: 0,
        missing_prop: 0.0,
        separation: 0.9,
        sample_jitter: 0.95,
        noise: 0.8,
        test_shift: 0.1,
        family: SignalFamily::SlowWaves,
    },
    DatasetMeta {
        id: DatasetId::SpokenArabicDigits,
        name: "SpokenArabicDigits",
        n_classes: 10,
        train_size: 6599,
        test_size: 2199,
        dims: 13,
        length: 93,
        minority_classes: 0,
        missing_prop: 0.57,
        separation: 4.2,
        sample_jitter: 0.05,
        noise: 0.25,
        test_shift: 0.02,
        family: SignalFamily::BandEnvelopes,
    },
];

impl DatasetMeta {
    /// Look up a dataset by id.
    pub fn get(id: DatasetId) -> &'static DatasetMeta {
        ALL_DATASETS
            .iter()
            .find(|m| m.id == id)
            .expect("every DatasetId has a registry entry")
    }

    /// Class proportions implementing the published imbalance: majority
    /// classes share weight 1.5 each, minority classes decay
    /// geometrically from 0.5, everything normalised. Balanced datasets
    /// (`minority_classes == 0`) are uniform.
    pub fn class_proportions(&self) -> Vec<f64> {
        let k = self.n_classes;
        let m = self.minority_classes;
        if m == 0 {
            return vec![1.0 / k as f64; k];
        }
        let mut w = Vec::with_capacity(k);
        for i in 0..k {
            if i < k - m {
                w.push(1.5);
            } else {
                w.push(0.5 * 0.75f64.powi((i - (k - m)) as i32));
            }
        }
        let total: f64 = tsda_core::math::sum_stable(w.iter().copied());
        w.iter().map(|v| v / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::characteristics::imbalance_degree_hellinger;

    #[test]
    fn registry_has_thirteen_datasets() {
        assert_eq!(ALL_DATASETS.len(), 13);
    }

    #[test]
    fn table3_headline_numbers_match() {
        let ct = DatasetMeta::get(DatasetId::CharacterTrajectories);
        assert_eq!((ct.n_classes, ct.train_size, ct.dims, ct.length), (20, 1422, 3, 182));
        let pems = DatasetMeta::get(DatasetId::PemsSf);
        assert_eq!((pems.n_classes, pems.dims, pems.length), (7, 963, 144));
        let pen = DatasetMeta::get(DatasetId::PenDigits);
        assert_eq!((pen.train_size, pen.length), (7494, 8));
    }

    #[test]
    fn proportions_sum_to_one() {
        for meta in &ALL_DATASETS {
            let p = meta.class_proportions();
            assert_eq!(p.len(), meta.n_classes);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "{}: {s}", meta.name);
        }
    }

    #[test]
    fn minority_count_matches_declared() {
        for meta in &ALL_DATASETS {
            let p = meta.class_proportions();
            let k = meta.n_classes as f64;
            let m = p.iter().filter(|&&v| v < 1.0 / k - 1e-12).count();
            assert_eq!(m, meta.minority_classes, "{}", meta.name);
        }
    }

    #[test]
    fn imbalance_degree_lands_in_declared_band() {
        // ID with m minority classes must lie in (m−1, m].
        for meta in &ALL_DATASETS {
            let id = imbalance_degree_hellinger(&meta.class_proportions());
            let m = meta.minority_classes as f64;
            if meta.minority_classes == 0 {
                assert_eq!(id, 0.0, "{}", meta.name);
            } else {
                assert!(id > m - 1.0 && id <= m, "{}: ID {id}, m {m}", meta.name);
            }
        }
    }

    #[test]
    fn balanced_datasets_are_the_three_from_table3() {
        let balanced: Vec<&str> = ALL_DATASETS
            .iter()
            .filter(|m| m.minority_classes == 0)
            .map(|m| m.name)
            .collect();
        assert_eq!(
            balanced,
            vec!["FingerMovements", "SelfRegulationSCP1", "SpokenArabicDigits"]
        );
    }
}
