//! Property-based tests of the neural substrate: loss invariants and
//! layer algebra that must hold for arbitrary bounded inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsda_neuro::layers::{Activation, Dense, GlobalAvgPool1d, Layer, MaxPool1dSame};
use tsda_neuro::loss::{bce_with_logits, mse_loss, softmax, softmax_cross_entropy};
use tsda_neuro::tensor::Tensor;

fn tensor2(n: usize, m: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, n * m)
        .prop_map(move |d| Tensor::from_flat(&[n, m], d))
}

fn tensor3(n: usize, c: usize, t: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, n * c * t)
        .prop_map(move |d| Tensor::from_flat(&[n, c, t], d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_rows_are_distributions(x in tensor2(4, 5)) {
        let p = softmax(&x);
        for i in 0..4 {
            let row = &p.data()[i * 5..(i + 1) * 5];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(x in tensor2(2, 4), shift in -10.0f32..10.0) {
        let mut shifted = x.clone();
        for v in shifted.data_mut() {
            *v += shift;
        }
        let a = softmax(&x);
        let b = softmax(&shifted);
        for (p, q) in a.data().iter().zip(b.data()) {
            prop_assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_at_least_uniform_bound(x in tensor2(3, 4), t0 in 0usize..4, t1 in 0usize..4, t2 in 0usize..4) {
        // Loss is nonnegative and its gradient rows sum to ~0.
        let targets = [t0, t1, t2];
        let (loss, grad) = softmax_cross_entropy(&x, &targets);
        prop_assert!(loss >= 0.0);
        for i in 0..3 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn mse_zero_iff_equal(x in tensor2(3, 3)) {
        let (loss, grad) = mse_loss(&x, &x);
        prop_assert_eq!(loss, 0.0);
        prop_assert!(grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bce_matches_naive_formula(x in proptest::collection::vec(-8.0f32..8.0, 6),
                                 t in proptest::collection::vec(0u8..2, 6)) {
        let logits = Tensor::from_flat(&[6], x.clone());
        let targets = Tensor::from_flat(&[6], t.iter().map(|&b| b as f32).collect());
        let (loss, _) = bce_with_logits(&logits, &targets);
        let naive: f32 = x
            .iter()
            .zip(&t)
            .map(|(&l, &y)| {
                let p = 1.0 / (1.0 + (-l).exp());
                let y = y as f32;
                -(y * p.max(1e-7).ln() + (1.0 - y) * (1.0 - p).max(1e-7).ln())
            })
            .sum::<f32>()
            / 6.0;
        prop_assert!((loss - naive).abs() < 1e-3, "{} vs {}", loss, naive);
    }

    #[test]
    fn relu_output_is_nonnegative_and_sparse_grad(x in tensor2(3, 6)) {
        let mut act = Activation::relu();
        let y = act.forward(&x, true);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        let g = act.backward(&Tensor::from_flat(y.shape(), vec![1.0; y.len()]));
        for (gv, &xv) in g.data().iter().zip(x.data()) {
            prop_assert_eq!(*gv != 0.0, xv > 0.0);
        }
    }

    #[test]
    fn gap_output_bounded_by_input_extremes(x in tensor3(2, 3, 5)) {
        let mut gap = GlobalAvgPool1d::new();
        let y = gap.forward(&x, true);
        let lo = x.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = x.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(y.data().iter().all(|&v| v >= lo - 1e-6 && v <= hi + 1e-6));
    }

    #[test]
    fn maxpool_dominates_input(x in tensor3(1, 2, 8)) {
        let mut p = MaxPool1dSame::new(3);
        let y = p.forward(&x, true);
        for (o, i) in y.data().iter().zip(x.data()) {
            prop_assert!(o >= i, "pooled {} < input {}", o, i);
        }
    }

    #[test]
    fn dense_is_linear(x in tensor2(2, 3), scale in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(3, 4, &mut rng);
        // Kill the bias so homogeneity holds exactly.
        let mut buf_index = 0;
        d.visit_params(&mut |p, _| {
            if buf_index == 1 {
                for v in p.iter_mut() {
                    *v = 0.0;
                }
            }
            buf_index += 1;
        });
        let y1 = d.forward(&x, true);
        let mut sx = x.clone();
        sx.scale(scale);
        let y2 = d.forward(&sx, true);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + a.abs() * scale.abs()), "{} vs {}", a * scale, b);
        }
    }
}
