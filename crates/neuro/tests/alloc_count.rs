//! Allocation-count harness for `Conv1d::forward` — the runtime check
//! behind the `tsda_analyze` A1 scratch rule. Once the per-worker
//! im2col scratch is warm for a shape, the inference forward pass
//! allocates only the escaping output tensor: a *fixed number* of
//! allocator calls, independent of the series length. Doubling `T`
//! must not change the allocation count, only the bytes.
//!
//! One `#[test]` only: the counting allocator is process-global, and
//! sibling tests on parallel threads would pollute the windows.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tsda_neuro::layers::{Conv1d, Layer};
use tsda_neuro::Tensor;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only added
// behaviour is a relaxed counter bump, which cannot violate any
// GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to System.alloc with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to System.realloc with the caller's pointer,
    // layout, and size, all forwarded untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to System.dealloc with the caller's pointer
    // and layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn input(n: usize, ch: usize, t_len: usize) -> Tensor {
    let data = (0..n * ch * t_len).map(|i| ((i % 17) as f32 - 8.0) * 0.25).collect();
    Tensor::from_flat(&[n, ch, t_len], data)
}

/// Allocator calls for one warm inference forward at the given length.
fn warm_forward_allocs(conv: &mut Conv1d, n: usize, ch: usize, t_len: usize) -> u64 {
    let x = input(n, ch, t_len);
    // Warm this shape: pool worker scratch resizes to `ick·T` on the
    // first pass, then stays.
    for _ in 0..4 {
        let _ = conv.forward(&x, false);
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    let _ = conv.forward(&x, false);
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_conv_forward_alloc_count_is_independent_of_series_length() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv1d::new(3, 5, 9, true, &mut rng);
    let short = warm_forward_allocs(&mut conv, 6, 3, 64);
    let long = warm_forward_allocs(&mut conv, 6, 3, 256);
    assert_eq!(
        short, long,
        "warm forward allocations must not scale with T (T=64: {short}, T=256: {long}); \
         the im2col scratch is leaking per-window allocations"
    );
    // And the fixed cost is bounded: the output tensor plus per-worker
    // pool bookkeeping — nothing per window. (The exact number depends
    // on the pool's worker count, never on T.)
    assert!(short <= 64, "warm forward made {short} allocations; scratch reuse regressed");
}
