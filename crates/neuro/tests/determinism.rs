//! Thread-count determinism of the GEMM-lowered Conv1d: the parallel
//! compute layer guarantees bit-identical results for any worker
//! budget, which these tests pin down for 1 vs 4 (and 16) threads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use tsda_core::parallel::ThreadLimit;
use tsda_neuro::layers::{Conv1d, Layer};
use tsda_neuro::Tensor;

/// `ThreadLimit` is process-global; serialize the tests that toggle it.
static LIMIT_LOCK: Mutex<()> = Mutex::new(());

fn input(batch: usize, ch: usize, t: usize) -> Tensor {
    let n = batch * ch * t;
    Tensor::from_flat(
        &[batch, ch, t],
        (0..n).map(|v| ((v * 37 % 101) as f32 - 50.0) * 0.021).collect(),
    )
}

/// Forward + backward under the given thread limit; fresh layer per
/// call so cached state cannot leak between runs.
fn conv_pass(threads: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    ThreadLimit::set(threads);
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv1d::new(3, 5, 9, true, &mut rng);
    let x = input(6, 3, 40);
    let y = conv.forward(&x, true);
    let gout = input(6, 5, 40);
    let gx = conv.backward(&gout);
    let mut grads = Vec::new();
    conv.visit_params(&mut |_, g| grads.extend_from_slice(g));
    (y.data().to_vec(), gx.data().to_vec(), grads)
}

#[test]
fn conv1d_bits_do_not_depend_on_thread_count() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    let reference = conv_pass(1);
    for threads in [4, 16] {
        let run = conv_pass(threads);
        assert_eq!(run.0, reference.0, "forward, {threads} threads");
        assert_eq!(run.1, reference.1, "input grad, {threads} threads");
        assert_eq!(run.2, reference.2, "param grads, {threads} threads");
    }
    ThreadLimit::clear();
}

#[test]
fn conv1d_gemm_matches_reference_forward() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    ThreadLimit::set(4);
    let mut rng = StdRng::seed_from_u64(9);
    let mut conv = Conv1d::new(4, 6, 5, true, &mut rng);
    let x = input(3, 4, 33);
    let lowered = conv.forward(&x, true);
    let reference = conv.forward_reference(&x);
    for (l, r) in lowered.data().iter().zip(reference.data()) {
        assert!((l - r).abs() <= 1e-4 * (1.0 + r.abs()), "{l} vs {r}");
    }
    ThreadLimit::clear();
}
