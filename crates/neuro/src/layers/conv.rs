//! 1-D convolution with "same" padding, lowered to im2col + GEMM.
//!
//! InceptionTime's inception modules are built entirely from this layer:
//! bottleneck 1×1 convolutions, the three parallel wide kernels, and the
//! shortcut projections.
//!
//! Forward and backward both run as matrix products on the cache-tiled
//! kernels in [`tsda_linalg::gemm`], parallelised over the batch
//! dimension on the workspace pool:
//!
//! * forward: per batch, unfold the input into a `[in_ch·kernel, T]`
//!   column matrix (zeros where the window hangs off the series), then
//!   `out_b ← W·col_b` with `W` viewed as `[out_ch, in_ch·kernel]`;
//! * backward: `∂W += Σ_b g_b·col_bᵀ` (per-batch partials summed in
//!   ascending batch order so results are thread-count independent) and
//!   `∂x_b ← fold(Wᵀ·g_b)`.
//!
//! The pre-GEMM scalar loop survives as [`Conv1d::forward_reference`]
//! for differential tests and the `perf_baseline` speedup measurement.

use super::Layer;
use crate::init::he_uniform;
use crate::tensor::Tensor;
use rand::Rng;
use std::cell::RefCell;
use tsda_core::parallel::Pool;
use tsda_linalg::gemm::{gemm_acc_f32, gemm_nt_acc_f32, gemm_tn_f32};

thread_local! {
    // Per-worker im2col column scratch, reused across batches and
    // requests: pool threads are long-lived, so after each worker's
    // first pass at a given size the forward hot path performs no
    // im2col allocation at all.
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// 1-D convolution, stride 1, odd kernel, zero "same" padding.
/// Input `[batch, in_ch, T]` → output `[batch, out_ch, T]`.
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    use_bias: bool,
    w: Vec<f32>, // [out_ch, in_ch, kernel]
    b: Vec<f32>, // [out_ch]
    gw: Vec<f32>,
    gb: Vec<f32>,
    cached_x: Option<Tensor>,
}

impl Conv1d {
    /// New convolution with He-uniform weights.
    ///
    /// # Panics
    /// Panics if `kernel` is even (same-padding needs odd kernels).
    pub fn new<R: Rng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        use_bias: bool,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "Conv1d requires an odd kernel, got {kernel}");
        let fan_in = in_ch * kernel;
        Self {
            in_ch,
            out_ch,
            kernel,
            use_bias,
            w: he_uniform(rng, fan_in, out_ch * in_ch * kernel),
            b: vec![0.0; out_ch],
            gw: vec![0.0; out_ch * in_ch * kernel],
            gb: vec![0.0; out_ch],
            cached_x: None,
        }
    }

    /// Kernel length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, k: usize) -> f32 {
        self.w[(oc * self.in_ch + ic) * self.kernel + k]
    }

    /// Unfold one batch element into the `[in_ch·kernel, T]` column
    /// matrix: row `ic·kernel + k` holds `x[b, ic, t + k − pad]`, zero
    /// where the window reaches past either end of the series.
    fn im2col(&self, x_b: &[f32], t_len: usize, col: &mut [f32]) {
        let pad = self.kernel / 2;
        col.fill(0.0);
        for ic in 0..self.in_ch {
            let src = &x_b[ic * t_len..(ic + 1) * t_len];
            for k in 0..self.kernel {
                // src index = t + k − pad, valid for t in [lo, hi).
                let lo = pad.saturating_sub(k);
                let hi = (t_len + pad).saturating_sub(k).min(t_len);
                let row = &mut col[(ic * self.kernel + k) * t_len..(ic * self.kernel + k + 1) * t_len];
                row[lo..hi].copy_from_slice(&src[lo + k - pad..hi + k - pad]);
            }
        }
    }

    /// The inverse scatter of [`Conv1d::im2col`]: fold the column-matrix
    /// gradient back onto one batch element's input gradient.
    fn col2im(&self, gcol: &[f32], t_len: usize, gx_b: &mut [f32]) {
        let pad = self.kernel / 2;
        for ic in 0..self.in_ch {
            let dst = &mut gx_b[ic * t_len..(ic + 1) * t_len];
            for k in 0..self.kernel {
                let lo = pad.saturating_sub(k);
                let hi = (t_len + pad).saturating_sub(k).min(t_len);
                let row = &gcol[(ic * self.kernel + k) * t_len..(ic * self.kernel + k + 1) * t_len];
                for t in lo..hi {
                    dst[t + k - pad] += row[t];
                }
            }
        }
    }

    /// The pre-GEMM scalar forward pass, kept as the reference
    /// implementation for differential tests and the `perf_baseline`
    /// binary. Does not cache the input, so it cannot be followed by
    /// `backward`.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv1d expects [batch, ch, time]");
        assert_eq!(x.shape()[1], self.in_ch, "Conv1d channel mismatch");
        let n = x.shape()[0];
        let t_len = x.shape()[2];
        let pad = self.kernel / 2;
        let mut out = Tensor::zeros(&[n, self.out_ch, t_len]);
        for b in 0..n {
            for oc in 0..self.out_ch {
                let bias = if self.use_bias { self.b[oc] } else { 0.0 };
                for t in 0..t_len {
                    let mut acc = bias;
                    // k index range that keeps t + k − pad in bounds.
                    let k_lo = pad.saturating_sub(t);
                    let k_hi = self.kernel.min(t_len + pad - t);
                    for ic in 0..self.in_ch {
                        for k in k_lo..k_hi {
                            acc += self.w_at(oc, ic, k) * x.at3(b, ic, t + k - pad);
                        }
                    }
                    *out.at3_mut(b, oc, t) = acc;
                }
            }
        }
        out
    }
}

impl Layer for Conv1d {
    // Hot path (`tsda_analyze` R3 + A1): the only steady-state
    // allocation is the escaping output tensor — im2col columns come
    // from the per-worker scratch, and the backward cache is only
    // refreshed (in place) when training.
    #[doc(alias = "tsda::hot")]
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv1d expects [batch, ch, time]");
        assert_eq!(x.shape()[1], self.in_ch, "Conv1d channel mismatch");
        let n = x.shape()[0];
        let t_len = x.shape()[2];
        let ick = self.in_ch * self.kernel;
        let mut out = Tensor::zeros(&[n, self.out_ch, t_len]);
        let this = &*self;
        let x_data = x.data();
        // One batch element per work unit: workers own disjoint
        // `[out_ch, T]` output slices, so any thread count produces the
        // same bits. Nested pool calls inside the GEMM go serial.
        Pool::global().par_chunks_mut(out.data_mut(), this.out_ch * t_len, |b, out_b| {
            COL_SCRATCH.with(|cell| {
                let mut col = cell.borrow_mut();
                col.resize(ick * t_len, 0.0);
                this.im2col(&x_data[b * this.in_ch * t_len..(b + 1) * this.in_ch * t_len], t_len, &mut col);
                if this.use_bias {
                    for (oc, row) in out_b.chunks_mut(t_len).enumerate() {
                        row.fill(this.b[oc]);
                    }
                }
                gemm_acc_f32(this.out_ch, ick, t_len, &this.w, &col, out_b);
            });
        });
        if train {
            // Reuse the cache tensor's buffers; inference never copies.
            self.cached_x.get_or_insert_with(Tensor::default).copy_from(x);
        } else {
            self.cached_x = None;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("backward before forward");
        let n = x.shape()[0];
        let t_len = x.shape()[2];
        assert_eq!(grad_out.shape(), &[n, self.out_ch, t_len], "Conv1d grad shape mismatch");
        let ick = self.in_ch * self.kernel;
        let mut gx = Tensor::zeros(&[n, self.in_ch, t_len]);
        let this = &*self;
        let x_data = x.data();
        let g_data = grad_out.data();
        // Per-batch weight/bias-gradient partials, computed in parallel
        // alongside each batch's input gradient.
        let partials = {
            let gx_slots: &mut [f32] = gx.data_mut();
            let mut partials: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
            let slots = Pool::global().par_map_indexed(n, |b| {
                let mut col = vec![0.0f32; ick * t_len];
                this.im2col(&x_data[b * this.in_ch * t_len..(b + 1) * this.in_ch * t_len], t_len, &mut col);
                let g_b = &g_data[b * this.out_ch * t_len..(b + 1) * this.out_ch * t_len];
                // ∂W partial: g_b [out_ch, T] · col_bᵀ [T, ick].
                let mut gw_p = vec![0.0f32; this.out_ch * ick];
                gemm_nt_acc_f32(this.out_ch, t_len, ick, g_b, &col, &mut gw_p);
                let mut gb_p = vec![0.0f32; this.out_ch];
                if this.use_bias {
                    for (oc, row) in g_b.chunks_exact(t_len).enumerate() {
                        gb_p[oc] = row.iter().sum();
                    }
                }
                // ∂x_b: fold Wᵀ [ick, out_ch] · g_b [out_ch, T].
                let mut gcol = vec![0.0f32; ick * t_len];
                gemm_tn_f32(ick, this.out_ch, t_len, &this.w, g_b, &mut gcol);
                let mut gx_b = vec![0.0f32; this.in_ch * t_len];
                this.col2im(&gcol, t_len, &mut gx_b);
                (gw_p, gb_p, gx_b)
            });
            for (b, (gw_p, gb_p, gx_b)) in slots.into_iter().enumerate() {
                gx_slots[b * this.in_ch * t_len..(b + 1) * this.in_ch * t_len]
                    .copy_from_slice(&gx_b);
                partials.push((gw_p, gb_p));
            }
            partials
        };
        // Reduce the partials serially in ascending batch order — the
        // one cross-batch accumulation, kept off the pool on purpose so
        // gradients are bit-identical for every thread count.
        for (gw_p, gb_p) in &partials {
            for (acc, p) in self.gw.iter_mut().zip(gw_p) {
                *acc += p;
            }
            if self.use_bias {
                for (acc, p) in self.gb.iter_mut().zip(gb_p) {
                    *acc += p;
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        if self.use_bias {
            f(&mut self.b, &mut self.gb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_copies_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, false, &mut rng);
        c.visit_params(&mut |p, _| p.copy_from_slice(&[0.0, 1.0, 0.0]));
        let x = Tensor::from_flat(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn shift_kernel_pads_with_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, false, &mut rng);
        // Kernel [1,0,0] reads x[t−1]: shifts right, zero-padding at t=0.
        c.visit_params(&mut |p, _| p.copy_from_slice(&[1.0, 0.0, 0.0]));
        let x = Tensor::from_flat(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn sums_over_input_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(2, 1, 1, true, &mut rng);
        c.visit_params(&mut |p, _| {
            if p.len() == 2 {
                p.copy_from_slice(&[1.0, 10.0]);
            } else {
                p.copy_from_slice(&[0.5]);
            }
        });
        let x = Tensor::from_flat(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), &[31.5, 42.5]);
    }

    #[test]
    fn gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv1d::new(2, 3, 3, true, &mut rng);
        let x = Tensor::from_flat(
            &[2, 2, 5],
            (0..20).map(|v| (v as f32 * 0.37).sin()).collect(),
        );
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
        gradcheck::check_param_grad(&mut c, &x, 2e-2);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn rejects_even_kernel() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Conv1d::new(1, 1, 4, true, &mut rng);
    }

    #[test]
    fn no_bias_exposes_single_param_buffer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1d::new(1, 2, 3, false, &mut rng);
        let mut bufs = 0;
        c.visit_params(&mut |_, _| bufs += 1);
        assert_eq!(bufs, 1);
    }
}
