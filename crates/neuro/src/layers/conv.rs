//! 1-D convolution with "same" padding.
//!
//! InceptionTime's inception modules are built entirely from this layer:
//! bottleneck 1×1 convolutions, the three parallel wide kernels, and the
//! shortcut projections.

use super::Layer;
use crate::init::he_uniform;
use crate::tensor::Tensor;
use rand::Rng;

/// 1-D convolution, stride 1, odd kernel, zero "same" padding.
/// Input `[batch, in_ch, T]` → output `[batch, out_ch, T]`.
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    use_bias: bool,
    w: Vec<f32>, // [out_ch, in_ch, kernel]
    b: Vec<f32>, // [out_ch]
    gw: Vec<f32>,
    gb: Vec<f32>,
    cached_x: Option<Tensor>,
}

impl Conv1d {
    /// New convolution with He-uniform weights.
    ///
    /// # Panics
    /// Panics if `kernel` is even (same-padding needs odd kernels).
    pub fn new<R: Rng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        use_bias: bool,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "Conv1d requires an odd kernel, got {kernel}");
        let fan_in = in_ch * kernel;
        Self {
            in_ch,
            out_ch,
            kernel,
            use_bias,
            w: he_uniform(rng, fan_in, out_ch * in_ch * kernel),
            b: vec![0.0; out_ch],
            gw: vec![0.0; out_ch * in_ch * kernel],
            gb: vec![0.0; out_ch],
            cached_x: None,
        }
    }

    /// Kernel length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, k: usize) -> f32 {
        self.w[(oc * self.in_ch + ic) * self.kernel + k]
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Conv1d expects [batch, ch, time]");
        assert_eq!(x.shape()[1], self.in_ch, "Conv1d channel mismatch");
        let n = x.shape()[0];
        let t_len = x.shape()[2];
        let pad = self.kernel / 2;
        let mut out = Tensor::zeros(&[n, self.out_ch, t_len]);
        for b in 0..n {
            for oc in 0..self.out_ch {
                let bias = if self.use_bias { self.b[oc] } else { 0.0 };
                for t in 0..t_len {
                    let mut acc = bias;
                    // k index range that keeps t + k − pad in bounds.
                    let k_lo = pad.saturating_sub(t);
                    let k_hi = self.kernel.min(t_len + pad - t);
                    for ic in 0..self.in_ch {
                        for k in k_lo..k_hi {
                            acc += self.w_at(oc, ic, k) * x.at3(b, ic, t + k - pad);
                        }
                    }
                    *out.at3_mut(b, oc, t) = acc;
                }
            }
        }
        self.cached_x = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("backward before forward");
        let n = x.shape()[0];
        let t_len = x.shape()[2];
        assert_eq!(grad_out.shape(), &[n, self.out_ch, t_len], "Conv1d grad shape mismatch");
        let pad = self.kernel / 2;
        let mut gx = Tensor::zeros(&[n, self.in_ch, t_len]);
        for b in 0..n {
            for oc in 0..self.out_ch {
                for t in 0..t_len {
                    let g = grad_out.at3(b, oc, t);
                    if g == 0.0 {
                        continue;
                    }
                    if self.use_bias {
                        self.gb[oc] += g;
                    }
                    let k_lo = pad.saturating_sub(t);
                    let k_hi = self.kernel.min(t_len + pad - t);
                    for ic in 0..self.in_ch {
                        for k in k_lo..k_hi {
                            let src = t + k - pad;
                            self.gw[(oc * self.in_ch + ic) * self.kernel + k] +=
                                g * x.at3(b, ic, src);
                            *gx.at3_mut(b, ic, src) += g * self.w_at(oc, ic, k);
                        }
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        if self.use_bias {
            f(&mut self.b, &mut self.gb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_copies_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, false, &mut rng);
        c.visit_params(&mut |p, _| p.copy_from_slice(&[0.0, 1.0, 0.0]));
        let x = Tensor::from_flat(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn shift_kernel_pads_with_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, false, &mut rng);
        // Kernel [1,0,0] reads x[t−1]: shifts right, zero-padding at t=0.
        c.visit_params(&mut |p, _| p.copy_from_slice(&[1.0, 0.0, 0.0]));
        let x = Tensor::from_flat(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn sums_over_input_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(2, 1, 1, true, &mut rng);
        c.visit_params(&mut |p, _| {
            if p.len() == 2 {
                p.copy_from_slice(&[1.0, 10.0]);
            } else {
                p.copy_from_slice(&[0.5]);
            }
        });
        let x = Tensor::from_flat(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), &[31.5, 42.5]);
    }

    #[test]
    fn gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv1d::new(2, 3, 3, true, &mut rng);
        let x = Tensor::from_flat(
            &[2, 2, 5],
            (0..20).map(|v| (v as f32 * 0.37).sin()).collect(),
        );
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
        gradcheck::check_param_grad(&mut c, &x, 2e-2);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn rejects_even_kernel() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Conv1d::new(1, 1, 4, true, &mut rng);
    }

    #[test]
    fn no_bias_exposes_single_param_buffer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1d::new(1, 2, 3, false, &mut rng);
        let mut bufs = 0;
        c.visit_params(&mut |_, _| bufs += 1);
        assert_eq!(bufs, 1);
    }
}
