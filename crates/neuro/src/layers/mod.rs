//! Trainable layers with explicit forward/backward passes.
//!
//! A [`Layer`] caches whatever its backward pass needs during `forward`,
//! accumulates parameter gradients during `backward`, and exposes its
//! parameters to optimisers through [`Layer::visit_params`].

mod activation;
mod conv;
mod dense;
mod gru;
mod lstm;
mod norm;
mod pool;

pub use activation::Activation;
pub use conv::Conv1d;
pub use dense::Dense;
pub use gru::Gru;
pub use lstm::Lstm;
pub use norm::BatchNorm1d;
pub use pool::{GlobalAvgPool1d, MaxPool1dSame};

use crate::tensor::Tensor;

/// A differentiable layer.
pub trait Layer {
    /// Compute the output, caching intermediates for `backward`.
    /// `train` switches batch-norm (and future dropout) behaviour.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Given the loss gradient w.r.t. the last `forward` output,
    /// accumulate parameter gradients and return the gradient w.r.t. the
    /// input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visit `(parameter, gradient)` buffer pairs in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Visit non-trainable state buffers (batch-norm running statistics)
    /// in a stable order. Checkpointing MUST capture these alongside the
    /// parameters: restoring best-epoch weights while keeping last-epoch
    /// running statistics silently corrupts eval-mode predictions.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// Reset all parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| {
            for v in g.iter_mut() {
                *v = 0.0;
            }
        });
    }

    /// Total parameter count.
    fn n_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}

/// A sequential stack of layers, itself a [`Layer`].
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Build from a vector of boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        for l in &mut self.layers {
            l.visit_buffers(f);
        }
    }
}

#[doc(hidden)]
pub mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests across
    //! the workspace (also used by `tsda-classify`'s InceptionTime
    //! tests). Not part of the stable API.

    use super::*;

    /// Scalar loss = sum of element-wise `out * seed` for a fixed
    /// pseudo-random seed vector, so every output position contributes a
    /// distinct gradient.
    pub fn seeded_loss_grad(out: &Tensor) -> (f32, Tensor) {
        let seed: Vec<f32> = (0..out.len())
            .map(|i| ((i * 2654435761) % 17) as f32 / 8.0 - 1.0)
            .collect();
        let loss: f32 =
            tsda_core::math::sum_stable(out.data().iter().zip(&seed).map(|(a, b)| a * b));
        (loss, Tensor::from_flat(out.shape(), seed))
    }

    /// Check input gradients of `layer` at `x` by central differences.
    pub fn check_input_grad<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let (_, gout) = seeded_loss_grad(&out);
        layer.zero_grad();
        let gin = layer.backward(&gout);
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let (lp, _) = seeded_loss_grad(&layer.forward(&xp, true));
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let (lm, _) = seeded_loss_grad(&layer.forward(&xm, true));
            let num = (lp - lm) / (2.0 * eps);
            let ana = gin.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad {i}: numeric {num} vs analytic {ana}"
            );
        }
        // Restore cache for callers that keep using the layer.
        let _ = layer.forward(x, true);
    }

    /// Check parameter gradients of `layer` at `x` by central differences.
    pub fn check_param_grad<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let (_, gout) = seeded_loss_grad(&out);
        layer.zero_grad();
        let _ = layer.backward(&gout);
        // Snapshot analytic gradients.
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |_, g| analytic.push(g.to_vec()));
        let eps = 1e-2f32;
        let mut param_idx = 0;
        // For each parameter buffer and element, perturb and re-evaluate.
        for (buf, buf_grads) in analytic.iter().enumerate() {
            let n = buf_grads.len();
            for i in 0..n {
                let bump = |layer: &mut L, delta: f32| {
                    let mut b = 0;
                    layer.visit_params(&mut |p, _| {
                        if b == buf {
                            p[i] += delta;
                        }
                        b += 1;
                    });
                };
                bump(layer, eps);
                let (lp, _) = seeded_loss_grad(&layer.forward(x, true));
                bump(layer, -2.0 * eps);
                let (lm, _) = seeded_loss_grad(&layer.forward(x, true));
                bump(layer, eps);
                let num = (lp - lm) / (2.0 * eps);
                let ana = buf_grads[i];
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "param buf {buf} elem {i}: numeric {num} vs analytic {ana}"
                );
                param_idx += 1;
            }
        }
        let _ = param_idx;
        let _ = layer.forward(x, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 5, &mut rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(5, 2, &mut rng)),
        ]);
        let x = Tensor::from_flat(&[4, 3], (0..12).map(|v| v as f32 * 0.1 - 0.5).collect());
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
        net.zero_grad();
        let gin = net.backward(&Tensor::from_flat(&[4, 2], vec![1.0; 8]));
        assert_eq!(gin.shape(), &[4, 3]);
        assert!(net.n_params() > 0);
    }

    #[test]
    fn sequential_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::tanh()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let x = Tensor::from_flat(&[2, 3], vec![0.3, -0.2, 0.5, 0.1, 0.7, -0.4]);
        gradcheck::check_input_grad(&mut net, &x, 2e-2);
    }
}
