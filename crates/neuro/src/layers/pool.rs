//! Pooling layers: same-padded max pooling and global average pooling.

use super::Layer;
use crate::tensor::Tensor;

/// Max pooling with stride 1 and "same" zero-less padding (window is
/// clipped at the edges, matching PyTorch's behaviour for InceptionTime's
/// `MaxPool1d(3, stride=1, padding=1)` branch on positive inputs and
/// avoiding artificial zeros elsewhere).
pub struct MaxPool1dSame {
    kernel: usize,
    cached_argmax: Vec<usize>,
    cached_shape: Vec<usize>,
}

impl MaxPool1dSame {
    /// New max-pool layer.
    ///
    /// # Panics
    /// Panics on an even kernel.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "MaxPool1dSame requires an odd kernel");
        Self { kernel, cached_argmax: Vec::new(), cached_shape: Vec::new() }
    }
}

impl Layer for MaxPool1dSame {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "MaxPool1dSame expects [batch, ch, time]");
        let (n, c, t_len) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let half = self.kernel / 2;
        let mut out = Tensor::zeros(x.shape());
        self.cached_argmax = vec![0; n * c * t_len];
        self.cached_shape = x.shape().to_vec();
        for b in 0..n {
            for ch in 0..c {
                for t in 0..t_len {
                    let lo = t.saturating_sub(half);
                    let hi = (t + half + 1).min(t_len);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = lo;
                    for i in lo..hi {
                        let v = x.at3(b, ch, i);
                        if v > best {
                            best = v;
                            best_i = i;
                        }
                    }
                    *out.at3_mut(b, ch, t) = best;
                    self.cached_argmax[(b * c + ch) * t_len + t] = best_i;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.shape(), &self.cached_shape[..], "pool grad shape mismatch");
        let (n, c, t_len) = (
            self.cached_shape[0],
            self.cached_shape[1],
            self.cached_shape[2],
        );
        let mut gx = Tensor::zeros(&self.cached_shape);
        for b in 0..n {
            for ch in 0..c {
                for t in 0..t_len {
                    let src = self.cached_argmax[(b * c + ch) * t_len + t];
                    *gx.at3_mut(b, ch, src) += grad_out.at3(b, ch, t);
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
}

/// Global average pooling: `[batch, ch, time]` → `[batch, ch]`.
pub struct GlobalAvgPool1d {
    cached_shape: Vec<usize>,
}

impl GlobalAvgPool1d {
    /// New GAP layer.
    pub fn new() -> Self {
        Self { cached_shape: Vec::new() }
    }
}

impl Default for GlobalAvgPool1d {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "GlobalAvgPool1d expects [batch, ch, time]");
        let (n, c, t_len) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        self.cached_shape = x.shape().to_vec();
        let mut out = Tensor::zeros(&[n, c]);
        for b in 0..n {
            for ch in 0..c {
                let mut acc = 0.0;
                for t in 0..t_len {
                    acc += x.at3(b, ch, t);
                }
                *out.at2_mut(b, ch) = acc / t_len as f32;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (n, c, t_len) = (
            self.cached_shape[0],
            self.cached_shape[1],
            self.cached_shape[2],
        );
        assert_eq!(grad_out.shape(), &[n, c], "GAP grad shape mismatch");
        let mut gx = Tensor::zeros(&self.cached_shape);
        let inv = 1.0 / t_len as f32;
        for b in 0..n {
            for ch in 0..c {
                let g = grad_out.at2(b, ch) * inv;
                for t in 0..t_len {
                    *gx.at3_mut(b, ch, t) = g;
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn maxpool_takes_window_maximum() {
        let mut p = MaxPool1dSame::new(3);
        let x = Tensor::from_flat(&[1, 1, 5], vec![1.0, 5.0, 2.0, 0.0, 3.0]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[5.0, 5.0, 5.0, 3.0, 3.0]);
    }

    #[test]
    fn maxpool_edges_clip_window() {
        let mut p = MaxPool1dSame::new(3);
        let x = Tensor::from_flat(&[1, 1, 3], vec![-1.0, -5.0, -2.0]);
        let y = p.forward(&x, true);
        // No zero padding: edge windows see only real values.
        assert_eq!(y.data(), &[-1.0, -1.0, -2.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool1dSame::new(3);
        let x = Tensor::from_flat(&[1, 1, 4], vec![0.0, 9.0, 1.0, 2.0]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_flat(&[1, 1, 4], vec![1.0, 1.0, 1.0, 1.0]));
        // Positions 0..2 all take max at index 1; position 3 at index 3.
        assert_eq!(g.data(), &[0.0, 3.0, 0.0, 1.0]);
    }

    #[test]
    fn gap_averages_time() {
        let mut p = GlobalAvgPool1d::new();
        let x = Tensor::from_flat(&[1, 2, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.0, 15.0]);
        assert_eq!(y.shape(), &[1, 2]);
    }

    #[test]
    fn gap_gradcheck() {
        let mut p = GlobalAvgPool1d::new();
        let x = Tensor::from_flat(&[2, 2, 3], (0..12).map(|v| v as f32 * 0.3).collect());
        gradcheck::check_input_grad(&mut p, &x, 1e-2);
    }

    #[test]
    fn maxpool_gradcheck_away_from_ties() {
        let mut p = MaxPool1dSame::new(3);
        // Distinct values avoid tie-induced kinks in the numeric gradient.
        let x = Tensor::from_flat(&[1, 2, 4], vec![0.1, 0.9, 0.3, 0.7, -0.2, 0.5, -0.8, 0.4]);
        gradcheck::check_input_grad(&mut p, &x, 1e-2);
    }
}
