//! Fully-connected layer.

use super::Layer;
use crate::init::he_uniform;
use crate::tensor::Tensor;
use rand::Rng;

/// `y = x W + b` on `[batch, in]` inputs.
pub struct Dense {
    in_features: usize,
    out_features: usize,
    w: Vec<f32>, // [in, out]
    b: Vec<f32>, // [out]
    gw: Vec<f32>,
    gb: Vec<f32>,
    cached_x: Option<Tensor>,
}

impl Dense {
    /// New dense layer with He-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self {
            in_features,
            out_features,
            w: he_uniform(rng, in_features, in_features * out_features),
            b: vec![0.0; out_features],
            gw: vec![0.0; in_features * out_features],
            gb: vec![0.0; out_features],
            cached_x: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Dense expects rank-2 input");
        assert_eq!(x.shape()[1], self.in_features, "Dense input width mismatch");
        let n = x.shape()[0];
        let mut out = Tensor::zeros(&[n, self.out_features]);
        for i in 0..n {
            let xi = &x.data()[i * self.in_features..(i + 1) * self.in_features];
            let oi = &mut out.data_mut()[i * self.out_features..(i + 1) * self.out_features];
            oi.copy_from_slice(&self.b);
            for (k, &xv) in xi.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let wrow = &self.w[k * self.out_features..(k + 1) * self.out_features];
                for (o, &wv) in oi.iter_mut().zip(wrow) {
                    *o += xv * wv;
                }
            }
        }
        self.cached_x = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_x.as_ref().expect("backward before forward");
        let n = x.shape()[0];
        assert_eq!(grad_out.shape(), &[n, self.out_features], "Dense grad shape mismatch");
        let mut gx = Tensor::zeros(&[n, self.in_features]);
        for i in 0..n {
            let xi = &x.data()[i * self.in_features..(i + 1) * self.in_features];
            let gi = &grad_out.data()[i * self.out_features..(i + 1) * self.out_features];
            for (j, &gv) in gi.iter().enumerate() {
                self.gb[j] += gv;
            }
            let gxi = &mut gx.data_mut()[i * self.in_features..(i + 1) * self.in_features];
            for k in 0..self.in_features {
                let wrow = &self.w[k * self.out_features..(k + 1) * self.out_features];
                let gwrow = &mut self.gw[k * self.out_features..(k + 1) * self.out_features];
                let xv = xi[k];
                let mut acc = 0.0;
                for ((gw, &wv), &gv) in gwrow.iter_mut().zip(wrow).zip(gi) {
                    *gw += xv * gv;
                    acc += wv * gv;
                }
                gxi[k] = acc;
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_hand_computation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.visit_params(&mut |p, _| {
            if p.len() == 4 {
                p.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // w row-major [in,out]
            } else {
                p.copy_from_slice(&[0.5, -0.5]);
            }
        });
        let x = Tensor::from_flat(&[1, 2], vec![1.0, 1.0]);
        let y = d.forward(&x, true);
        // y = [1*1+1*3+0.5, 1*2+1*4-0.5] = [4.5, 5.5]
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(3, 4, &mut rng);
        let x = Tensor::from_flat(&[2, 3], vec![0.1, -0.4, 0.9, 0.3, 0.2, -0.7]);
        gradcheck::check_input_grad(&mut d, &x, 1e-2);
        gradcheck::check_param_grad(&mut d, &x, 1e-2);
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_flat(&[1, 2], vec![1.0, 2.0]);
        let _ = d.forward(&x, true);
        let _ = d.backward(&Tensor::from_flat(&[1, 2], vec![1.0, 1.0]));
        d.zero_grad();
        d.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(3, 2, &mut rng);
        let _ = d.forward(&Tensor::zeros(&[1, 4]), true);
    }
}
