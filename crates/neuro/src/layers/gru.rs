//! Gated recurrent unit layer with full backpropagation through time.
//!
//! TimeGAN's five networks (embedder, recovery, generator, supervisor,
//! discriminator) are all GRU stacks; this layer supplies them.
//!
//! Equations (Cho et al. 2014):
//! ```text
//! z_t = σ(x_t W_z + h_{t−1} U_z + b_z)
//! r_t = σ(x_t W_r + h_{t−1} U_r + b_r)
//! ĥ_t = tanh(x_t W_h + (r_t ⊙ h_{t−1}) U_h + b_h)
//! h_t = (1 − z_t) ⊙ h_{t−1} + z_t ⊙ ĥ_t
//! ```
//! Input `[batch, time, features]` → output `[batch, time, hidden]`
//! (the full hidden sequence; take the last step for seq-to-one heads).

use super::Layer;
use crate::init::{glorot_uniform, recurrent_uniform};
use crate::tensor::Tensor;
use rand::Rng;

/// One GRU layer.
pub struct Gru {
    in_features: usize,
    hidden: usize,
    // Input kernels [in, hidden] and recurrent kernels [hidden, hidden].
    wz: Vec<f32>,
    wr: Vec<f32>,
    wh: Vec<f32>,
    uz: Vec<f32>,
    ur: Vec<f32>,
    uh: Vec<f32>,
    bz: Vec<f32>,
    br: Vec<f32>,
    bh: Vec<f32>,
    gwz: Vec<f32>,
    gwr: Vec<f32>,
    gwh: Vec<f32>,
    guz: Vec<f32>,
    gur: Vec<f32>,
    guh: Vec<f32>,
    gbz: Vec<f32>,
    gbr: Vec<f32>,
    gbh: Vec<f32>,
    cache: Option<Cache>,
}

/// Per-sequence caches for BPTT, all `[time][batch * hidden]` except the
/// input which is kept as the original tensor.
struct Cache {
    x: Tensor,
    /// h_{t−1} for each step (h[0] is the zero initial state).
    h_prev: Vec<Vec<f32>>,
    z: Vec<Vec<f32>>,
    r: Vec<Vec<f32>>,
    hcand: Vec<Vec<f32>>,
}

/// `out[n,b] += x[n,a] · w[a,b]`.
fn matmul_acc(x: &[f32], w: &[f32], out: &mut [f32], n: usize, a: usize, b: usize) {
    for i in 0..n {
        let xi = &x[i * a..(i + 1) * a];
        let oi = &mut out[i * b..(i + 1) * b];
        for (k, &xv) in xi.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let wr = &w[k * b..(k + 1) * b];
            for (o, &wv) in oi.iter_mut().zip(wr) {
                *o += xv * wv;
            }
        }
    }
}

/// `out[n,a] += g[n,b] · wᵀ[b,a]` for `w` stored `[a,b]`.
fn matmul_transb_acc(g: &[f32], w: &[f32], out: &mut [f32], n: usize, a: usize, b: usize) {
    for i in 0..n {
        let gi = &g[i * b..(i + 1) * b];
        let oi = &mut out[i * a..(i + 1) * a];
        for (k, o) in oi.iter_mut().enumerate() {
            let wr = &w[k * b..(k + 1) * b];
            *o += gi.iter().zip(wr).map(|(x, y)| x * y).sum::<f32>();
        }
    }
}

/// `gw[a,b] += xᵀ[a,n] · g[n,b]`.
fn outer_acc(x: &[f32], g: &[f32], gw: &mut [f32], n: usize, a: usize, b: usize) {
    for i in 0..n {
        let xi = &x[i * a..(i + 1) * a];
        let gi = &g[i * b..(i + 1) * b];
        for (k, &xv) in xi.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let gwr = &mut gw[k * b..(k + 1) * b];
            for (w, &gv) in gwr.iter_mut().zip(gi) {
                *w += xv * gv;
            }
        }
    }
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

impl Gru {
    /// New GRU with Glorot input kernels and scaled recurrent kernels.
    pub fn new<R: Rng + ?Sized>(in_features: usize, hidden: usize, rng: &mut R) -> Self {
        let ik = |rng: &mut R| glorot_uniform(rng, in_features, hidden, in_features * hidden);
        let rk = |rng: &mut R| recurrent_uniform(rng, hidden, hidden * hidden);
        Self {
            in_features,
            hidden,
            wz: ik(rng),
            wr: ik(rng),
            wh: ik(rng),
            uz: rk(rng),
            ur: rk(rng),
            uh: rk(rng),
            bz: vec![0.0; hidden],
            br: vec![0.0; hidden],
            bh: vec![0.0; hidden],
            gwz: vec![0.0; in_features * hidden],
            gwr: vec![0.0; in_features * hidden],
            gwh: vec![0.0; in_features * hidden],
            guz: vec![0.0; hidden * hidden],
            gur: vec![0.0; hidden * hidden],
            guh: vec![0.0; hidden * hidden],
            gbz: vec![0.0; hidden],
            gbr: vec![0.0; hidden],
            gbh: vec![0.0; hidden],
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Extract the slice of `x` at time `t` as `[batch * features]`.
    fn step_input(x: &Tensor, t: usize) -> Vec<f32> {
        let (n, t_len, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        debug_assert!(t < t_len);
        let mut out = vec![0.0; n * f];
        for b in 0..n {
            let src = (b * t_len + t) * f;
            out[b * f..(b + 1) * f].copy_from_slice(&x.data()[src..src + f]);
        }
        out
    }
}

impl Layer for Gru {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Gru expects [batch, time, features]");
        assert_eq!(x.shape()[2], self.in_features, "Gru feature mismatch");
        let (n, t_len) = (x.shape()[0], x.shape()[1]);
        let h = self.hidden;
        let mut out = Tensor::zeros(&[n, t_len, h]);
        let mut h_state = vec![0.0f32; n * h];
        let mut cache = Cache {
            x: x.clone(),
            h_prev: Vec::with_capacity(t_len),
            z: Vec::with_capacity(t_len),
            r: Vec::with_capacity(t_len),
            hcand: Vec::with_capacity(t_len),
        };
        for t in 0..t_len {
            let xt = Self::step_input(x, t);
            cache.h_prev.push(h_state.clone());

            let mut az = self.bz.repeat(n);
            let mut ar = self.br.repeat(n);
            matmul_acc(&xt, &self.wz, &mut az, n, self.in_features, h);
            matmul_acc(&h_state, &self.uz, &mut az, n, h, h);
            matmul_acc(&xt, &self.wr, &mut ar, n, self.in_features, h);
            matmul_acc(&h_state, &self.ur, &mut ar, n, h, h);
            let z: Vec<f32> = az.iter().map(|&v| sigmoid(v)).collect();
            let r: Vec<f32> = ar.iter().map(|&v| sigmoid(v)).collect();

            let rh: Vec<f32> = r.iter().zip(&h_state).map(|(a, b)| a * b).collect();
            let mut ah = self.bh.repeat(n);
            matmul_acc(&xt, &self.wh, &mut ah, n, self.in_features, h);
            matmul_acc(&rh, &self.uh, &mut ah, n, h, h);
            let hcand: Vec<f32> = ah.iter().map(|&v| v.tanh()).collect();

            for i in 0..n * h {
                h_state[i] = (1.0 - z[i]) * h_state[i] + z[i] * hcand[i];
            }
            for b in 0..n {
                let dst = (b * t_len + t) * self.hidden;
                out.data_mut()[dst..dst + h].copy_from_slice(&h_state[b * h..(b + 1) * h]);
            }
            cache.z.push(z);
            cache.r.push(r);
            cache.hcand.push(hcand);
        }
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let x = &cache.x;
        let (n, t_len) = (x.shape()[0], x.shape()[1]);
        let h = self.hidden;
        let f = self.in_features;
        assert_eq!(grad_out.shape(), &[n, t_len, h], "Gru grad shape mismatch");

        let mut gx = Tensor::zeros(&[n, t_len, f]);
        let mut dh_carry = vec![0.0f32; n * h];
        for t in (0..t_len).rev() {
            let xt = Self::step_input(x, t);
            let h_prev = &cache.h_prev[t];
            let z = &cache.z[t];
            let r = &cache.r[t];
            let hcand = &cache.hcand[t];

            // dh = grad from output at t + carry from t+1.
            let mut dh = dh_carry.clone();
            for b in 0..n {
                let src = (b * t_len + t) * h;
                for k in 0..h {
                    dh[b * h + k] += grad_out.data()[src + k];
                }
            }

            let mut dh_prev = vec![0.0f32; n * h];
            let mut da_z = vec![0.0f32; n * h];
            let mut da_h = vec![0.0f32; n * h];
            for i in 0..n * h {
                let dz = dh[i] * (hcand[i] - h_prev[i]);
                let dhc = dh[i] * z[i];
                dh_prev[i] += dh[i] * (1.0 - z[i]);
                da_z[i] = dz * z[i] * (1.0 - z[i]);
                da_h[i] = dhc * (1.0 - hcand[i] * hcand[i]);
            }

            // Candidate path: a_h = x W_h + (r⊙h_prev) U_h + b_h.
            let rh: Vec<f32> = r.iter().zip(h_prev).map(|(a, b)| a * b).collect();
            outer_acc(&xt, &da_h, &mut self.gwh, n, f, h);
            outer_acc(&rh, &da_h, &mut self.guh, n, h, h);
            for b in 0..n {
                for k in 0..h {
                    self.gbh[k] += da_h[b * h + k];
                }
            }
            let mut d_rh = vec![0.0f32; n * h];
            matmul_transb_acc(&da_h, &self.uh, &mut d_rh, n, h, h);
            let mut da_r = vec![0.0f32; n * h];
            for i in 0..n * h {
                let dr = d_rh[i] * h_prev[i];
                dh_prev[i] += d_rh[i] * r[i];
                da_r[i] = dr * r[i] * (1.0 - r[i]);
            }

            // Gate paths.
            outer_acc(&xt, &da_z, &mut self.gwz, n, f, h);
            outer_acc(h_prev, &da_z, &mut self.guz, n, h, h);
            outer_acc(&xt, &da_r, &mut self.gwr, n, f, h);
            outer_acc(h_prev, &da_r, &mut self.gur, n, h, h);
            for b in 0..n {
                for k in 0..h {
                    self.gbz[k] += da_z[b * h + k];
                    self.gbr[k] += da_r[b * h + k];
                }
            }
            matmul_transb_acc(&da_z, &self.uz, &mut dh_prev, n, h, h);
            matmul_transb_acc(&da_r, &self.ur, &mut dh_prev, n, h, h);

            // Input gradient.
            let mut dxt = vec![0.0f32; n * f];
            matmul_transb_acc(&da_z, &self.wz, &mut dxt, n, f, h);
            matmul_transb_acc(&da_r, &self.wr, &mut dxt, n, f, h);
            matmul_transb_acc(&da_h, &self.wh, &mut dxt, n, f, h);
            for b in 0..n {
                let dst = (b * t_len + t) * f;
                for k in 0..f {
                    gx.data_mut()[dst + k] += dxt[b * f + k];
                }
            }
            dh_carry = dh_prev;
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.wz, &mut self.gwz);
        f(&mut self.wr, &mut self.gwr);
        f(&mut self.wh, &mut self.gwh);
        f(&mut self.uz, &mut self.guz);
        f(&mut self.ur, &mut self.gur);
        f(&mut self.uh, &mut self.guh);
        f(&mut self.bz, &mut self.gbz);
        f(&mut self.br, &mut self.gbr);
        f(&mut self.bh, &mut self.gbh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_batch_time_hidden() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut gru = Gru::new(3, 5, &mut rng);
        let x = Tensor::zeros(&[2, 4, 3]);
        let y = gru.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 5]);
    }

    #[test]
    fn zero_input_keeps_state_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(2, 3, &mut rng);
        let x = Tensor::zeros(&[1, 5, 2]);
        let y = gru.forward(&x, true);
        // With zero bias and zero input the candidate is tanh(0)=0, so h
        // stays exactly 0.
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn state_carries_information_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gru = Gru::new(1, 4, &mut rng);
        // Impulse at t=0, zeros after: later outputs must remain nonzero
        // (memory) but differ from the impulse response.
        let mut x = Tensor::zeros(&[1, 6, 1]);
        x.data_mut()[0] = 1.0;
        let y = gru.forward(&x, true);
        let h1: Vec<f32> = y.data()[4..8].to_vec();
        let h5: Vec<f32> = y.data()[20..24].to_vec();
        assert!(h1.iter().any(|&v| v.abs() > 1e-4));
        assert!(h5.iter().any(|&v| v.abs() > 1e-5));
        assert_ne!(h1, h5);
    }

    #[test]
    fn input_gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gru = Gru::new(2, 3, &mut rng);
        let x = Tensor::from_flat(
            &[2, 3, 2],
            vec![0.5, -0.3, 0.8, 0.1, -0.6, 0.4, 0.2, 0.9, -0.1, 0.3, 0.7, -0.5],
        );
        gradcheck::check_input_grad(&mut gru, &x, 3e-2);
    }

    #[test]
    fn param_gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gru = Gru::new(2, 2, &mut rng);
        let x = Tensor::from_flat(&[1, 3, 2], vec![0.5, -0.3, 0.8, 0.1, -0.6, 0.4]);
        gradcheck::check_param_grad(&mut gru, &x, 3e-2);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Tensor::from_flat(&[1, 2, 2], vec![0.1, 0.2, 0.3, 0.4]);
        let y1 = Gru::new(2, 3, &mut StdRng::seed_from_u64(7)).forward(&x, true);
        let y2 = Gru::new(2, 3, &mut StdRng::seed_from_u64(7)).forward(&x, true);
        assert_eq!(y1.data(), y2.data());
    }
}
