//! Element-wise activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// The supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Relu,
    LeakyRelu,
    Sigmoid,
    Tanh,
}

/// An element-wise activation layer (shape-preserving, any rank).
pub struct Activation {
    kind: Kind,
    /// Output cache — enough to compute every supported derivative.
    cached_out: Option<Tensor>,
    /// Input cache, needed by (leaky) ReLU whose derivative depends on
    /// the input sign rather than the output value at zero.
    cached_in: Option<Tensor>,
}

impl Activation {
    /// Rectified linear unit.
    pub fn relu() -> Self {
        Self { kind: Kind::Relu, cached_out: None, cached_in: None }
    }

    /// Leaky ReLU with slope 0.01 (used by GAN discriminators).
    pub fn leaky_relu() -> Self {
        Self { kind: Kind::LeakyRelu, cached_out: None, cached_in: None }
    }

    /// Logistic sigmoid.
    pub fn sigmoid() -> Self {
        Self { kind: Kind::Sigmoid, cached_out: None, cached_in: None }
    }

    /// Hyperbolic tangent.
    pub fn tanh() -> Self {
        Self { kind: Kind::Tanh, cached_out: None, cached_in: None }
    }

    fn apply(&self, v: f32) -> f32 {
        match self.kind {
            Kind::Relu => v.max(0.0),
            Kind::LeakyRelu => {
                if v >= 0.0 {
                    v
                } else {
                    0.01 * v
                }
            }
            Kind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Kind::Tanh => v.tanh(),
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut out = x.clone();
        for v in out.data_mut() {
            *v = self.apply(*v);
        }
        self.cached_in = Some(x.clone());
        self.cached_out = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.cached_out.as_ref().expect("backward before forward");
        let inp = self.cached_in.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), out.shape(), "activation grad shape mismatch");
        let mut gx = grad_out.clone();
        match self.kind {
            Kind::Relu => {
                for (g, &x) in gx.data_mut().iter_mut().zip(inp.data()) {
                    if x <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Kind::LeakyRelu => {
                for (g, &x) in gx.data_mut().iter_mut().zip(inp.data()) {
                    if x < 0.0 {
                        *g *= 0.01;
                    }
                }
            }
            Kind::Sigmoid => {
                for (g, &y) in gx.data_mut().iter_mut().zip(out.data()) {
                    *g *= y * (1.0 - y);
                }
            }
            Kind::Tanh => {
                for (g, &y) in gx.data_mut().iter_mut().zip(out.data()) {
                    *g *= 1.0 - y * y;
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn sample() -> Tensor {
        Tensor::from_flat(&[2, 3], vec![-1.5, -0.1, 0.0, 0.2, 1.0, 3.0])
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut a = Activation::relu();
        let y = a.forward(&sample(), true);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 0.2, 1.0, 3.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut a = Activation::sigmoid();
        let y = a.forward(&sample(), true);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((y.data()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradchecks_all_kinds() {
        // Input avoids the ReLU kink at 0 where the numeric derivative is
        // undefined.
        let x = Tensor::from_flat(&[2, 3], vec![-1.5, -0.1, 0.4, 0.2, 1.0, 3.0]);
        for mut a in [
            Activation::relu(),
            Activation::leaky_relu(),
            Activation::sigmoid(),
            Activation::tanh(),
        ] {
            gradcheck::check_input_grad(&mut a, &x, 1e-2);
        }
    }

    #[test]
    fn has_no_parameters() {
        let mut a = Activation::tanh();
        assert_eq!(a.n_params(), 0);
    }
}
