//! Long short-term memory layer with full backpropagation through time.
//!
//! Used by the LSTM auto-encoder augmenter (the taxonomy's LSTM-AE
//! entry, Tu et al. 2018) and available for DeepAR-style probabilistic
//! models.
//!
//! Equations (Hochreiter & Schmidhuber 1997, forget-gate variant):
//! ```text
//! i_t = σ(x_t W_i + h_{t−1} U_i + b_i)
//! f_t = σ(x_t W_f + h_{t−1} U_f + b_f)
//! o_t = σ(x_t W_o + h_{t−1} U_o + b_o)
//! g_t = tanh(x_t W_g + h_{t−1} U_g + b_g)
//! c_t = f_t ⊙ c_{t−1} + i_t ⊙ g_t
//! h_t = o_t ⊙ tanh(c_t)
//! ```
//! Input `[batch, time, features]` → output `[batch, time, hidden]`.

use super::Layer;
use crate::init::{glorot_uniform, recurrent_uniform};
use crate::tensor::Tensor;
use rand::Rng;

/// One LSTM layer.
pub struct Lstm {
    in_features: usize,
    hidden: usize,
    // Gate kernels, each input [in, hidden] / recurrent [hidden, hidden].
    w: [Vec<f32>; 4], // i, f, o, g
    u: [Vec<f32>; 4],
    b: [Vec<f32>; 4],
    gw: [Vec<f32>; 4],
    gu: [Vec<f32>; 4],
    gb: [Vec<f32>; 4],
    cache: Option<Cache>,
}

struct Cache {
    x: Tensor,
    h_prev: Vec<Vec<f32>>,
    c_prev: Vec<Vec<f32>>,
    gates: Vec<[Vec<f32>; 4]>, // post-activation i, f, o, g per step
    c: Vec<Vec<f32>>,          // cell state per step
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

fn matmul_acc(x: &[f32], w: &[f32], out: &mut [f32], n: usize, a: usize, b: usize) {
    for i in 0..n {
        let xi = &x[i * a..(i + 1) * a];
        let oi = &mut out[i * b..(i + 1) * b];
        for (k, &xv) in xi.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let wr = &w[k * b..(k + 1) * b];
            for (o, &wv) in oi.iter_mut().zip(wr) {
                *o += xv * wv;
            }
        }
    }
}

fn matmul_transb_acc(g: &[f32], w: &[f32], out: &mut [f32], n: usize, a: usize, b: usize) {
    for i in 0..n {
        let gi = &g[i * b..(i + 1) * b];
        let oi = &mut out[i * a..(i + 1) * a];
        for (k, o) in oi.iter_mut().enumerate() {
            let wr = &w[k * b..(k + 1) * b];
            *o += gi.iter().zip(wr).map(|(x, y)| x * y).sum::<f32>();
        }
    }
}

fn outer_acc(x: &[f32], g: &[f32], gw: &mut [f32], n: usize, a: usize, b: usize) {
    for i in 0..n {
        let xi = &x[i * a..(i + 1) * a];
        let gi = &g[i * b..(i + 1) * b];
        for (k, &xv) in xi.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let gwr = &mut gw[k * b..(k + 1) * b];
            for (w, &gv) in gwr.iter_mut().zip(gi) {
                *w += xv * gv;
            }
        }
    }
}

impl Lstm {
    /// New LSTM; the forget-gate bias starts at 1 (the standard trick to
    /// encourage remembering early in training).
    pub fn new<R: Rng + ?Sized>(in_features: usize, hidden: usize, rng: &mut R) -> Self {
        let ik = |rng: &mut R| glorot_uniform(rng, in_features, hidden, in_features * hidden);
        let rk = |rng: &mut R| recurrent_uniform(rng, hidden, hidden * hidden);
        let w = [ik(rng), ik(rng), ik(rng), ik(rng)];
        let u = [rk(rng), rk(rng), rk(rng), rk(rng)];
        let mut b = [
            vec![0.0; hidden],
            vec![0.0; hidden],
            vec![0.0; hidden],
            vec![0.0; hidden],
        ];
        for v in &mut b[1] {
            *v = 1.0; // forget gate
        }
        let zero_w = || {
            [
                vec![0.0; in_features * hidden],
                vec![0.0; in_features * hidden],
                vec![0.0; in_features * hidden],
                vec![0.0; in_features * hidden],
            ]
        };
        let zero_u = || {
            [
                vec![0.0; hidden * hidden],
                vec![0.0; hidden * hidden],
                vec![0.0; hidden * hidden],
                vec![0.0; hidden * hidden],
            ]
        };
        let zero_b = || {
            [
                vec![0.0; hidden],
                vec![0.0; hidden],
                vec![0.0; hidden],
                vec![0.0; hidden],
            ]
        };
        Self {
            in_features,
            hidden,
            w,
            u,
            b,
            gw: zero_w(),
            gu: zero_u(),
            gb: zero_b(),
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn step_input(x: &Tensor, t: usize) -> Vec<f32> {
        let (n, t_len, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut out = vec![0.0; n * f];
        for b in 0..n {
            let src = (b * t_len + t) * f;
            out[b * f..(b + 1) * f].copy_from_slice(&x.data()[src..src + f]);
        }
        out
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "Lstm expects [batch, time, features]");
        assert_eq!(x.shape()[2], self.in_features, "Lstm feature mismatch");
        let (n, t_len) = (x.shape()[0], x.shape()[1]);
        let h = self.hidden;
        let mut out = Tensor::zeros(&[n, t_len, h]);
        let mut h_state = vec![0.0f32; n * h];
        let mut c_state = vec![0.0f32; n * h];
        let mut cache = Cache {
            x: x.clone(),
            h_prev: Vec::with_capacity(t_len),
            c_prev: Vec::with_capacity(t_len),
            gates: Vec::with_capacity(t_len),
            c: Vec::with_capacity(t_len),
        };
        for t in 0..t_len {
            let xt = Self::step_input(x, t);
            cache.h_prev.push(h_state.clone());
            cache.c_prev.push(c_state.clone());
            // Pre-activations for the four gates.
            let mut pre: [Vec<f32>; 4] = [
                self.b[0].repeat(n),
                self.b[1].repeat(n),
                self.b[2].repeat(n),
                self.b[3].repeat(n),
            ];
            for (gate, pre_gate) in pre.iter_mut().enumerate() {
                matmul_acc(&xt, &self.w[gate], pre_gate, n, self.in_features, h);
                matmul_acc(&h_state, &self.u[gate], pre_gate, n, h, h);
            }
            let gates: [Vec<f32>; 4] = [
                pre[0].iter().map(|&v| sigmoid(v)).collect(),
                pre[1].iter().map(|&v| sigmoid(v)).collect(),
                pre[2].iter().map(|&v| sigmoid(v)).collect(),
                pre[3].iter().map(|&v| v.tanh()).collect(),
            ];
            for i in 0..n * h {
                c_state[i] = gates[1][i] * c_state[i] + gates[0][i] * gates[3][i];
                h_state[i] = gates[2][i] * c_state[i].tanh();
            }
            for b in 0..n {
                let dst = (b * t_len + t) * h;
                out.data_mut()[dst..dst + h].copy_from_slice(&h_state[b * h..(b + 1) * h]);
            }
            cache.gates.push(gates);
            cache.c.push(c_state.clone());
        }
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let x = &cache.x;
        let (n, t_len) = (x.shape()[0], x.shape()[1]);
        let h = self.hidden;
        let f = self.in_features;
        assert_eq!(grad_out.shape(), &[n, t_len, h], "Lstm grad shape mismatch");

        let mut gx = Tensor::zeros(&[n, t_len, f]);
        let mut dh_carry = vec![0.0f32; n * h];
        let mut dc_carry = vec![0.0f32; n * h];
        for t in (0..t_len).rev() {
            let xt = Self::step_input(x, t);
            let h_prev = &cache.h_prev[t];
            let c_prev = &cache.c_prev[t];
            let [gi, gf, go, gg] = &cache.gates[t];
            let c = &cache.c[t];

            let mut dh = dh_carry.clone();
            for b in 0..n {
                let src = (b * t_len + t) * h;
                for k in 0..h {
                    dh[b * h + k] += grad_out.data()[src + k];
                }
            }
            // Pre-activation gradients for the four gates.
            let mut dpre: [Vec<f32>; 4] = [
                vec![0.0; n * h],
                vec![0.0; n * h],
                vec![0.0; n * h],
                vec![0.0; n * h],
            ];
            let mut dc_prev = vec![0.0f32; n * h];
            for idx in 0..n * h {
                let tanh_c = c[idx].tanh();
                // h = o ⊙ tanh(c)
                let d_o = dh[idx] * tanh_c;
                let mut dc = dh[idx] * go[idx] * (1.0 - tanh_c * tanh_c) + dc_carry[idx];
                // c = f ⊙ c_prev + i ⊙ g
                let d_f = dc * c_prev[idx];
                let d_i = dc * gg[idx];
                let d_g = dc * gi[idx];
                dc *= gf[idx];
                dc_prev[idx] = dc;
                dpre[0][idx] = d_i * gi[idx] * (1.0 - gi[idx]);
                dpre[1][idx] = d_f * gf[idx] * (1.0 - gf[idx]);
                dpre[2][idx] = d_o * go[idx] * (1.0 - go[idx]);
                dpre[3][idx] = d_g * (1.0 - gg[idx] * gg[idx]);
            }
            let mut dh_prev = vec![0.0f32; n * h];
            let mut dxt = vec![0.0f32; n * f];
            for (gate, dpre_gate) in dpre.iter().enumerate() {
                outer_acc(&xt, dpre_gate, &mut self.gw[gate], n, f, h);
                outer_acc(h_prev, dpre_gate, &mut self.gu[gate], n, h, h);
                for b in 0..n {
                    for k in 0..h {
                        self.gb[gate][k] += dpre_gate[b * h + k];
                    }
                }
                matmul_transb_acc(dpre_gate, &self.u[gate], &mut dh_prev, n, h, h);
                matmul_transb_acc(dpre_gate, &self.w[gate], &mut dxt, n, f, h);
            }
            for b in 0..n {
                let dst = (b * t_len + t) * f;
                for k in 0..f {
                    gx.data_mut()[dst + k] += dxt[b * f + k];
                }
            }
            dh_carry = dh_prev;
            dc_carry = dc_prev;
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for gate in 0..4 {
            f(&mut self.w[gate], &mut self.gw[gate]);
        }
        for gate in 0..4 {
            f(&mut self.u[gate], &mut self.gu[gate]);
        }
        for gate in 0..4 {
            f(&mut self.b[gate], &mut self.gb[gate]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_batch_time_hidden() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let y = lstm.forward(&Tensor::zeros(&[2, 4, 3]), true);
        assert_eq!(y.shape(), &[2, 4, 5]);
    }

    #[test]
    fn input_gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x = Tensor::from_flat(
            &[2, 3, 2],
            vec![0.5, -0.3, 0.8, 0.1, -0.6, 0.4, 0.2, 0.9, -0.1, 0.3, 0.7, -0.5],
        );
        gradcheck::check_input_grad(&mut lstm, &x, 3e-2);
    }

    #[test]
    fn param_gradients_check_numerically() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(2, 2, &mut rng);
        let x = Tensor::from_flat(&[1, 3, 2], vec![0.5, -0.3, 0.8, 0.1, -0.6, 0.4]);
        gradcheck::check_param_grad(&mut lstm, &x, 3e-2);
    }

    #[test]
    fn memory_cell_carries_long_range_information() {
        // Impulse at t=0 must still influence the output many steps later.
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(1, 4, &mut rng);
        let mut with_impulse = Tensor::zeros(&[1, 12, 1]);
        with_impulse.data_mut()[0] = 2.0;
        let without = Tensor::zeros(&[1, 12, 1]);
        let ya = lstm.forward(&with_impulse, true);
        let yb = lstm.forward(&without, true);
        let last_a = &ya.data()[11 * 4..12 * 4];
        let last_b = &yb.data()[11 * 4..12 * 4];
        let diff: f32 = last_a.iter().zip(last_b).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "impulse forgotten: {diff}");
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(1, 3, &mut rng);
        let mut buffers = Vec::new();
        lstm.visit_params(&mut |p, _| buffers.push(p.to_vec()));
        // Buffers: 4 w, 4 u, then 4 b (i, f, o, g).
        assert!(buffers[9].iter().all(|&v| v == 1.0)); // forget bias
        assert!(buffers[8].iter().all(|&v| v == 0.0)); // input bias
    }
}
