//! Batch normalisation over channels of `[batch, ch, time]` tensors.

use super::Layer;
use crate::tensor::Tensor;
use tsda_linalg::simd;

/// Batch normalisation (Ioffe & Szegedy) for 1-D convolutional feature
/// maps: statistics are taken per channel over the batch and time axes.
pub struct BatchNorm1d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    g_gamma: Vec<f32>,
    g_beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Caches from the last training forward.
    cached_xhat: Option<Tensor>,
    cached_std: Vec<f32>,
}

impl BatchNorm1d {
    /// New batch-norm layer with unit gamma / zero beta.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            g_gamma: vec![0.0; channels],
            g_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_xhat: None,
            cached_std: vec![0.0; channels],
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "BatchNorm1d expects [batch, ch, time]");
        assert_eq!(x.shape()[1], self.channels, "BatchNorm1d channel mismatch");
        let n = x.shape()[0];
        let t_len = x.shape()[2];
        let count = (n * t_len) as f32;
        let mut out = x.clone();
        let mut xhat = x.clone();
        // Each `(batch, channel)` run is a contiguous `t_len` slice of
        // the row-major tensor; statistics use the striped fixed-tree
        // reductions from `tsda_linalg::simd` (per-sample partials added
        // in ascending batch order), and the normalise+affine pass is
        // one fused kernel per run with the division pre-inverted. All
        // of it is bit-identical across dispatch levels.
        let lvl = simd::level();
        let row = |b: usize, c: usize| (b * self.channels + c) * t_len;
        for c in 0..self.channels {
            let (mean, var) = if train {
                let mut sum = 0.0;
                for b in 0..n {
                    sum += simd::sum_f32_with(lvl, &x.data()[row(b, c)..row(b, c) + t_len]);
                }
                let mean = sum / count;
                let mut var = 0.0;
                for b in 0..n {
                    var += simd::sumsq_centered_f32_with(
                        lvl,
                        &x.data()[row(b, c)..row(b, c) + t_len],
                        mean,
                    );
                }
                var /= count;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let std = (var + self.eps).sqrt();
            self.cached_std[c] = std;
            let inv_std = 1.0 / std;
            let (gamma, beta) = (self.gamma[c], self.beta[c]);
            for b in 0..n {
                let r = row(b, c);
                simd::bn_forward_f32_with(
                    lvl,
                    &x.data()[r..r + t_len],
                    mean,
                    inv_std,
                    gamma,
                    beta,
                    &mut xhat.data_mut()[r..r + t_len],
                    &mut out.data_mut()[r..r + t_len],
                );
            }
        }
        if train {
            self.cached_xhat = Some(xhat);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .as_ref()
            .expect("BatchNorm1d backward requires a training forward");
        let n = grad_out.shape()[0];
        let t_len = grad_out.shape()[2];
        let count = (n * t_len) as f32;
        let mut gx = Tensor::zeros(grad_out.shape());
        for c in 0..self.channels {
            let mut sum_g = 0.0;
            let mut sum_gh = 0.0;
            for b in 0..n {
                for t in 0..t_len {
                    let g = grad_out.at3(b, c, t);
                    sum_g += g;
                    sum_gh += g * xhat.at3(b, c, t);
                    self.g_beta[c] += g;
                    self.g_gamma[c] += g * xhat.at3(b, c, t);
                }
            }
            let scale = self.gamma[c] / self.cached_std[c];
            for b in 0..n {
                for t in 0..t_len {
                    let g = grad_out.at3(b, c, t);
                    let h = xhat.at3(b, c, t);
                    *gx.at3_mut(b, c, t) =
                        scale * (g - sum_g / count - h * sum_gh / count);
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.gamma, &mut self.g_gamma);
        f(&mut self.beta, &mut self.g_beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    fn sample() -> Tensor {
        Tensor::from_flat(
            &[2, 2, 3],
            vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 4.0, 5.0, 6.0, 40.0, 50.0, 60.0],
        )
    }

    #[test]
    fn training_output_is_standardised() {
        let mut bn = BatchNorm1d::new(2);
        let y = bn.forward(&sample(), true);
        for c in 0..2 {
            let vals: Vec<f32> = (0..2)
                .flat_map(|b| (0..3).map(move |t| (b, t)))
                .map(|(b, t)| y.at3(b, c, t))
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-5, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm1d::new(2);
        // Saturate the running stats with many training passes.
        for _ in 0..200 {
            let _ = bn.forward(&sample(), true);
        }
        let y_eval = bn.forward(&sample(), false);
        let y_train = bn.forward(&sample(), true);
        // Converged running stats ≈ batch stats, so outputs agree loosely.
        for (a, b) in y_eval.data().iter().zip(y_train.data()) {
            assert!((a - b).abs() < 0.15, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_check_numerically() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_flat(
            &[2, 2, 3],
            vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7, -0.2, 0.9, 1.1, 0.0, -1.3, 0.4],
        );
        gradcheck::check_input_grad(&mut bn, &x, 3e-2);
        gradcheck::check_param_grad(&mut bn, &x, 3e-2);
    }

    #[test]
    fn gamma_beta_shift_output() {
        let mut bn = BatchNorm1d::new(1);
        bn.visit_params(&mut |p, _| {
            p[0] = if p[0] == 1.0 { 2.0 } else { 3.0 } // gamma=2, beta=3
        });
        let x = Tensor::from_flat(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = bn.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mean - 3.0).abs() < 1e-5);
    }
}
