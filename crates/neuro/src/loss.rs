//! Loss functions. Each returns `(mean loss, gradient w.r.t. input)`.

use crate::tensor::Tensor;

/// Softmax cross-entropy on logits `[batch, classes]` against integer
/// targets. Gradient is `(softmax − onehot) / batch`.
///
/// # Panics
/// Panics if `targets.len()` differs from the batch size or any target is
/// out of range.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "cross entropy expects rank-2 logits");
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    assert_eq!(targets.len(), n, "target count mismatch");
    let mut grad = Tensor::zeros(&[n, c]);
    let mut row_losses = Vec::with_capacity(n);
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        assert!(t < c, "target {t} out of range for {c} classes");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = tsda_core::math::sum_stable(exps.iter().copied());
        row_losses.push(sum.ln() + max - row[t]);
        let grow = &mut grad.data_mut()[i * c..(i + 1) * c];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = exps[j] / sum;
            *g = (p - if j == t { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    let loss: f32 = tsda_core::math::sum_stable(row_losses.iter().copied());
    (loss / n as f32, grad)
}

/// Softmax probabilities per row of `[batch, classes]` logits.
pub fn softmax(logits: &Tensor) -> Tensor {
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    let mut out = logits.clone();
    for i in 0..n {
        let row = &mut out.data_mut()[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        for v in row.iter_mut() {
            *v = (*v - max).exp();
        }
        let sum: f32 = tsda_core::math::sum_stable(row.iter().copied());
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean squared error against a same-shape target.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    let mut sq = Vec::with_capacity(pred.len());
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        sq.push(d * d);
        *g = 2.0 * d / n;
    }
    let loss: f32 = tsda_core::math::sum_stable(sq.iter().copied());
    (loss / n, grad)
}

/// Binary cross-entropy on logits against `{0,1}` targets of the same
/// shape (numerically stable log-sum-exp form). Used by the TimeGAN
/// discriminator.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.len() as f32;
    let mut grad = logits.clone();
    let mut terms = Vec::with_capacity(logits.len());
    for (g, &t) in grad.data_mut().iter_mut().zip(targets.data()) {
        let x = *g;
        // loss = max(x,0) − x·t + ln(1 + e^{−|x|})
        terms.push(x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln());
        let sig = 1.0 / (1.0 + (-x).exp());
        *g = (sig - t) / n;
    }
    let loss: f32 = tsda_core::math::sum_stable(terms.iter().copied());
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let logits = Tensor::from_flat(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "{loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_flat(&[1, 3], vec![1.0, -2.0, 0.5]);
        let (_, g) = softmax_cross_entropy(&logits, &[2]);
        let s: f32 = g.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_checks_numerically() {
        let logits = Tensor::from_flat(&[2, 3], vec![0.3, -0.8, 0.2, 1.0, 0.0, -0.5]);
        let targets = [1usize, 0];
        let (_, g) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &targets).0
                - softmax_cross_entropy(&lm, &targets).0)
                / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3, "{num} vs {}", g.data()[i]);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let p = softmax(&Tensor::from_flat(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = Tensor::from_flat(&[2], vec![1.0, 2.0]);
        let (l, g) = mse_loss(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Tensor::from_flat(&[1], vec![3.0]);
        let target = Tensor::from_flat(&[1], vec![1.0]);
        let (l, g) = mse_loss(&pred, &target);
        assert_eq!(l, 4.0);
        assert_eq!(g.data(), &[4.0]); // 2·(3−1)/1
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let logits = Tensor::from_flat(&[2], vec![100.0, -100.0]);
        let targets = Tensor::from_flat(&[2], vec![1.0, 0.0]);
        let (l, _) = bce_with_logits(&logits, &targets);
        assert!(l.is_finite());
        assert!(l < 1e-6);
    }

    #[test]
    fn bce_gradient_checks_numerically() {
        let logits = Tensor::from_flat(&[3], vec![0.5, -1.2, 2.0]);
        let targets = Tensor::from_flat(&[3], vec![1.0, 0.0, 1.0]);
        let (_, g) = bce_with_logits(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }
}
