//! Optimisers. Adam is what both the InceptionTime reference (fastai) and
//! the TimeGAN reference use; SGD with momentum is kept for ablations.

use crate::layers::Layer;

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// SGD with the given rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Apply one update step using the gradients accumulated in `layer`.
    pub fn step<L: Layer + ?Sized>(&mut self, layer: &mut L) {
        let (lr, mom) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        layer.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), p.len(), "optimiser used with a different layer");
            for i in 0..p.len() {
                v[i] = mom * v[i] + g[i];
                p[i] -= lr * v[i];
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba 2015) with optional global-norm gradient clipping.
pub struct Adam {
    /// Learning rate (mutable so cyclical schedules can drive it).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Clip the global gradient norm to this value when `Some`.
    pub clip_norm: Option<f32>,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: None, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Enable global-norm gradient clipping (useful for GRU stacks).
    pub fn with_clip(mut self, clip_norm: f32) -> Self {
        self.clip_norm = Some(clip_norm);
        self
    }

    /// Apply one update step using the gradients accumulated in `layer`.
    ///
    /// Moment buffers are allocated lazily on the first step and keyed by
    /// visit order, so a given `Adam` must always be used with the same
    /// layer (or stack).
    pub fn step<L: Layer + ?Sized>(&mut self, layer: &mut L) {
        self.t += 1;
        // Optional clipping needs the global norm first.
        let scale = if let Some(clip) = self.clip_norm {
            let mut sq_terms: Vec<f64> = Vec::new();
            layer.visit_params(&mut |_, g| {
                sq_terms.extend(g.iter().map(|&v| (v as f64) * (v as f64)));
            });
            let norm = tsda_core::math::sum_stable(sq_terms.iter().copied()).sqrt() as f32;
            if norm > clip && norm > 0.0 {
                clip / norm
            } else {
                1.0
            }
        } else {
            1.0
        };

        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        layer.visit_params(&mut |p, g| {
            if m_all.len() <= idx {
                m_all.push(vec![0.0; p.len()]);
                v_all.push(vec![0.0; p.len()]);
            }
            let m = &mut m_all[idx];
            let v = &mut v_all[idx];
            assert_eq!(m.len(), p.len(), "optimiser used with a different layer");
            for i in 0..p.len() {
                let gi = g[i] * scale;
                m[i] = b1 * m[i] + (1.0 - b1) * gi;
                v[i] = b2 * v[i] + (1.0 - b2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::loss::mse_loss;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Adam on a tiny regression: y = 2x. Loss must fall by >100x.
    #[test]
    fn adam_fits_linear_regression() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Dense::new(1, 1, &mut rng);
        let mut opt = Adam::new(0.05);
        let x = Tensor::from_flat(&[4, 1], vec![-1.0, 0.0, 1.0, 2.0]);
        let y = Tensor::from_flat(&[4, 1], vec![-2.0, 0.0, 2.0, 4.0]);
        let initial = mse_loss(&net.forward(&x, true), &y).0;
        for _ in 0..300 {
            let out = net.forward(&x, true);
            let (_, grad) = mse_loss(&out, &y);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net);
        }
        let fin = mse_loss(&net.forward(&x, true), &y).0;
        assert!(fin < initial / 100.0, "initial {initial}, final {fin}");
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Dense::new(1, 1, &mut rng);
        let mut opt = Adam::new(0.1).with_clip(1e-3);
        // Huge target creates a huge gradient; the clipped step must stay
        // bounded by ~lr regardless.
        let x = Tensor::from_flat(&[1, 1], vec![1.0]);
        let y = Tensor::from_flat(&[1, 1], vec![1e6]);
        let mut before = Vec::new();
        net.visit_params(&mut |p, _| before.extend_from_slice(p));
        let out = net.forward(&x, true);
        let (_, grad) = mse_loss(&out, &y);
        net.zero_grad();
        let _ = net.backward(&grad);
        opt.step(&mut net);
        let mut after = Vec::new();
        net.visit_params(&mut |p, _| after.extend_from_slice(p));
        for (b, a) in before.iter().zip(&after) {
            assert!((a - b).abs() <= 0.11, "step too large: {b} -> {a}");
        }
    }

    #[test]
    #[should_panic(expected = "different layer")]
    fn rejects_layer_swap() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Dense::new(2, 2, &mut rng);
        let mut b = Dense::new(3, 3, &mut rng);
        let mut opt = Adam::new(0.01);
        let xa = Tensor::zeros(&[1, 2]);
        let _ = a.forward(&xa, true);
        let _ = a.backward(&Tensor::zeros(&[1, 2]));
        opt.step(&mut a);
        opt.step(&mut b);
    }
}

#[cfg(test)]
mod sgd_tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::loss::mse_loss;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sgd_with_momentum_fits_linear_regression() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Dense::new(1, 1, &mut rng);
        let mut opt = Sgd::new(0.05, 0.9);
        let x = Tensor::from_flat(&[4, 1], vec![-1.0, 0.0, 1.0, 2.0]);
        let y = Tensor::from_flat(&[4, 1], vec![-3.0, 0.0, 3.0, 6.0]);
        let initial = mse_loss(&net.forward(&x, true), &y).0;
        for _ in 0..200 {
            let out = net.forward(&x, true);
            let (_, grad) = mse_loss(&out, &y);
            net.zero_grad();
            let _ = net.backward(&grad);
            opt.step(&mut net);
        }
        let fin = mse_loss(&net.forward(&x, true), &y).0;
        assert!(fin < initial / 50.0, "initial {initial}, final {fin}");
    }

    #[test]
    fn zero_momentum_is_plain_gradient_descent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Dense::new(1, 1, &mut rng);
        let mut opt = Sgd::new(0.1, 0.0);
        let x = Tensor::from_flat(&[1, 1], vec![1.0]);
        let y = Tensor::from_flat(&[1, 1], vec![5.0]);
        let mut w_before = Vec::new();
        net.visit_params(&mut |p, _| w_before.extend_from_slice(p));
        let out = net.forward(&x, true);
        let (_, grad) = mse_loss(&out, &y);
        net.zero_grad();
        let _ = net.backward(&grad);
        // Capture gradients, then verify p' = p − lr·g exactly.
        let mut grads = Vec::new();
        net.visit_params(&mut |_, g| grads.extend_from_slice(g));
        opt.step(&mut net);
        let mut w_after = Vec::new();
        net.visit_params(&mut |p, _| w_after.extend_from_slice(p));
        for ((b, a), g) in w_before.iter().zip(&w_after).zip(&grads) {
            assert!((a - (b - 0.1 * g)).abs() < 1e-7);
        }
    }
}
