//! A minimal CPU neural-network framework.
//!
//! The paper trains two neural systems we must reproduce: InceptionTime
//! (a deep 1-D convolutional ensemble) and TimeGAN (five cooperating GRU
//! networks). No offline crate provides training-capable layers, so this
//! crate implements them: explicit forward/backward layers over a small
//! `f32` [`Tensor`], an [`optim::Adam`] optimiser, classification /
//! regression losses, a mini-batch training loop with early stopping, and
//! the cyclical learning-rate range test the paper uses to pick learning
//! rates (Smith 2017).
//!
//! Design notes:
//! * layers cache what backward needs during forward — no autodiff tape;
//! * parameters are visited through [`layers::Layer::visit_params`], so
//!   optimisers are agnostic to layer internals;
//! * everything is deterministic given a seed.

#![forbid(unsafe_code)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod lr;
pub mod optim;
pub mod tensor;
pub mod train;

pub use layers::{Layer, Activation, BatchNorm1d, Conv1d, Dense, GlobalAvgPool1d, Gru, Lstm, MaxPool1dSame};
pub use loss::{mse_loss, softmax_cross_entropy, bce_with_logits};
pub use optim::{Adam, Sgd};
pub use tensor::Tensor;
