//! Cyclical learning-rate range test (Smith 2017).
//!
//! The paper's protocol (§IV-D) runs an LR range test per dataset and
//! trains at the "valley" learning rate. [`valley_lr`] implements the
//! fastai valley heuristic on a recorded `(lr, loss)` curve; the caller
//! (the InceptionTime trainer) produces the curve by sweeping
//! exponentially growing rates over a few mini-batches.

/// Exponentially spaced learning rates from `lo` to `hi`.
pub fn lr_schedule(lo: f32, hi: f32, steps: usize) -> Vec<f32> {
    assert!(lo > 0.0 && hi > lo, "lr schedule needs 0 < lo < hi");
    assert!(steps >= 2, "lr schedule needs at least 2 steps");
    let ratio = (hi / lo).ln();
    (0..steps)
        .map(|i| lo * (ratio * i as f32 / (steps - 1) as f32).exp())
        .collect()
}

/// Pick the "valley" learning rate from a range-test curve.
///
/// The fastai valley algorithm: find the longest strictly descending
/// run of the (lightly smoothed) loss curve and return the LR about
/// two-thirds into it — steep enough to learn fast, far from the blow-up.
/// Falls back to the LR of the minimum loss when no descending run
/// exists.
pub fn valley_lr(lrs: &[f32], losses: &[f32]) -> f32 {
    assert_eq!(lrs.len(), losses.len(), "lr/loss length mismatch");
    assert!(!lrs.is_empty(), "empty range test");
    if lrs.len() == 1 {
        return lrs[0];
    }
    // Light exponential smoothing tames mini-batch noise.
    let mut smooth = Vec::with_capacity(losses.len());
    let mut acc = losses[0];
    for &l in losses {
        acc = 0.7 * acc + 0.3 * l;
        smooth.push(acc);
    }
    // Longest descending run.
    let mut best_start = 0;
    let mut best_len = 1;
    let mut start = 0;
    for i in 1..smooth.len() {
        if smooth[i] < smooth[i - 1] {
            if i - start + 1 > best_len {
                best_len = i - start + 1;
                best_start = start;
            }
        } else {
            start = i;
        }
    }
    if best_len <= 1 {
        let arg = losses
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        return lrs[arg];
    }
    let idx = best_start + (best_len * 2) / 3;
    lrs[idx.min(lrs.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_exponential_and_bounded() {
        let s = lr_schedule(1e-5, 1e-1, 9);
        assert!((s[0] - 1e-5).abs() < 1e-9);
        assert!((s[8] - 1e-1).abs() < 1e-4);
        // Constant ratio between consecutive entries.
        let r0 = s[1] / s[0];
        for w in s.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-3);
        }
    }

    #[test]
    fn valley_sits_inside_descending_region() {
        // Classic range-test shape: plateau, descent, blow-up.
        let lrs = lr_schedule(1e-5, 1.0, 30);
        let losses: Vec<f32> = (0..30)
            .map(|i| match i {
                0..=9 => 2.0,
                10..=24 => 2.0 - 0.12 * (i - 9) as f32,
                _ => 2.0 + (i - 24) as f32,
            })
            .collect();
        let lr = valley_lr(&lrs, &losses);
        assert!(lr > lrs[10] && lr < lrs[26], "{lr}");
    }

    #[test]
    fn flat_curve_falls_back_to_minimum() {
        let lrs = vec![0.1, 0.2, 0.3];
        let losses = vec![1.0, 1.0, 1.0];
        let lr = valley_lr(&lrs, &losses);
        assert!(lrs.contains(&lr));
    }

    #[test]
    fn single_point_is_returned() {
        assert_eq!(valley_lr(&[0.01], &[5.0]), 0.01);
    }
}
