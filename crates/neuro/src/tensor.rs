//! A small dense `f32` tensor.
//!
//! Rank is dynamic but the layers in this crate only use rank 2
//! (`[batch, features]`) and rank 3 (`[batch, channels, time]`).

/// Dense row-major `f32` tensor.
#[derive(Clone, Default, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self { shape: Vec::from(shape), data: vec![0.0; n] }
    }

    /// Build from a flat buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape product.
    pub fn from_flat(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "tensor buffer does not match shape {shape:?}"
        );
        Self { shape: shape.to_vec(), data }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Rank-2 element access.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Rank-2 mutable element access.
    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[i * self.shape[1] + j]
    }

    /// Rank-3 element access (`[batch, channel, time]`).
    #[inline]
    pub fn at3(&self, b: usize, c: usize, t: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(b * self.shape[1] + c) * self.shape[2] + t]
    }

    /// Rank-3 mutable element access.
    #[inline]
    pub fn at3_mut(&mut self, b: usize, c: usize, t: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        &mut self.data[(b * self.shape[1] + c) * self.shape[2] + t]
    }

    /// Overwrite this tensor with `src`'s shape and data, reusing the
    /// existing buffers — after the first call at a given size this
    /// performs no allocation, unlike `clone()`.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.resize(src.data.len(), 0.0);
        self.data.copy_from_slice(&src.data);
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape element count mismatch"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Select rows (axis 0) by index into a new tensor.
    pub fn select_rows(&self, idx: &[usize]) -> Tensor {
        let row: usize = self.shape[1..].iter().product();
        let mut data = Vec::with_capacity(idx.len() * row);
        for &i in idx {
            data.extend_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        let mut shape = self.shape.clone();
        shape[0] = idx.len();
        Tensor { shape, data }
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "tensor add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Mean of all elements; 0 for empty.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            tsda_core::math::sum_stable(self.data.iter().copied()) / self.data.len() as f32
        }
    }

    /// Maximum absolute element; 0 for empty.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 12 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
    }

    #[test]
    fn rank2_indexing_row_major() {
        let t = Tensor::from_flat(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.at2(0, 2), 2.0);
    }

    #[test]
    fn rank3_indexing() {
        let t = Tensor::from_flat(&[2, 2, 2], (0..8).map(|v| v as f32).collect());
        assert_eq!(t.at3(1, 0, 1), 5.0);
        assert_eq!(t.at3(0, 1, 0), 2.0);
    }

    #[test]
    fn select_rows_copies_in_order() {
        let t = Tensor::from_flat(&[3, 2], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = t.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(s.shape(), &[2, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_flat(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).reshape(&[4]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "reshape element count mismatch")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    fn copy_from_reuses_capacity() {
        let src = Tensor::from_flat(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut dst = Tensor::zeros(&[3, 3]);
        let cap = dst.data.capacity();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.data.capacity(), cap, "shrinking copy must not reallocate");
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_flat(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_flat(&[2], vec![3.0, -1.0]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[8.0, 2.0]);
    }
}
