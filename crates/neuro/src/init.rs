//! Weight initialisation schemes.

use rand::Rng;

/// He (Kaiming) uniform initialisation for ReLU networks:
/// `U(−√(6/fan_in), √(6/fan_in))`.
pub fn he_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, count: usize) -> Vec<f32> {
    let bound = (6.0 / fan_in.max(1) as f64).sqrt() as f32;
    (0..count).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Glorot (Xavier) uniform initialisation for tanh/sigmoid networks:
/// `U(−√(6/(fan_in+fan_out)), √(6/(fan_in+fan_out)))`.
pub fn glorot_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    fan_in: usize,
    fan_out: usize,
    count: usize,
) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
    (0..count).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Orthogonal-ish initialisation for recurrent kernels: Glorot scaled by
/// 0.5 keeps GRU gates in their linear regime at the start of training.
pub fn recurrent_uniform<R: Rng + ?Sized>(rng: &mut R, hidden: usize, count: usize) -> Vec<f32> {
    let bound = 0.5 * (6.0 / (2 * hidden).max(1) as f64).sqrt() as f32;
    (0..count).map(|_| rng.gen_range(-bound..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = he_uniform(&mut rng, 64, 1000);
        let bound = (6.0f64 / 64.0).sqrt() as f32;
        assert!(w.iter().all(|v| v.abs() <= bound));
        // Not degenerate.
        assert!(w.iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn glorot_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = glorot_uniform(&mut rng, 4, 4, 1000);
        let large = glorot_uniform(&mut rng, 400, 400, 1000);
        let rms = |v: &[f32]| (v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32).sqrt();
        assert!(rms(&small) > 3.0 * rms(&large));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_uniform(&mut StdRng::seed_from_u64(9), 10, 5);
        let b = he_uniform(&mut StdRng::seed_from_u64(9), 10, 5);
        assert_eq!(a, b);
    }
}
