//! Mini-batch training loop with early stopping, mirroring the paper's
//! protocol: train up to `max_epochs`, stop after `patience` epochs
//! without validation improvement, keep the best-by-validation weights.

use crate::layers::Layer;
use crate::loss::{softmax, softmax_cross_entropy};
use crate::optim::Adam;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs (paper: 200).
    pub max_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Early-stopping patience in epochs (paper: 30).
    pub patience: usize,
    /// Learning rate for Adam.
    pub lr: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { max_epochs: 200, batch_size: 32, patience: 30, lr: 1e-3 }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs_run: usize,
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
    /// Per-epoch `(train_loss, val_accuracy)` history.
    pub history: Vec<(f32, f64)>,
}

/// Snapshot every parameter AND state buffer of a layer (for best-model
/// restore). Batch-norm running statistics live in the state buffers;
/// restoring weights without them corrupts eval-mode predictions.
pub fn snapshot_params<L: Layer + ?Sized>(layer: &mut L) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p, _| out.push(p.to_vec()));
    layer.visit_buffers(&mut |b| out.push(b.to_vec()));
    out
}

/// Restore parameters and state buffers captured by [`snapshot_params`].
pub fn restore_params<L: Layer + ?Sized>(layer: &mut L, snap: &[Vec<f32>]) {
    let mut i = 0;
    layer.visit_params(&mut |p, _| {
        p.copy_from_slice(&snap[i]);
        i += 1;
    });
    layer.visit_buffers(&mut |b| {
        b.copy_from_slice(&snap[i]);
        i += 1;
    });
    assert_eq!(i, snap.len(), "snapshot does not match layer");
}

/// Predicted class per row of a logits tensor.
pub fn predict_classes<L: Layer + ?Sized>(model: &mut L, x: &Tensor) -> Vec<usize> {
    let probs = softmax(&model.forward(x, false));
    let c = probs.shape()[1];
    (0..probs.shape()[0])
        .map(|i| {
            let row = &probs.data()[i * c..(i + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

/// Classification accuracy of `model` on `(x, y)`.
pub fn evaluate_accuracy<L: Layer + ?Sized>(model: &mut L, x: &Tensor, y: &[usize]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let pred = predict_classes(model, x);
    let ok = pred.iter().zip(y).filter(|(p, t)| p == t).count();
    ok as f64 / y.len() as f64
}

/// Train a softmax classifier with early stopping.
///
/// `x_train` rows are the samples (any rank ≥ 2; axis 0 is the batch).
/// Returns the report; the model is left holding the best-validation
/// weights.
pub fn train_classifier<L: Layer + ?Sized, R: Rng>(
    model: &mut L,
    x_train: &Tensor,
    y_train: &[usize],
    x_val: &Tensor,
    y_val: &[usize],
    cfg: &TrainConfig,
    rng: &mut R,
) -> TrainReport {
    assert_eq!(x_train.shape()[0], y_train.len(), "train size mismatch");
    assert_eq!(x_val.shape()[0], y_val.len(), "val size mismatch");
    let n = y_train.len();
    let mut opt = Adam::new(cfg.lr).with_clip(5.0);
    let mut best_acc = -1.0f64;
    let mut best_snap: Option<Vec<Vec<f32>>> = None;
    let mut since_best = 0usize;
    let mut history = Vec::new();
    let mut epochs_run = 0;

    let mut order: Vec<usize> = (0..n).collect();
    for _epoch in 0..cfg.max_epochs {
        epochs_run += 1;
        order.shuffle(rng);
        let mut batch_losses = Vec::new();
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let xb = x_train.select_rows(chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y_train[i]).collect();
            let logits = model.forward(&xb, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &yb);
            model.zero_grad();
            let _ = model.backward(&grad);
            opt.step(model);
            batch_losses.push(loss);
        }
        let epoch_loss: f32 = tsda_core::math::sum_stable(batch_losses.iter().copied());
        let batches = batch_losses.len();
        let val_acc = if y_val.is_empty() {
            // No validation data: track training loss instead (lower is
            // better → negate so "greater is better" logic still works).
            -f64::from(epoch_loss / batches.max(1) as f32)
        } else {
            evaluate_accuracy(model, x_val, y_val)
        };
        history.push((epoch_loss / batches.max(1) as f32, val_acc));
        if val_acc > best_acc {
            best_acc = val_acc;
            best_snap = Some(snapshot_params(model));
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience {
                break;
            }
        }
    }
    if let Some(snap) = &best_snap {
        restore_params(model, snap);
    }
    TrainReport { epochs_run, best_val_accuracy: best_acc.max(0.0), history }
}

/// Run an LR range test: sweep `steps` exponentially growing rates, one
/// mini-batch each, recording the training loss; return the valley LR.
/// The model's parameters are restored afterwards.
#[allow(clippy::too_many_arguments)] // mirrors the sweep's knobs 1:1
pub fn lr_range_test<L: Layer + ?Sized, R: Rng>(
    model: &mut L,
    x_train: &Tensor,
    y_train: &[usize],
    batch_size: usize,
    lo: f32,
    hi: f32,
    steps: usize,
    rng: &mut R,
) -> f32 {
    let snap = snapshot_params(model);
    let lrs = crate::lr::lr_schedule(lo, hi, steps);
    let n = y_train.len();
    let mut losses = Vec::with_capacity(steps);
    let mut opt = Adam::new(lo).with_clip(5.0);
    for &lr in &lrs {
        opt.lr = lr;
        let idx: Vec<usize> = (0..batch_size.min(n)).map(|_| rng.gen_range(0..n)).collect();
        let xb = x_train.select_rows(&idx);
        let yb: Vec<usize> = idx.iter().map(|&i| y_train[i]).collect();
        let logits = model.forward(&xb, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &yb);
        model.zero_grad();
        let _ = model.backward(&grad);
        opt.step(model);
        losses.push(loss);
        if !loss.is_finite() || loss > losses[0] * 20.0 {
            // Blown up: pad the tail so valley detection sees the cliff.
            while losses.len() < steps {
                losses.push(loss.max(losses[0] * 20.0));
            }
            break;
        }
    }
    restore_params(model, &snap);
    let used = losses.len();
    crate::lr::valley_lr(&lrs[..used], &losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two Gaussian blobs in 2-D: a tiny MLP must reach high accuracy.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let (cx, cy): (f32, f32) = if c == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            data.push(cx + rng.gen_range(-0.5f32..0.5));
            data.push(cy + rng.gen_range(-0.5f32..0.5));
            labels.push(c);
        }
        (Tensor::from_flat(&[n, 2], data), labels)
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ])
    }

    #[test]
    fn trains_to_high_accuracy_on_separable_blobs() {
        let (x, y) = blobs(80, 0);
        let (xv, yv) = blobs(40, 1);
        let mut model = mlp(2);
        let cfg = TrainConfig { max_epochs: 60, batch_size: 16, patience: 15, lr: 0.02 };
        let mut rng = StdRng::seed_from_u64(3);
        let report = train_classifier(&mut model, &x, &y, &xv, &yv, &cfg, &mut rng);
        assert!(report.best_val_accuracy > 0.95, "{report:?}");
        assert!(evaluate_accuracy(&mut model, &xv, &yv) > 0.95);
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let (x, y) = blobs(40, 4);
        let (xv, yv) = blobs(20, 5);
        let mut model = mlp(6);
        let cfg = TrainConfig { max_epochs: 500, batch_size: 16, patience: 5, lr: 0.05 };
        let mut rng = StdRng::seed_from_u64(7);
        let report = train_classifier(&mut model, &x, &y, &xv, &yv, &cfg, &mut rng);
        assert!(report.epochs_run < 500, "{}", report.epochs_run);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut model = mlp(8);
        let snap = snapshot_params(&mut model);
        // Perturb.
        model.visit_params(&mut |p, _| {
            for v in p.iter_mut() {
                *v += 1.0;
            }
        });
        restore_params(&mut model, &snap);
        let now = snapshot_params(&mut model);
        assert_eq!(snap, now);
    }

    #[test]
    fn snapshot_captures_batchnorm_running_statistics() {
        use crate::layers::BatchNorm1d;
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_flat(&[2, 1, 2], vec![5.0, 5.0, 7.0, 7.0]);
        let _ = bn.forward(&x, true);
        let snap = snapshot_params(&mut bn);
        // Drift the running stats with very different data.
        let y = Tensor::from_flat(&[2, 1, 2], vec![-90.0, -90.0, -110.0, -110.0]);
        for _ in 0..50 {
            let _ = bn.forward(&y, true);
        }
        restore_params(&mut bn, &snap);
        // Eval-mode output on the original data must reflect the ORIGINAL
        // running stats (mean ≈ 0.6 after one step), not the drifted ones;
        // with drifted stats the normalised output would be ≈ +3 sigma.
        let out = bn.forward(&x, false);
        assert!(
            out.data().iter().all(|v| v.abs() < 10.0),
            "restored running stats are wrong: {:?}",
            out.data()
        );
        // And the drifted stats genuinely differ: without restore the
        // output would be far away.
        let mut drifted = BatchNorm1d::new(1);
        for _ in 0..50 {
            let _ = drifted.forward(&y, true);
        }
        let bad = drifted.forward(&x, false);
        assert!(bad.data().iter().any(|v| v.abs() > 5.0));
    }

    #[test]
    fn lr_range_test_returns_finite_rate_and_restores_params() {
        let (x, y) = blobs(60, 9);
        let mut model = mlp(10);
        let before = snapshot_params(&mut model);
        let mut rng = StdRng::seed_from_u64(11);
        let lr = lr_range_test(&mut model, &x, &y, 16, 1e-5, 1.0, 20, &mut rng);
        assert!(lr.is_finite() && lr > 0.0 && lr <= 1.0);
        let after = snapshot_params(&mut model);
        assert_eq!(before, after);
    }

    #[test]
    fn predict_classes_matches_argmax() {
        let mut model = mlp(12);
        let (x, _) = blobs(10, 13);
        let preds = predict_classes(&mut model, &x);
        assert_eq!(preds.len(), 10);
        assert!(preds.iter().all(|&p| p < 2));
    }
}
