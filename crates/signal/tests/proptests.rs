//! Property-based tests of the signal-processing invariants.

use proptest::prelude::*;
use tsda_core::Mts;
use tsda_signal::decompose::decompose_additive;
use tsda_signal::dtw::{dtw_distance, DtwOptions};
use tsda_signal::emd::{emd, EmdOptions};
use tsda_signal::fft::{fft_real, ifft_real};
use tsda_signal::interp::{resample_linear, CubicSpline};
use tsda_signal::stft::{istft, stft};
use tsda_signal::window::WindowKind;

fn signal(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, min_len..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_round_trip_is_identity(x in signal(1, 64)) {
        let back = ifft_real(&fft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_holds_for_any_length(x in signal(1, 50)) {
        let spec = fft_real(&x);
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|c| c.abs().powi(2)).sum::<f64>() / x.len() as f64;
        prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time));
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric(x in signal(4, 40)) {
        let spec = fft_real(&x);
        let n = x.len();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            prop_assert!((a.re - b.re).abs() < 1e-7 && (a.im - b.im).abs() < 1e-7);
        }
    }

    #[test]
    fn stft_interior_round_trip(x in signal(64, 96)) {
        let spec = stft(&x, 16, 8, WindowKind::Hann);
        let y = istft(&spec);
        prop_assert_eq!(y.len(), x.len());
        for t in 16..x.len() - 16 {
            prop_assert!((x[t] - y[t]).abs() < 1e-7, "t={}", t);
        }
    }

    #[test]
    fn dtw_is_nonnegative_symmetric_and_bounded_by_euclid(
        a in signal(4, 24),
        b in signal(4, 24),
    ) {
        let sa = Mts::univariate(a.clone());
        let sb = Mts::univariate(b.clone());
        let d1 = dtw_distance(&sa, &sb, DtwOptions::default());
        let d2 = dtw_distance(&sb, &sa, DtwOptions::default());
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
        if a.len() == b.len() {
            let euclid = sa.euclidean_distance(&sb);
            prop_assert!(d1 <= euclid + 1e-9, "dtw {} > euclid {}", d1, euclid);
        }
    }

    #[test]
    fn dtw_identity_of_indiscernibles(a in signal(2, 20)) {
        let s = Mts::univariate(a);
        prop_assert_eq!(dtw_distance(&s, &s, DtwOptions::default()), 0.0);
    }

    #[test]
    fn decomposition_reconstructs_exactly(x in signal(8, 64), period in 2usize..8) {
        let d = decompose_additive(&x, 7, Some(period));
        let back = d.reconstruct();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn emd_components_sum_to_signal(x in signal(16, 96)) {
        let d = emd(&x, EmdOptions::default());
        let back = d.reconstruct();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn resample_preserves_range(x in signal(2, 32), new_len in 2usize..64) {
        let r = resample_linear(&x, new_len);
        prop_assert_eq!(r.len(), new_len);
        let (lo, hi) = x.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        // Linear interpolation never overshoots the data range.
        prop_assert!(r.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
    }

    #[test]
    fn spline_interpolates_knots(ys in proptest::collection::vec(-5.0f64..5.0, 3..10)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let sp = CubicSpline::fit(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((sp.eval(*x) - y).abs() < 1e-8);
        }
    }
}
