//! Empirical mode decomposition (Huang et al. 1998).
//!
//! EMD sifts a signal into intrinsic mode functions (IMFs) by repeatedly
//! subtracting the mean of the cubic-spline envelopes through the local
//! extrema. The EMD-based augmenter recombines IMFs with perturbed
//! weights to create label-plausible variants of sensor signals.

use crate::interp::CubicSpline;

/// Configuration of the sifting process.
#[derive(Debug, Clone, Copy)]
pub struct EmdOptions {
    /// Maximum number of IMFs to extract (the residue is returned
    /// separately).
    pub max_imfs: usize,
    /// Maximum sifting iterations per IMF.
    pub max_sift_iters: usize,
    /// Stop sifting when the normalised change between iterations falls
    /// below this (standard SD criterion, typically 0.2–0.3).
    pub sd_threshold: f64,
}

impl Default for EmdOptions {
    fn default() -> Self {
        Self { max_imfs: 8, max_sift_iters: 50, sd_threshold: 0.25 }
    }
}

/// Result of an EMD: IMFs (highest frequency first) plus the residue.
/// `signal ≈ Σ imfs + residue` exactly (by construction).
#[derive(Debug, Clone)]
pub struct Emd {
    /// Intrinsic mode functions, highest-frequency first.
    pub imfs: Vec<Vec<f64>>,
    /// Monotone-ish residue.
    pub residue: Vec<f64>,
}

impl Emd {
    /// Reconstruct the original signal from all components.
    pub fn reconstruct(&self) -> Vec<f64> {
        let n = self.residue.len();
        let mut out = self.residue.clone();
        for imf in &self.imfs {
            for i in 0..n {
                out[i] += imf[i];
            }
        }
        out
    }

    /// Reconstruct with per-IMF weights (the augmentation hook): weight
    /// `w[k]` scales IMF `k`; missing weights default to 1.
    pub fn reconstruct_weighted(&self, weights: &[f64]) -> Vec<f64> {
        let n = self.residue.len();
        let mut out = self.residue.clone();
        for (k, imf) in self.imfs.iter().enumerate() {
            let w = weights.get(k).copied().unwrap_or(1.0);
            for i in 0..n {
                out[i] += w * imf[i];
            }
        }
        out
    }
}

/// Indices of local maxima (strict rise then fall, with plateau handling).
fn local_maxima(x: &[f64]) -> Vec<usize> {
    extrema(x, true)
}

/// Indices of local minima.
fn local_minima(x: &[f64]) -> Vec<usize> {
    extrema(x, false)
}

fn extrema(x: &[f64], maxima: bool) -> Vec<usize> {
    let n = x.len();
    let mut out = Vec::new();
    let cmp = |a: f64, b: f64| if maxima { a > b } else { a < b };
    let mut i = 1;
    while i + 1 < n {
        if cmp(x[i], x[i - 1]) {
            // Walk any plateau.
            let start = i;
            while i + 1 < n && x[i + 1] == x[i] {
                i += 1;
            }
            if i + 1 < n && cmp(x[start], x[i + 1]) {
                out.push((start + i) / 2);
            }
        }
        i += 1;
    }
    out
}

/// Spline envelope through the given extrema, padded with the boundary
/// samples so the envelope spans the whole signal.
fn envelope(x: &[f64], idx: &[usize]) -> Option<Vec<f64>> {
    if idx.len() < 2 {
        return None;
    }
    let n = x.len();
    let mut xs: Vec<f64> = Vec::with_capacity(idx.len() + 2);
    let mut ys: Vec<f64> = Vec::with_capacity(idx.len() + 2);
    if idx[0] != 0 {
        xs.push(0.0);
        ys.push(x[idx[0]]); // mirror boundary: reuse first extremum value
    }
    for &i in idx {
        xs.push(i as f64);
        ys.push(x[i]);
    }
    if let Some(&last) = idx.last() {
        if last != n - 1 {
            xs.push((n - 1) as f64);
            ys.push(x[last]); // mirror boundary: reuse last extremum value
        }
    }
    let spline = CubicSpline::fit(&xs, &ys);
    Some((0..n).map(|i| spline.eval(i as f64)).collect())
}

/// Decompose `signal` into IMFs and a residue.
pub fn emd(signal: &[f64], opts: EmdOptions) -> Emd {
    let n = signal.len();
    let mut residue = signal.to_vec();
    let mut imfs = Vec::new();

    for _ in 0..opts.max_imfs {
        let maxima = local_maxima(&residue);
        let minima = local_minima(&residue);
        if maxima.len() < 2 || minima.len() < 2 {
            break; // residue is monotone-ish: done
        }
        let mut h = residue.clone();
        for _ in 0..opts.max_sift_iters {
            let (Some(upper), Some(lower)) =
                (envelope(&h, &local_maxima(&h)), envelope(&h, &local_minima(&h)))
            else {
                break;
            };
            let mut num_terms = Vec::with_capacity(n);
            let mut den_terms = Vec::with_capacity(n);
            for i in 0..n {
                let mean = 0.5 * (upper[i] + lower[i]);
                let new = h[i] - mean;
                num_terms.push((h[i] - new) * (h[i] - new));
                den_terms.push(h[i] * h[i] + 1e-12);
                h[i] = new;
            }
            let sd_num = tsda_core::math::sum_stable(num_terms.iter().copied());
            let sd_den = tsda_core::math::sum_stable(den_terms.iter().copied());
            if sd_num / sd_den < opts.sd_threshold * opts.sd_threshold {
                break;
            }
        }
        for i in 0..n {
            residue[i] -= h[i];
        }
        imfs.push(h);
    }
    Emd { imfs, residue }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tone(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let x = t as f64;
                (x * 0.9).sin() + 0.5 * (x * 0.08).sin()
            })
            .collect()
    }

    #[test]
    fn reconstruction_is_exact() {
        let x = two_tone(200);
        let d = emd(&x, EmdOptions::default());
        let back = d.reconstruct();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_fast_from_slow_tone() {
        let x = two_tone(400);
        let d = emd(&x, EmdOptions::default());
        assert!(!d.imfs.is_empty());
        // First IMF should carry the fast tone: its zero-crossing count
        // must exceed that of the remaining reconstruction.
        let zc = |v: &[f64]| v.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
        let rest: Vec<f64> = {
            let mut r = d.residue.clone();
            for imf in &d.imfs[1..] {
                for i in 0..r.len() {
                    r[i] += imf[i];
                }
            }
            r
        };
        assert!(zc(&d.imfs[0]) > zc(&rest), "{} vs {}", zc(&d.imfs[0]), zc(&rest));
    }

    #[test]
    fn monotone_signal_yields_no_imfs() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let d = emd(&x, EmdOptions::default());
        assert!(d.imfs.is_empty());
        assert_eq!(d.residue, x);
    }

    #[test]
    fn weighted_reconstruction_scales_components() {
        let x = two_tone(150);
        let d = emd(&x, EmdOptions::default());
        if d.imfs.is_empty() {
            return;
        }
        let zeroed = d.reconstruct_weighted(&vec![0.0; d.imfs.len()]);
        for (z, r) in zeroed.iter().zip(&d.residue) {
            assert!((z - r).abs() < 1e-12);
        }
        let identity = d.reconstruct_weighted(&vec![1.0; d.imfs.len()]);
        for (a, b) in identity.iter().zip(&d.reconstruct()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn respects_max_imfs() {
        let x = two_tone(300);
        let d = emd(&x, EmdOptions { max_imfs: 1, ..EmdOptions::default() });
        assert!(d.imfs.len() <= 1);
    }

    #[test]
    fn extrema_detection_handles_plateaus() {
        let x = [0.0, 1.0, 1.0, 1.0, 0.0, -1.0, 0.0];
        let maxima = local_maxima(&x);
        assert_eq!(maxima, vec![2]);
        let minima = local_minima(&x);
        assert_eq!(minima, vec![5]);
    }
}
