//! Dynamic time warping for multivariate series.
//!
//! Two consumers in this workspace: the guided-warping augmenter (warps a
//! sample along its DTW alignment with a same-class teacher) and the
//! 1-NN DTW reference classifier. Both need the alignment *path*, not
//! just the distance, so the full cost matrix is materialised; an
//! optional Sakoe-Chiba band keeps long series affordable.

use tsda_core::Mts;
use tsda_linalg::simd;

/// Options for a DTW computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DtwOptions {
    /// Sakoe-Chiba band half-width as a fraction of the longer series
    /// length; `None` means an unconstrained alignment.
    pub band_fraction: Option<f64>,
}

/// Squared Euclidean point costs for row `i` against `b`'s positions
/// `lo..hi`, written into `out[lo..hi]`.
///
/// Dimensions accumulate in ascending order with unfused `acc += d·d`
/// (`simd::sq_diff_acc_f64`), exactly the order the former per-cell
/// `point_cost` used — every cell is bit-identical to it, at any
/// dispatch level.
#[inline]
fn point_cost_row(
    lvl: simd::SimdLevel,
    a: &Mts,
    b: &Mts,
    i: usize,
    lo: usize,
    hi: usize,
    out: &mut [f64],
) {
    let row = &mut out[lo..hi];
    row.fill(0.0);
    for m in 0..a.n_dims() {
        simd::sq_diff_acc_f64_with(lvl, row, a.value(m, i), &b.dim(m)[lo..hi]);
    }
}

fn band_width(len_a: usize, len_b: usize, opts: DtwOptions) -> usize {
    match opts.band_fraction {
        Some(f) => {
            let w = (f * len_a.max(len_b) as f64).ceil() as usize;
            // The band must at least cover the diagonal offset or no path
            // exists.
            w.max(len_a.abs_diff(len_b)).max(1)
        }
        None => len_a.max(len_b),
    }
}

/// DTW distance (square root of accumulated squared point costs).
///
/// # Panics
/// Panics if the series differ in dimension count or either is empty.
pub fn dtw_distance(a: &Mts, b: &Mts, opts: DtwOptions) -> f64 {
    accumulate(a, b, opts).0
}

/// DTW distance together with the optimal alignment path as `(i, j)`
/// index pairs from `(0,0)` to `(n−1,m−1)`.
pub fn dtw_path(a: &Mts, b: &Mts, opts: DtwOptions) -> (f64, Vec<(usize, usize)>) {
    let (dist, cost) = accumulate_full(a, b, opts);
    let n = a.len();
    let m = b.len();
    let mut path = vec![(n - 1, m - 1)];
    let (mut i, mut j) = (n - 1, m - 1);
    while i > 0 || j > 0 {
        let options = [
            (i.wrapping_sub(1), j.wrapping_sub(1)),
            (i.wrapping_sub(1), j),
            (i, j.wrapping_sub(1)),
        ];
        let (bi, bj) = options
            .iter()
            .copied()
            .filter(|&(x, y)| x < n && y < m && (x, y) != (i, j))
            .min_by(|&(x1, y1), &(x2, y2)| cost[x1 * m + y1].total_cmp(&cost[x2 * m + y2]))
            // At least one predecessor exists whenever i > 0 || j > 0;
            // the origin fallback keeps the walk total (and terminates it).
            .unwrap_or((0, 0));
        i = bi;
        j = bj;
        path.push((i, j));
    }
    path.reverse();
    (dist, path)
}

/// Banded accumulation keeping only two rows (distance only).
fn accumulate(a: &Mts, b: &Mts, opts: DtwOptions) -> (f64, ()) {
    assert_eq!(a.n_dims(), b.n_dims(), "dtw dimension mismatch");
    assert!(!a.is_empty() && !b.is_empty(), "dtw of empty series");
    let n = a.len();
    let m = b.len();
    let w = band_width(n, m, opts);
    let lvl = simd::level();
    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];
    // Per-row scratch: the vectorised point costs and the up/diag min
    // prepass (`prev` carries +∞ outside the band, which folds the old
    // per-cell `i > 0` / band checks into plain reads).
    let mut costs = vec![0.0; m];
    let mut updiag = vec![0.0; m];
    // Written extent of `prev`; cells past it were last touched two rows
    // ago and must be re-seeded to +∞ before this row reads them. The
    // band centre is non-decreasing in `i`, so only the right margin
    // (and the single `lo − 1` guard cell below) ever needs re-seeding —
    // fills stay O(band), not O(m), per row.
    let mut prev_hi = 0usize;
    for i in 0..n {
        let centre = i * m / n;
        let lo = centre.saturating_sub(w);
        let hi = (centre + w + 1).min(m);
        if i > 0 && hi > prev_hi {
            prev[prev_hi..hi].fill(f64::INFINITY);
        }
        point_cost_row(lvl, a, b, i, lo, hi, &mut costs);
        // updiag[j] = min(prev[j], prev[j−1]): the two predecessors with
        // no in-row dependency, minimised in one vector pass; only the
        // `curr[j−1]` left-neighbour stays sequential below.
        let start = lo.max(1);
        if start < hi {
            simd::min2_f64_with(
                lvl,
                &mut updiag[start..hi],
                &prev[start..hi],
                &prev[start - 1..hi - 1],
            );
        }
        // Peel the j = lo boundary so the interior is the bare
        // recurrence `cost + min(updiag, left)` — identical arithmetic
        // to the former per-cell branches.
        let mut j = lo;
        if lo == 0 {
            curr[0] = costs[0] + if i == 0 { 0.0 } else { prev[0] };
            j = 1;
        } else {
            curr[lo - 1] = f64::INFINITY;
        }
        while j < hi {
            curr[j] = costs[j] + updiag[j].min(curr[j - 1]);
            j += 1;
        }
        prev_hi = hi;
        std::mem::swap(&mut prev, &mut curr);
    }
    (prev[m - 1].sqrt(), ())
}

/// Full cost-matrix accumulation (needed for path extraction).
fn accumulate_full(a: &Mts, b: &Mts, opts: DtwOptions) -> (f64, Vec<f64>) {
    assert_eq!(a.n_dims(), b.n_dims(), "dtw dimension mismatch");
    assert!(!a.is_empty() && !b.is_empty(), "dtw of empty series");
    let n = a.len();
    let m = b.len();
    let w = band_width(n, m, opts);
    let lvl = simd::level();
    let mut cost = vec![f64::INFINITY; n * m];
    let mut costs = vec![0.0; m];
    let mut updiag = vec![0.0; m];
    for i in 0..n {
        let centre = i * m / n;
        let lo = centre.saturating_sub(w);
        let hi = (centre + w + 1).min(m);
        point_cost_row(lvl, a, b, i, lo, hi, &mut costs);
        // Same prepass as `accumulate`: the whole matrix is +∞-seeded,
        // so out-of-band predecessors read as +∞ like the old guards.
        let start = lo.max(1);
        if i > 0 && start < hi {
            let prev_row = &cost[(i - 1) * m..i * m];
            simd::min2_f64_with(
                lvl,
                &mut updiag[start..hi],
                &prev_row[start..hi],
                &prev_row[start - 1..hi - 1],
            );
        }
        // Boundary peel as in `accumulate`; each cell is written exactly
        // once and the matrix is +∞-seeded, so the `j = lo` left
        // neighbour reads +∞ without any per-row re-seeding.
        let mut j = lo;
        if lo == 0 {
            cost[i * m] = costs[0] + if i == 0 { 0.0 } else { cost[(i - 1) * m] };
            j = 1;
        }
        if i == 0 {
            while j < hi {
                cost[j] = costs[j] + cost[j - 1];
                j += 1;
            }
        } else {
            while j < hi {
                cost[i * m + j] = costs[j] + updiag[j].min(cost[i * m + j - 1]);
                j += 1;
            }
        }
    }
    (cost[n * m - 1].sqrt(), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(v: &[f64]) -> Mts {
        Mts::univariate(v.to_vec())
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let a = uni(&[1.0, 2.0, 3.0, 2.0]);
        assert_eq!(dtw_distance(&a, &a, DtwOptions::default()), 0.0);
    }

    #[test]
    fn shifted_series_beat_euclidean() {
        // A pattern and its one-step shift: DTW should nearly vanish,
        // Euclidean does not.
        let a = uni(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let b = uni(&[0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0]);
        let dtw = dtw_distance(&a, &b, DtwOptions::default());
        let euc = a.euclidean_distance(&b);
        assert!(dtw < 0.25 * euc, "dtw {dtw} vs euclid {euc}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = uni(&[0.0, 1.0, 2.0, 1.5]);
        let b = uni(&[0.5, 0.5, 2.0, 2.0, 1.0]);
        let d1 = dtw_distance(&a, &b, DtwOptions::default());
        let d2 = dtw_distance(&b, &a, DtwOptions::default());
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let a = uni(&[0.0, 1.0, 2.0, 3.0]);
        let b = uni(&[0.0, 2.0, 3.0]);
        let (_, path) = dtw_path(&a, &b, DtwOptions::default());
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (3, 2));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0 && (i1 - i0) + (j1 - j0) >= 1 && i1 - i0 <= 1 && j1 - j0 <= 1);
        }
    }

    #[test]
    fn path_distance_matches_distance_only() {
        let a = uni(&[0.3, 1.7, 0.2, -1.0, 0.5]);
        let b = uni(&[0.0, 1.0, 1.5, 0.0, -0.8, 0.4]);
        let d1 = dtw_distance(&a, &b, DtwOptions::default());
        let (d2, _) = dtw_path(&a, &b, DtwOptions::default());
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn banded_equals_full_when_band_is_wide() {
        let a = uni(&[0.0, 1.0, 0.0, -1.0, 0.0, 1.0]);
        let b = uni(&[0.0, 0.5, 1.0, 0.0, -1.0, 0.5]);
        let full = dtw_distance(&a, &b, DtwOptions::default());
        let banded = dtw_distance(&a, &b, DtwOptions { band_fraction: Some(1.0) });
        assert!((full - banded).abs() < 1e-12);
    }

    #[test]
    fn narrow_band_never_beats_full() {
        let a = uni(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let b = uni(&[1.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let full = dtw_distance(&a, &b, DtwOptions::default());
        let banded = dtw_distance(&a, &b, DtwOptions { band_fraction: Some(0.1) });
        assert!(banded >= full - 1e-12, "banded {banded} < full {full}");
    }

    #[test]
    fn multivariate_uses_all_dims() {
        let a = Mts::from_dims(vec![vec![0.0, 1.0], vec![0.0, 0.0]]);
        let b = Mts::from_dims(vec![vec![0.0, 1.0], vec![3.0, 3.0]]);
        // First dims identical, second differ by 3 everywhere.
        let d = dtw_distance(&a, &b, DtwOptions::default());
        assert!(d >= 3.0);
    }

    #[test]
    fn different_lengths_are_aligned() {
        let a = uni(&[1.0; 10]);
        let b = uni(&[1.0; 4]);
        assert_eq!(dtw_distance(&a, &b, DtwOptions::default()), 0.0);
    }
}
