//! Analysis windows for the STFT.

/// Window function families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// All ones.
    Rectangular,
    /// Periodic Hann window (COLA-compliant at 50% overlap).
    Hann,
    /// Periodic Hamming window.
    Hamming,
}

/// Sample a window of `len` points.
pub fn window(kind: WindowKind, len: usize) -> Vec<f64> {
    match kind {
        WindowKind::Rectangular => vec![1.0; len],
        WindowKind::Hann => (0..len)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / len.max(1) as f64;
                0.5 * (1.0 - x.cos())
            })
            .collect(),
        WindowKind::Hamming => (0..len)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / len.max(1) as f64;
                0.54 - 0.46 * x.cos()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_and_peak() {
        let w = window(WindowKind::Hann, 8);
        assert!(w[0].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12); // periodic: peak at n/2
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(window(WindowKind::Rectangular, 5).iter().all(|&v| v == 1.0));
    }

    #[test]
    fn hann_cola_at_half_overlap() {
        // Periodic Hann windows summed at hop = len/2 give a constant.
        let len = 16;
        let hop = 8;
        let w = window(WindowKind::Hann, len);
        let total = 4 * len;
        let mut acc = vec![0.0; total];
        let mut start = 0;
        while start + len <= total {
            for i in 0..len {
                acc[start + i] += w[i];
            }
            start += hop;
        }
        for &v in &acc[len..total - len] {
            assert!((v - 1.0).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn hamming_positive_everywhere() {
        assert!(window(WindowKind::Hamming, 32).iter().all(|&v| v > 0.0));
    }
}
