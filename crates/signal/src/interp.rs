//! Interpolation: linear resampling and natural cubic splines.
//!
//! Time warping maps a series through a smooth monotone time
//! distortion and resamples it; EMD builds extrema envelopes from cubic
//! splines. Both live here.

/// Linearly interpolate `values` (sampled at integer positions
/// `0..values.len()`) at the fractional position `t`, clamping to the
/// ends.
pub fn lerp_at(values: &[f64], t: f64) -> f64 {
    assert!(!values.is_empty(), "lerp_at on empty input");
    if t <= 0.0 {
        return values[0];
    }
    let max = (values.len() - 1) as f64;
    if t >= max {
        return values[values.len() - 1];
    }
    let i = t.floor() as usize;
    let frac = t - i as f64;
    values[i] * (1.0 - frac) + values[i + 1] * frac
}

/// Resample `values` to `new_len` points by linear interpolation over the
/// original index range.
///
/// Each output point is bit-identical to `lerp_at(values, i·scale)` — the
/// vectorised kernel evaluates the same unfused `v[i]·(1−frac) + v[i+1]·frac`
/// per point, so warping augmenters keep their exact pre-SIMD values.
pub fn resample_linear(values: &[f64], new_len: usize) -> Vec<f64> {
    assert!(!values.is_empty(), "resample of empty input");
    assert!(new_len > 0, "resample to zero length");
    let mut out = vec![0.0; new_len];
    tsda_linalg::simd::lerp_resample_f64(values, &mut out);
    out
}

/// A natural cubic spline through `(xs, ys)` knots.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fit a natural cubic spline.
    ///
    /// # Panics
    /// Panics if fewer than 2 knots are given, lengths differ, or `xs` is
    /// not strictly increasing.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "spline knot length mismatch");
        assert!(xs.len() >= 2, "spline needs at least 2 knots");
        assert!(
            xs.windows(2).all(|w| w[1] > w[0]),
            "spline xs must be strictly increasing"
        );
        let n = xs.len();
        // Solve the tridiagonal system for the second derivatives
        // (Thomas algorithm), natural boundary m₀ = mₙ₋₁ = 0.
        let mut m = vec![0.0; n];
        if n > 2 {
            let mut a = vec![0.0; n]; // sub-diagonal
            let mut b = vec![0.0; n]; // diagonal
            let mut c = vec![0.0; n]; // super-diagonal
            let mut d = vec![0.0; n]; // rhs
            for i in 1..n - 1 {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                a[i] = h0;
                b[i] = 2.0 * (h0 + h1);
                c[i] = h1;
                d[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
            }
            // Forward sweep over interior rows 1..n-1.
            for i in 2..n - 1 {
                let w = a[i] / b[i - 1];
                b[i] -= w * c[i - 1];
                d[i] -= w * d[i - 1];
            }
            m[n - 2] = d[n - 2] / b[n - 2];
            for i in (1..n - 2).rev() {
                m[i] = (d[i] - c[i] * m[i + 1]) / b[i];
            }
        }
        Self { xs: xs.to_vec(), ys: ys.to_vec(), m }
    }

    /// Evaluate the spline at `x`, extrapolating linearly outside the
    /// knot range (keeps EMD envelopes sane at the boundaries).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            let slope = self.slope_at_start();
            return self.ys[0] + slope * (x - self.xs[0]);
        }
        if x >= self.xs[n - 1] {
            let slope = self.slope_at_end();
            return self.ys[n - 1] + slope * (x - self.xs[n - 1]);
        }
        // Binary search for the containing interval.
        let mut lo = 0;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        let a = 1.0 - t;
        a * self.ys[lo]
            + t * self.ys[hi]
            + h * h / 6.0 * ((a * a * a - a) * self.m[lo] + (t * t * t - t) * self.m[hi])
    }

    fn slope_at_start(&self) -> f64 {
        let h = self.xs[1] - self.xs[0];
        (self.ys[1] - self.ys[0]) / h - h / 6.0 * (2.0 * self.m[0] + self.m[1])
    }

    fn slope_at_end(&self) -> f64 {
        let n = self.xs.len();
        let h = self.xs[n - 1] - self.xs[n - 2];
        (self.ys[n - 1] - self.ys[n - 2]) / h + h / 6.0 * (self.m[n - 2] + 2.0 * self.m[n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_interpolates_midpoints() {
        let v = [0.0, 2.0, 4.0];
        assert_eq!(lerp_at(&v, 0.5), 1.0);
        assert_eq!(lerp_at(&v, 1.75), 3.5);
    }

    #[test]
    fn lerp_clamps_out_of_range() {
        let v = [1.0, 2.0];
        assert_eq!(lerp_at(&v, -5.0), 1.0);
        assert_eq!(lerp_at(&v, 9.0), 2.0);
    }

    #[test]
    fn resample_identity_when_same_length() {
        let v = vec![1.0, 3.0, -2.0, 5.0];
        let r = resample_linear(&v, 4);
        for (a, b) in v.iter().zip(&r) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_preserves_endpoints() {
        let v = vec![7.0, 1.0, 9.0];
        let r = resample_linear(&v, 10);
        assert_eq!(r[0], 7.0);
        assert_eq!(r[9], 9.0);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn spline_passes_through_knots() {
        let xs = [0.0, 1.0, 2.5, 4.0];
        let ys = [1.0, -1.0, 0.5, 2.0];
        let sp = CubicSpline::fit(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            assert!((sp.eval(*x) - y).abs() < 1e-10);
        }
    }

    #[test]
    fn spline_reproduces_linear_function() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 2.0, 4.0, 6.0];
        let sp = CubicSpline::fit(&xs, &ys);
        assert!((sp.eval(1.5) - 3.0).abs() < 1e-10);
        assert!((sp.eval(-1.0) + 2.0).abs() < 1e-9); // linear extrapolation
        assert!((sp.eval(4.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn spline_is_smooth_between_knots() {
        // Sample a sine at coarse knots; spline error should beat linear.
        let xs: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).sin()).collect();
        let sp = CubicSpline::fit(&xs, &ys);
        let mut spline_err = 0.0;
        let mut linear_err = 0.0;
        for k in 0..80 {
            let x = k as f64 * 0.1;
            let truth = (x * 0.7).sin();
            spline_err += (sp.eval(x) - truth).abs();
            linear_err += (lerp_at(&ys, x) - truth).abs();
        }
        assert!(spline_err < linear_err, "{spline_err} vs {linear_err}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn spline_rejects_unsorted_knots() {
        let _ = CubicSpline::fit(&[0.0, 0.0], &[1.0, 2.0]);
    }

    #[test]
    fn two_knot_spline_is_a_line() {
        let sp = CubicSpline::fit(&[0.0, 2.0], &[0.0, 4.0]);
        assert!((sp.eval(1.0) - 2.0).abs() < 1e-12);
    }
}
