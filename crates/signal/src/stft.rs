//! Short-time Fourier transform and its least-squares inverse.
//!
//! The SpecAugment-style frequency/time masking augmenter perturbs the
//! magnitude spectrogram and resynthesises the signal with [`istft`]
//! (weighted overlap-add), so a proper inverse matters.

use crate::fft::{fft, ifft, Complex};
use crate::window::{window, WindowKind};

/// A complex spectrogram: `frames × bins`, produced by [`stft`].
#[derive(Debug, Clone)]
pub struct Stft {
    /// One spectrum per frame.
    pub frames: Vec<Vec<Complex>>,
    /// Analysis frame length.
    pub frame_len: usize,
    /// Hop between consecutive frames.
    pub hop: usize,
    /// Analysis window kind.
    pub window: WindowKind,
    /// Original signal length (needed for exact-length resynthesis).
    pub signal_len: usize,
}

impl Stft {
    /// Number of analysis frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frequency bins per frame (= frame length).
    pub fn n_bins(&self) -> usize {
        self.frame_len
    }

    /// Magnitude spectrogram (`frames × bins`).
    pub fn magnitudes(&self) -> Vec<Vec<f64>> {
        self.frames
            .iter()
            .map(|f| f.iter().map(|c| c.abs()).collect())
            .collect()
    }
}

/// Compute the STFT of `signal` with the given frame length, hop and
/// window. The signal is zero-padded at the tail so at least one frame
/// is produced.
///
/// # Panics
/// Panics if `frame_len == 0` or `hop == 0`.
pub fn stft(signal: &[f64], frame_len: usize, hop: usize, win: WindowKind) -> Stft {
    assert!(frame_len > 0 && hop > 0, "stft requires positive frame and hop");
    let w = window(win, frame_len);
    let n_frames = if signal.len() <= frame_len {
        1
    } else {
        (signal.len() - frame_len).div_ceil(hop) + 1
    };
    let mut frames = Vec::with_capacity(n_frames);
    for f in 0..n_frames {
        let start = f * hop;
        let buf: Vec<Complex> = (0..frame_len)
            .map(|i| {
                let v = signal.get(start + i).copied().unwrap_or(0.0);
                Complex::real(v * w[i])
            })
            .collect();
        frames.push(fft(&buf));
    }
    Stft { frames, frame_len, hop, window: win, signal_len: signal.len() }
}

/// Inverse STFT by weighted overlap-add with window-squared
/// normalisation. Reconstructs a signal of the original length.
pub fn istft(spec: &Stft) -> Vec<f64> {
    let w = window(spec.window, spec.frame_len);
    let total = (spec.n_frames().saturating_sub(1)) * spec.hop + spec.frame_len;
    let mut acc = vec![0.0; total];
    let mut norm = vec![0.0; total];
    for (f, frame) in spec.frames.iter().enumerate() {
        let time = ifft(frame);
        let start = f * spec.hop;
        for i in 0..spec.frame_len {
            acc[start + i] += time[i].re * w[i];
            norm[start + i] += w[i] * w[i];
        }
    }
    for (a, n) in acc.iter_mut().zip(&norm) {
        if *n > 1e-12 {
            *a /= n;
        }
    }
    acc.truncate(spec.signal_len);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirpish(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let x = t as f64 / n as f64;
                (20.0 * x * x * std::f64::consts::PI).sin() + 0.3 * (3.0 * x).cos()
            })
            .collect()
    }

    #[test]
    fn round_trip_reconstructs_interior() {
        let x = chirpish(128);
        let spec = stft(&x, 32, 16, WindowKind::Hann);
        let y = istft(&spec);
        assert_eq!(y.len(), x.len());
        // Edges are imperfect (partial window coverage); interior must match.
        for t in 32..96 {
            assert!((x[t] - y[t]).abs() < 1e-9, "t={t}: {} vs {}", x[t], y[t]);
        }
    }

    #[test]
    fn frame_count_covers_signal() {
        let spec = stft(&chirpish(100), 32, 16, WindowKind::Hann);
        assert!((spec.n_frames() - 1) * 16 + 32 >= 100);
    }

    #[test]
    fn short_signal_single_frame() {
        let spec = stft(&[1.0, 2.0], 8, 4, WindowKind::Rectangular);
        assert_eq!(spec.n_frames(), 1);
        let y = istft(&spec);
        assert_eq!(y.len(), 2);
        assert!((y[0] - 1.0).abs() < 1e-9 && (y[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn magnitudes_shape_matches() {
        let spec = stft(&chirpish(64), 16, 8, WindowKind::Hamming);
        let mags = spec.magnitudes();
        assert_eq!(mags.len(), spec.n_frames());
        assert!(mags.iter().all(|f| f.len() == 16));
        assert!(mags.iter().flatten().all(|&v| v >= 0.0));
    }

    #[test]
    fn tone_energy_in_expected_bin() {
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 4.0 * t as f64 / 32.0).sin())
            .collect();
        let spec = stft(&x, 32, 16, WindowKind::Hann);
        let mags = spec.magnitudes();
        // Bin 4 of a 32-point frame at this frequency.
        let mid = &mags[1];
        let peak = mid
            .iter()
            .take(16)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 4);
    }
}
