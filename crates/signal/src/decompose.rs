//! Additive trend/seasonal/residual decomposition (STL-style).
//!
//! The decomposition-based augmenters perturb or bootstrap the residual
//! component and recombine; this module provides the split. Trend is a
//! centred moving average, seasonality the period-wise mean of the
//! detrended series, residual whatever remains.

/// An additive decomposition `x = trend + seasonal + residual`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Smooth trend component.
    pub trend: Vec<f64>,
    /// Periodic component (zero when no period was given).
    pub seasonal: Vec<f64>,
    /// Remainder.
    pub residual: Vec<f64>,
}

impl Decomposition {
    /// Recombine the three components.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.seasonal)
            .zip(&self.residual)
            .map(|((t, s), r)| t + s + r)
            .collect()
    }
}

/// Centred moving average with window `w` (odd windows are exact; even
/// ones use the standard 2×MA convention). Edges shrink the window.
pub fn moving_average(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "moving average window must be positive");
    let n = x.len();
    let half = w / 2;
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let seg = &x[lo..hi];
            tsda_core::math::sum_stable(seg.iter().copied()) / seg.len() as f64
        })
        .collect()
}

/// Decompose `x` additively.
///
/// * `trend_window` — moving-average width for the trend (clamped to the
///   series length).
/// * `period` — seasonal period; `None` or periods `< 2` produce a zero
///   seasonal component.
pub fn decompose_additive(x: &[f64], trend_window: usize, period: Option<usize>) -> Decomposition {
    let n = x.len();
    let w = trend_window.clamp(1, n.max(1));
    let trend = moving_average(x, w);
    let detrended: Vec<f64> = x.iter().zip(&trend).map(|(v, t)| v - t).collect();

    let seasonal = match period {
        Some(p) if p >= 2 && p <= n => {
            // Mean of each phase, centred to sum to zero over a period.
            let mut phase_sum = vec![0.0; p];
            let mut phase_count = vec![0usize; p];
            for (i, v) in detrended.iter().enumerate() {
                phase_sum[i % p] += v;
                phase_count[i % p] += 1;
            }
            let mut phase_mean: Vec<f64> = phase_sum
                .iter()
                .zip(&phase_count)
                .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                .collect();
            let grand = tsda_core::math::sum_stable(phase_mean.iter().copied()) / p as f64;
            for v in &mut phase_mean {
                *v -= grand;
            }
            (0..n).map(|i| phase_mean[i % p]).collect()
        }
        _ => vec![0.0; n],
    };

    let residual: Vec<f64> = x
        .iter()
        .zip(&trend)
        .zip(&seasonal)
        .map(|((v, t), s)| v - t - s)
        .collect();
    Decomposition { trend, seasonal, residual }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_is_exact() {
        let x: Vec<f64> = (0..60)
            .map(|i| 0.1 * i as f64 + (i as f64 * 0.5).sin() + 0.01 * (i % 7) as f64)
            .collect();
        let d = decompose_additive(&x, 9, Some(12));
        let back = d.reconstruct();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trend_captures_linear_drift() {
        let x: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        let d = decompose_additive(&x, 5, None);
        // Interior trend equals the signal for a line.
        for (i, &xi) in x.iter().enumerate().take(45).skip(5) {
            assert!((d.trend[i] - xi).abs() < 1e-9);
            assert!(d.residual[i].abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_sums_to_zero_over_period() {
        let p = 6;
        let x: Vec<f64> = (0..48)
            .map(|i| (2.0 * std::f64::consts::PI * (i % p) as f64 / p as f64).sin())
            .collect();
        let d = decompose_additive(&x, 13, Some(p));
        let s: f64 = d.seasonal[..p].iter().sum();
        assert!(s.abs() < 1e-9, "{s}");
    }

    #[test]
    fn pure_seasonal_signal_lands_in_seasonal() {
        let p = 4;
        let pattern = [1.0, -1.0, 2.0, -2.0];
        let x: Vec<f64> = (0..40).map(|i| pattern[i % p]).collect();
        let d = decompose_additive(&x, p * 2 + 1, Some(p));
        // Residual should be small relative to the signal.
        let resid_energy: f64 = d.residual.iter().map(|v| v * v).sum();
        let signal_energy: f64 = x.iter().map(|v| v * v).sum();
        assert!(resid_energy < 0.15 * signal_energy, "{resid_energy} vs {signal_energy}");
    }

    #[test]
    fn no_period_means_zero_seasonal() {
        let x = vec![1.0, 2.0, 3.0];
        let d = decompose_additive(&x, 3, None);
        assert!(d.seasonal.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let x = vec![4.0; 10];
        let ma = moving_average(&x, 3);
        assert!(ma.iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn window_larger_than_series_is_clamped() {
        let x = vec![1.0, 2.0];
        let d = decompose_additive(&x, 99, None);
        assert_eq!(d.trend.len(), 2);
    }
}
