//! Fast Fourier transform: iterative radix-2 with Bluestein's algorithm
//! for non-power-of-two lengths.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle).
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Construct from polar form.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// # Panics
/// Panics unless `buf.len()` is a power of two (use [`fft`] for general
/// lengths).
pub fn fft_pow2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft_pow2 requires a power-of-two length");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut half = 1;
    while half < n {
        let step = std::f64::consts::PI / half as f64 * sign;
        let wn = Complex::cis(step);
        for start in (0..n).step_by(half * 2) {
            let mut w = Complex::real(1.0);
            for k in 0..half {
                let even = buf[start + k];
                let odd = buf[start + k + half] * w;
                buf[start + k] = even + odd;
                buf[start + k + half] = even - odd;
                w = w * wn;
            }
        }
        half *= 2;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns the spectrum.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut buf = input.to_vec();
    if n.is_power_of_two() {
        fft_pow2(&mut buf, false);
        return buf;
    }
    bluestein(&buf, false)
}

/// Inverse DFT of arbitrary length; normalised by `1/n`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut buf = input.to_vec();
    if n.is_power_of_two() {
        fft_pow2(&mut buf, true);
        return buf;
    }
    bluestein(&buf, true)
}

/// Bluestein's chirp-z transform: express the DFT as a convolution that a
/// power-of-two FFT can evaluate.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = exp(sign·iπ k² / n).
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k² mod 2n keeps the angle argument small and precise.
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::default(); m];
    let mut b = vec![Complex::default(); m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (av, bv) in a.iter_mut().zip(&b) {
        *av = *av * *bv;
    }
    fft_pow2(&mut a, true);
    let norm = if inverse { 1.0 / n as f64 } else { 1.0 };
    (0..n).map(|k| (a[k] * chirp[k]).scale(norm)).collect()
}

/// FFT of a real signal, returning the full complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    fft(&signal.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>())
}

/// Inverse FFT returning only real parts (the caller asserts the spectrum
/// is conjugate-symmetric, e.g. one produced from a real signal).
pub fn ifft_real(spectrum: &[Complex]) -> Vec<f64> {
    ifft(spectrum).into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (t, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc = acc + v * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn pow2_matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        assert_close(&fft(&x), &naive_dft(&x), 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        for n in [3usize, 5, 6, 7, 12, 13, 30] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64).cos() * 0.5))
                .collect();
            assert_close(&fft(&x), &naive_dft(&x), 1e-8);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [8usize, 10, 17] {
            let x: Vec<Complex> = (0..n).map(|i| Complex::real(i as f64 - 3.0)).collect();
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::default(); 8];
        x[0] = Complex::real(1.0);
        let s = fft(&x);
        for v in s {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        let n = 32;
        let freq = 5;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * freq as f64 * t as f64 / n as f64).cos())
            .collect();
        let s = fft_real(&x);
        let mags: Vec<f64> = s.iter().map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak == freq || peak == n - freq);
    }

    #[test]
    fn real_round_trip() {
        let x = vec![1.0, -2.0, 3.0, 0.5, 0.0, 4.0, -1.0];
        let back = ifft_real(&fft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x = vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0, 0.0, 1.5];
        let s = fft_real(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = s.iter().map(|c| c.abs().powi(2)).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::real(4.0)]);
        assert_eq!(one.len(), 1);
        assert!((one[0].re - 4.0).abs() < 1e-12);
    }
}
