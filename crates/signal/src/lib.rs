//! Signal-processing substrate for the `tsda` workspace.
//!
//! The frequency-domain and decomposition branches of the paper's
//! augmentation taxonomy need spectral and time-warping machinery that no
//! offline crate provides:
//!
//! * [`fft`] — radix-2 FFT plus Bluestein's algorithm for arbitrary
//!   lengths, the basis of all frequency-domain perturbations;
//! * [`stft`] — short-time Fourier transform and its inverse, used by the
//!   SpecAugment-style spectrogram masking;
//! * [`dtw`] — dynamic time warping with optional Sakoe-Chiba band and
//!   alignment-path extraction, used by guided warping and the 1-NN DTW
//!   reference classifier;
//! * [`interp`] — linear and natural-cubic-spline interpolation, used by
//!   time warping and EMD envelopes;
//! * [`decompose`] — moving-average trend/seasonal/residual split (an
//!   STL-style decomposition), used by decomposition-based augmentation;
//! * [`emd`] — empirical mode decomposition via spline envelopes;
//! * [`window`] — analysis windows (Hann, Hamming, rectangular).

#![forbid(unsafe_code)]

pub mod decompose;
pub mod dtw;
pub mod emd;
pub mod fft;
pub mod interp;
pub mod stft;
pub mod window;

pub use decompose::{decompose_additive, Decomposition};
pub use dtw::{dtw_distance, dtw_path, DtwOptions};
pub use fft::{fft, ifft, Complex};
pub use stft::{istft, stft, Stft};
