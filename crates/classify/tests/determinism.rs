//! Thread-count determinism of the classifier hot paths that run on
//! the shared pool: ROCKET's transform, InceptionTime's forward pass,
//! and the pairwise DTW distance matrix must produce bit-identical
//! results whether the pool runs 1 worker or many.

use std::sync::Mutex;
use tsda_classify::encode::{dataset_to_tensor3, preprocess_dataset};
use tsda_classify::inception::{InceptionTime, InceptionTimeConfig};
use tsda_classify::rocket::{Rocket, RocketConfig};
use tsda_classify::traits::Classifier;
use tsda_classify::dtw_distance_matrix;
use tsda_core::parallel::ThreadLimit;
use tsda_core::rng::{normal, seeded};
use tsda_core::{Dataset, Mts};
use tsda_signal::dtw::DtwOptions;

/// `ThreadLimit` is process-global; serialize the tests that toggle it.
static LIMIT_LOCK: Mutex<()> = Mutex::new(());

fn two_class_dataset(n_per_class: usize, dims: usize, len: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut ds = Dataset::empty(2);
    for c in 0..2 {
        let freq = if c == 0 { 0.25 } else { 0.7 };
        for _ in 0..n_per_class {
            let series: Vec<Vec<f64>> = (0..dims)
                .map(|d| {
                    (0..len)
                        .map(|t| {
                            (t as f64 * freq + d as f64).sin() + normal(&mut rng, 0.0, 0.1)
                        })
                        .collect()
                })
                .collect();
            ds.push(Mts::from_dims(series), c);
        }
    }
    ds
}

#[test]
fn rocket_features_do_not_depend_on_thread_count() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    let ds = two_class_dataset(8, 2, 48, 31);
    let features = |threads: usize| {
        ThreadLimit::set(threads);
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 60, ..RocketConfig::default() });
        rocket.fit(&ds, None, &mut seeded(32));
        rocket.transform(&ds)
    };
    let reference = features(1);
    for threads in [4, 16] {
        assert_eq!(features(threads), reference, "{threads} threads");
    }
    ThreadLimit::clear();
}

#[test]
fn inception_forward_does_not_depend_on_thread_count() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    let train = two_class_dataset(6, 2, 32, 41);
    let cfg = InceptionTimeConfig {
        filters: 2,
        depth: 3,
        kernel_sizes: [9, 5, 3],
        ensemble: 1,
        use_lr_range_test: false,
        ..InceptionTimeConfig::default()
    };
    let mut cfg = cfg;
    cfg.train.max_epochs = 2;
    let x = dataset_to_tensor3(&preprocess_dataset(&train));
    let proba = |threads: usize| {
        ThreadLimit::set(threads);
        let mut net = InceptionTime::new(cfg.clone());
        net.fit(&train, None, &mut seeded(42));
        net.predict_proba(&x).data().to_vec()
    };
    let reference = proba(1);
    let run4 = proba(4);
    assert_eq!(run4, reference);
    ThreadLimit::clear();
}

#[test]
fn dtw_matrix_does_not_depend_on_thread_count() {
    let _guard = LIMIT_LOCK.lock().unwrap();
    let queries = two_class_dataset(7, 2, 40, 51);
    let refs = two_class_dataset(5, 2, 40, 52);
    let opts = DtwOptions { band_fraction: Some(0.2) };
    let matrix = |threads: usize| {
        ThreadLimit::set(threads);
        dtw_distance_matrix(&queries, &refs, opts)
    };
    let reference = matrix(1);
    for threads in [4, 16] {
        assert_eq!(matrix(threads), reference, "{threads} threads");
    }
    assert_eq!(reference.len(), queries.len() * refs.len());
    ThreadLimit::clear();
}
