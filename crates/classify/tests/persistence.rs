//! Codec round-trip contract for every saveable model: save → load →
//! predict must be bit-identical to the fitted model, and corrupted or
//! mismatched inputs must come back as `TsdaError`, never a panic.

use rand::Rng;
use tsda_classify::persist::{load_model_bytes, SavedModel};
use tsda_classify::{
    Classifier, InceptionTime, InceptionTimeConfig, MiniRocket, MiniRocketConfig, RidgeClassifier,
    Rocket, RocketConfig,
};
use tsda_core::codec::{CodecReader, CodecWriter};
use tsda_core::rng::seeded;
use tsda_core::{Dataset, Mts};
use tsda_neuro::train::TrainConfig;

fn toy_problem(seed: u64, n_per_class: usize) -> (Dataset, Dataset) {
    let make = |split_seed: u64| {
        let mut ds = Dataset::empty(3);
        let mut rng = seeded(split_seed);
        for c in 0..3usize {
            let freq = 0.2 + 0.35 * c as f64;
            for _ in 0..n_per_class {
                let phase: f64 = rng.gen_range(0.0..1.0);
                let amp: f64 = rng.gen_range(0.8..1.2);
                let dims = (0..2)
                    .map(|d| {
                        (0..30)
                            .map(|t| amp * ((t as f64) * freq + phase + d as f64).sin())
                            .collect()
                    })
                    .collect();
                ds.push(Mts::from_dims(dims), c);
            }
        }
        ds
    };
    (make(seed), make(seed ^ 0x9e37_79b9))
}

fn flatten(ds: &Dataset) -> Vec<Vec<f64>> {
    ds.series().iter().map(|s| s.as_flat().to_vec()).collect()
}

/// Fitted predictions survive the codec byte-for-byte.
fn assert_round_trip(mut model: SavedModel, test: &Dataset, before: &[usize]) {
    let bytes = model.save_bytes().expect("save fitted model");
    let mut loaded = load_model_bytes(&bytes).expect("load saved bytes");
    assert_eq!(loaded.kind(), model.kind());
    let after = match &mut loaded {
        SavedModel::Rocket(m) => m.predict_fitted(test).unwrap(),
        SavedModel::MiniRocket(m) => m.predict_fitted(test).unwrap(),
        SavedModel::Ridge(m) => m.try_predict_features(&flatten(test)).unwrap(),
        SavedModel::InceptionTime(m) => m.predict(test),
    };
    assert_eq!(after, before, "{} predictions changed across save/load", model.kind());

    // A second save of the loaded model must reproduce the same bytes:
    // the codec has one canonical encoding per model state.
    let again = loaded.save_bytes().expect("re-save loaded model");
    assert_eq!(again, bytes, "{} re-encoding is not canonical", model.kind());
}

#[test]
fn rocket_round_trips_bit_identical() {
    let (train, test) = toy_problem(1, 8);
    let mut m = Rocket::new(RocketConfig { n_kernels: 60, ..RocketConfig::default() });
    m.fit(&train, None, &mut seeded(2));
    let before = m.predict(&test);
    assert_round_trip(SavedModel::Rocket(m), &test, &before);
}

#[test]
fn minirocket_round_trips_bit_identical() {
    let (train, test) = toy_problem(3, 8);
    let mut m = MiniRocket::new(MiniRocketConfig { n_features: 168 });
    m.fit(&train, None, &mut seeded(4));
    let before = m.predict(&test);
    assert_round_trip(SavedModel::MiniRocket(m), &test, &before);
}

#[test]
fn ridge_round_trips_bit_identical() {
    let (train, test) = toy_problem(5, 8);
    let mut m = RidgeClassifier::default();
    m.fit_features(&flatten(&train), train.labels(), train.n_classes());
    let before = m.try_predict_features(&flatten(&test)).unwrap();
    assert_round_trip(SavedModel::Ridge(m), &test, &before);
}

#[test]
fn inception_round_trips_bit_identical() {
    let (train, test) = toy_problem(6, 6);
    let config = InceptionTimeConfig {
        filters: 2,
        depth: 3,
        kernel_sizes: [9, 5, 3],
        ensemble: 2,
        train_fraction: 2.0 / 3.0,
        train: TrainConfig { max_epochs: 2, batch_size: 8, patience: 2, lr: 1e-3 },
        use_lr_range_test: false,
    };
    let mut m = InceptionTime::new(config);
    m.fit(&train, None, &mut seeded(7));
    let before = m.predict(&test);
    assert_round_trip(SavedModel::InceptionTime(m), &test, &before);
}

#[test]
fn unfitted_models_refuse_to_save() {
    assert!(SavedModel::Rocket(Rocket::new(RocketConfig::default())).save_bytes().is_err());
    assert!(SavedModel::MiniRocket(MiniRocket::new(MiniRocketConfig::default()))
        .save_bytes()
        .is_err());
    assert!(SavedModel::Ridge(RidgeClassifier::default()).save_bytes().is_err());
    assert!(SavedModel::InceptionTime(InceptionTime::new(InceptionTimeConfig::default()))
        .save_bytes()
        .is_err());
}

#[test]
fn every_single_byte_corruption_is_an_error_not_a_panic() {
    let (train, _) = toy_problem(8, 6);
    let mut m = Rocket::new(RocketConfig { n_kernels: 12, ..RocketConfig::default() });
    m.fit(&train, None, &mut seeded(9));
    let bytes = SavedModel::Rocket(m).save_bytes().unwrap();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        assert!(
            load_model_bytes(&bad).is_err(),
            "flipping byte {i} of {} was not detected",
            bytes.len()
        );
    }
}

#[test]
fn truncation_is_an_error_not_a_panic() {
    let (train, _) = toy_problem(10, 6);
    let mut m = RidgeClassifier::default();
    m.fit_features(&flatten(&train), train.labels(), train.n_classes());
    let bytes = SavedModel::Ridge(m).save_bytes().unwrap();
    for cut in 0..bytes.len() {
        assert!(load_model_bytes(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
    }
}

#[test]
fn wrong_kind_and_unknown_kind_are_rejected() {
    // A syntactically valid container whose kind no model claims.
    let mut w = CodecWriter::new("martian");
    w.section("meta", vec![1, 2, 3]);
    match load_model_bytes(&w.finish()) {
        Err(e) => assert!(format!("{e}").contains("martian"), "{e}"),
        Ok(_) => panic!("unknown kind accepted"),
    }

    // A ridge container fed to the rocket-specific loader.
    let (train, _) = toy_problem(11, 6);
    let mut ridge = RidgeClassifier::default();
    ridge.fit_features(&flatten(&train), train.labels(), train.n_classes());
    let bytes = SavedModel::Ridge(ridge).save_bytes().unwrap();
    let reader = CodecReader::parse(&bytes).unwrap();
    assert!(reader.expect_kind(tsda_classify::rocket::ROCKET_KIND).is_err());
}
