//! ROCKET: RandOm Convolutional KErnel Transform (Dempster, Petitjean &
//! Webb, DMKD 2020), multivariate variant as in sktime.
//!
//! Thousands of random 1-D kernels — random length ∈ {7, 9, 11},
//! N(0,1) mean-centred weights, random bias, exponentially sampled
//! dilation, optional padding, and (for multivariate input) a random
//! channel subset per kernel — each yielding two features: PPV (the
//! proportion of positive convolution outputs) and the maximum. A linear
//! classifier on these features ([`crate::ridge::RidgeClassifier`])
//! matches deep models at a fraction of the cost; the paper uses 10 000
//! kernels (§IV-D).

use crate::encode::preprocess_dataset;
use crate::ridge::RidgeClassifier;
use crate::traits::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::codec::{ByteReader, ByteWriter, CodecReader, CodecWriter};
use tsda_core::parallel::Pool;
use tsda_core::rng::standard_normal;
use tsda_core::{Dataset, Label, Mts, TsdaError};
use tsda_linalg::simd::{self, SimdLevel};

/// Codec kind tag for saved ROCKET models.
pub const ROCKET_KIND: &str = "rocket";

/// Which pooled features each kernel contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RocketFeatures {
    /// PPV and max per kernel (the ROCKET paper's choice).
    #[default]
    PpvAndMax,
    /// PPV only (the MiniRocket simplification; ablation target).
    PpvOnly,
}

/// ROCKET configuration.
#[derive(Debug, Clone)]
pub struct RocketConfig {
    /// Number of random kernels (paper: 10 000; each yields 2 features).
    pub n_kernels: usize,
    /// Worker threads for the transform. `0` (the default, and the
    /// recommended setting) defers to the workspace-wide pool —
    /// `tsda_core::parallel::ThreadLimit` / the `TSDA_THREADS`
    /// environment variable. A non-zero value forces an explicit
    /// per-transform budget and exists only for backwards
    /// compatibility; features are bit-identical either way.
    ///
    /// Note for benchmarking/CI: with `0`, the resolved count falls all
    /// the way through to `available_parallelism`, i.e. whatever
    /// machine the job landed on. Timings published as a contract
    /// (`perf_baseline`, the CI perf gate) therefore pin the count
    /// explicitly via `ThreadLimit::set` and record it per row, instead
    /// of trusting the deferral.
    pub n_threads: usize,
    /// Pooled feature set per kernel.
    pub features: RocketFeatures,
}

impl Default for RocketConfig {
    /// Laptop-scale default; use `paper()` for the full 10 000 kernels.
    fn default() -> Self {
        Self { n_kernels: 500, n_threads: 0, features: RocketFeatures::PpvAndMax }
    }
}

impl RocketConfig {
    /// The paper's configuration: 10 000 kernels, PPV + max.
    pub fn paper() -> Self {
        Self { n_kernels: 10_000, n_threads: 0, features: RocketFeatures::PpvAndMax }
    }

    /// The pool the transform runs on (shared pool when `n_threads == 0`).
    fn pool(&self) -> Pool {
        Pool::with_threads(self.n_threads)
    }
}

/// One random kernel.
#[derive(Debug, Clone)]
struct Kernel {
    /// Per selected channel, `length` weights (mean-centred).
    weights: Vec<Vec<f64>>,
    /// The channels this kernel reads.
    channels: Vec<usize>,
    length: usize,
    bias: f64,
    dilation: usize,
    padding: usize,
}

impl Kernel {
    fn sample(n_channels: usize, series_len: usize, rng: &mut StdRng) -> Kernel {
        // Random length from {7, 9, 11}, restricted to lengths that fit
        // the series; very short series fall back to their full length.
        let candidates: Vec<usize> =
            [7usize, 9, 11].into_iter().filter(|&l| l <= series_len).collect();
        let length = if candidates.is_empty() {
            series_len.max(2)
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        // Dilation: 2^x with x ~ U(0, log2((len−1)/(length−1))).
        let max_exp = (((series_len - 1) as f64 / (length - 1) as f64).log2()).max(0.0);
        let dilation = 2f64.powf(rng.gen_range(0.0..=max_exp)).floor() as usize;
        let dilation = dilation.max(1);
        let padding = if rng.gen::<bool>() {
            ((length - 1) * dilation) / 2
        } else {
            0
        };
        // Multivariate: pick 2^U(0, log2(C+1)) channels (sktime's rule).
        let max_ch_exp = ((n_channels as f64 + 1.0).log2()).max(0.0);
        let n_sel = (2f64.powf(rng.gen_range(0.0..max_ch_exp)).floor() as usize)
            .clamp(1, n_channels);
        let mut channels: Vec<usize> = (0..n_channels).collect();
        // Partial Fisher-Yates for the first n_sel entries.
        for i in 0..n_sel {
            let j = rng.gen_range(i..n_channels);
            channels.swap(i, j);
        }
        channels.truncate(n_sel);
        let weights: Vec<Vec<f64>> = (0..n_sel)
            .map(|_| {
                let mut w: Vec<f64> = (0..length).map(|_| standard_normal(rng)).collect();
                let mean = tsda_core::math::sum_stable(w.iter().copied()) / length as f64;
                for v in &mut w {
                    *v -= mean;
                }
                w
            })
            .collect();
        let bias = rng.gen_range(-1.0..1.0);
        Kernel { weights, channels, length, bias, dilation, padding }
    }

    /// Apply to one series: returns `(ppv, max)`.
    ///
    /// The convolution is evaluated tap-by-tap: `out` starts at the bias
    /// and each `(channel, tap)` pair contributes one vectorised axpy
    /// over the output positions it reaches. Every output element still
    /// accumulates its terms in the same ascending `(ci, k)` order with
    /// the same unfused multiply-add as the former per-position loop, so
    /// features are bit-identical to it (and across dispatch levels);
    /// only the pooled max's traversal order changed, which can alter
    /// at most the sign of a `±0.0` maximum.
    fn apply(&self, s: &Mts, out: &mut Vec<f64>, lvl: SimdLevel) -> (f64, f64) {
        let t_len = s.len();
        let span = (self.length - 1) * self.dilation;
        let out_len = (t_len + 2 * self.padding).saturating_sub(span);
        if out_len == 0 {
            return (0.0, self.bias);
        }
        out.clear();
        out.resize(out_len, self.bias);
        let pad = self.padding as isize;
        for (ci, &ch) in self.channels.iter().enumerate() {
            let dim = s.dim(ch);
            for (k, &wk) in self.weights[ci].iter().enumerate() {
                // This tap reads input index `out_i + shift`; clamp the
                // output range so the read stays inside the series (the
                // former loop's bounds check, hoisted).
                let shift = (k * self.dilation) as isize - pad;
                let lo = (-shift).max(0) as usize;
                let hi = (t_len as isize - shift).clamp(0, out_len as isize) as usize;
                if lo < hi {
                    let src = &dim[(lo as isize + shift) as usize..(hi as isize + shift) as usize];
                    simd::axpy_f64_with(lvl, &mut out[lo..hi], src, wk);
                }
            }
        }
        let (positives, max) = simd::ppv_max_f64_with(lvl, out);
        (positives as f64 / out_len as f64, max)
    }
}

/// The ROCKET classifier: random kernel transform + ridge with LOOCV.
pub struct Rocket {
    config: RocketConfig,
    kernels: Vec<Kernel>,
    ridge: RidgeClassifier,
    /// Input shape seen at fit time, `(n_dims, series_len)`; `(0, 0)`
    /// while unfitted. The serving layer validates request shapes
    /// against this before batching.
    input_shape: (usize, usize),
}

impl Rocket {
    /// New ROCKET with the given configuration.
    pub fn new(config: RocketConfig) -> Self {
        Self {
            config,
            kernels: Vec::new(),
            ridge: RidgeClassifier::default(),
            input_shape: (0, 0),
        }
    }

    /// Transform a dataset to the `2·n_kernels` feature matrix
    /// (rows = series), parallelised over series on the shared pool.
    ///
    /// Each series' feature row depends only on that series and the
    /// fitted kernels, so the result is bit-identical for any thread
    /// count.
    pub fn transform(&self, ds: &Dataset) -> Vec<Vec<f64>> {
        let kernels = &self.kernels;
        let feature_kind = self.config.features;
        let lvl = simd::level();
        self.config.pool().par_map_indexed(ds.len(), |i| {
            let s = &ds.series()[i];
            let mut f = Vec::with_capacity(kernels.len() * 2);
            // One conv-output scratch buffer per series, reused across
            // kernels (it only ever grows to the longest output).
            let mut scratch = Vec::new();
            for k in kernels {
                let (ppv, max) = k.apply(s, &mut scratch, lvl);
                f.push(ppv);
                if feature_kind == RocketFeatures::PpvAndMax {
                    f.push(max);
                }
            }
            f
        })
    }

    /// Number of fitted kernels.
    pub fn n_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// `(n_dims, series_len)` seen at fit time; `None` while unfitted.
    pub fn input_shape(&self) -> Option<(usize, usize)> {
        (!self.kernels.is_empty()).then_some(self.input_shape)
    }

    /// Number of classes the fitted ridge head separates (0 before fit).
    pub fn n_classes(&self) -> usize {
        self.ridge.n_classes()
    }

    /// Predict from an immutably borrowed fitted model.
    ///
    /// This is the serving path: the transform and the ridge head only
    /// read fitted state, so concurrent threads can share one model.
    /// [`Classifier::predict`] is a thin wrapper around this. Errors
    /// instead of panicking on an unfitted model.
    pub fn predict_fitted(&self, test: &Dataset) -> Result<Vec<Label>, TsdaError> {
        if self.kernels.is_empty() {
            return Err(TsdaError::InvalidParameter("predict before fit".into()));
        }
        let clean = preprocess_dataset(test);
        let features = self.transform(&clean);
        self.ridge.try_predict_features(&features)
    }

    /// Serialise the fitted state (kernels + ridge head) into a
    /// versioned, checksummed [`tsda_core::codec`] container. The
    /// round trip is bit-exact: a loaded model predicts identically.
    pub fn save_bytes(&self) -> Result<Vec<u8>, TsdaError> {
        if self.kernels.is_empty() {
            return Err(TsdaError::InvalidParameter("cannot save an unfitted ROCKET model".into()));
        }
        let mut w = CodecWriter::new(ROCKET_KIND);
        let mut cfg = ByteWriter::new();
        cfg.usize(self.config.n_kernels);
        cfg.usize(self.config.n_threads);
        cfg.u8(match self.config.features {
            RocketFeatures::PpvAndMax => 0,
            RocketFeatures::PpvOnly => 1,
        });
        w.section("config", cfg.into_bytes());
        let mut meta = ByteWriter::new();
        meta.usize(self.input_shape.0);
        meta.usize(self.input_shape.1);
        w.section("meta", meta.into_bytes());
        let mut ks = ByteWriter::new();
        ks.usize(self.kernels.len());
        for k in &self.kernels {
            ks.usize(k.length);
            ks.f64(k.bias);
            ks.usize(k.dilation);
            ks.usize(k.padding);
            ks.usize_slice(&k.channels);
            for wrow in &k.weights {
                ks.f64_slice(wrow);
            }
        }
        w.section("kernels", ks.into_bytes());
        w.section("ridge", self.ridge.save_bytes()?);
        Ok(w.finish())
    }

    /// Rebuild a fitted model from [`Self::save_bytes`] output.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, TsdaError> {
        let r = CodecReader::parse(bytes)?;
        r.expect_kind(ROCKET_KIND)?;
        let mut cfg = ByteReader::new(r.section("config")?);
        let n_kernels = cfg.usize()?;
        let n_threads = cfg.usize()?;
        let features = match cfg.u8()? {
            0 => RocketFeatures::PpvAndMax,
            1 => RocketFeatures::PpvOnly,
            other => return Err(TsdaError::Codec(format!("unknown feature kind {other}"))),
        };
        cfg.finish()?;
        let mut meta = ByteReader::new(r.section("meta")?);
        let input_shape = (meta.usize()?, meta.usize()?);
        meta.finish()?;
        let mut ks = ByteReader::new(r.section("kernels")?);
        let count = ks.usize()?;
        if count != n_kernels {
            return Err(TsdaError::Codec(format!(
                "kernel count {count} disagrees with config {n_kernels}"
            )));
        }
        let mut kernels = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let length = ks.usize()?;
            let bias = ks.f64()?;
            let dilation = ks.usize()?;
            let padding = ks.usize()?;
            let channels = ks.usize_vec()?;
            let mut weights = Vec::with_capacity(channels.len());
            for _ in 0..channels.len() {
                let wrow = ks.f64_vec()?;
                if wrow.len() != length {
                    return Err(TsdaError::Codec("kernel weight row length mismatch".into()));
                }
                weights.push(wrow);
            }
            if dilation == 0 || length == 0 {
                return Err(TsdaError::Codec("kernel with zero length or dilation".into()));
            }
            kernels.push(Kernel { weights, channels, length, bias, dilation, padding });
        }
        ks.finish()?;
        let ridge = RidgeClassifier::load_codec(&CodecReader::parse(r.section("ridge")?)?)?;
        Ok(Self {
            config: RocketConfig { n_kernels, n_threads, features },
            kernels,
            ridge,
            input_shape,
        })
    }
}

impl Classifier for Rocket {
    fn name(&self) -> &'static str {
        "ROCKET"
    }

    fn fit(&mut self, train: &Dataset, _validation: Option<&Dataset>, rng: &mut StdRng) {
        let clean = preprocess_dataset(train);
        self.input_shape = (clean.n_dims(), clean.series_len());
        self.kernels = (0..self.config.n_kernels)
            .map(|_| Kernel::sample(clean.n_dims(), clean.series_len(), rng))
            .collect();
        let features = self.transform(&clean);
        self.ridge.fit_features(&features, clean.labels(), clean.n_classes());
    }

    fn predict(&mut self, test: &Dataset) -> Vec<Label> {
        self.predict_fitted(test).expect("predict before fit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::{normal, seeded};

    /// Two sine classes differing in frequency.
    fn sine_problem(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(seed);
        for c in 0..2 {
            let freq = if c == 0 { 0.3 } else { 0.8 };
            for _ in 0..n_per_class {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..len)
                        .map(|t| (t as f64 * freq + phase).sin() + normal(&mut rng, 0.0, 0.2))
                        .collect()]),
                    c,
                );
            }
        }
        ds
    }

    #[test]
    fn separates_frequency_classes() {
        let train = sine_problem(20, 50, 1);
        let test = sine_problem(10, 50, 2);
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 200, n_threads: 2, ..RocketConfig::default() });
        let acc = rocket.fit_score(&train, None, &test, &mut seeded(3));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn multivariate_channels_are_used() {
        // Class signal lives only in channel 1; channel 0 is noise.
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(4);
        for c in 0..2 {
            for _ in 0..15 {
                let noise: Vec<f64> = (0..40).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
                let sig: Vec<f64> = (0..40)
                    .map(|t| if c == 0 { (t as f64 * 0.3).sin() } else { (t as f64 * 0.9).sin() })
                    .collect();
                ds.push(Mts::from_dims(vec![noise, sig]), c);
            }
        }
        let test = {
            let mut t = Dataset::empty(2);
            for c in 0..2 {
                for _ in 0..5 {
                    let noise: Vec<f64> = (0..40).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
                    let sig: Vec<f64> = (0..40)
                        .map(|t| {
                            if c == 0 {
                                (t as f64 * 0.3).sin()
                            } else {
                                (t as f64 * 0.9).sin()
                            }
                        })
                        .collect();
                    t.push(Mts::from_dims(vec![noise, sig]), c);
                }
            }
            t
        };
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 300, n_threads: 2, ..RocketConfig::default() });
        let acc = rocket.fit_score(&ds, None, &test, &mut seeded(5));
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn transform_feature_count_is_two_per_kernel() {
        let ds = sine_problem(4, 30, 6);
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 50, n_threads: 2, ..RocketConfig::default() });
        rocket.fit(&ds, None, &mut seeded(7));
        let f = rocket.transform(&ds);
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|row| row.len() == 100));
    }

    #[test]
    fn ppv_is_a_proportion() {
        let ds = sine_problem(4, 30, 8);
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 50, n_threads: 1, ..RocketConfig::default() });
        rocket.fit(&ds, None, &mut seeded(9));
        let f = rocket.transform(&ds);
        for row in &f {
            for ppv in row.iter().step_by(2) {
                assert!((0.0..=1.0).contains(ppv), "{ppv}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = sine_problem(5, 30, 10);
        let mut r1 = Rocket::new(RocketConfig { n_kernels: 30, n_threads: 2, ..RocketConfig::default() });
        let mut r2 = Rocket::new(RocketConfig { n_kernels: 30, n_threads: 2, ..RocketConfig::default() });
        r1.fit(&ds, None, &mut seeded(11));
        r2.fit(&ds, None, &mut seeded(11));
        assert_eq!(r1.predict(&ds), r2.predict(&ds));
    }

    #[test]
    fn ppv_only_halves_feature_count_and_still_learns() {
        let train = sine_problem(15, 40, 20);
        let test = sine_problem(8, 40, 21);
        let mut rocket = Rocket::new(RocketConfig {
            n_kernels: 200,
            n_threads: 2,
            features: RocketFeatures::PpvOnly,
        });
        rocket.fit(&train, None, &mut seeded(22));
        let f = rocket.transform(&train);
        assert!(f.iter().all(|row| row.len() == 200));
        let acc = {
            let pred = rocket.predict(&test);
            pred.iter().zip(test.labels()).filter(|(a, b)| a == b).count() as f64
                / test.len() as f64
        };
        assert!(acc > 0.85, "PPV-only accuracy {acc}");
    }

    #[test]
    fn handles_very_short_series() {
        // PenDigits-like: length 8.
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(12);
        for c in 0..2 {
            for _ in 0..10 {
                let base = if c == 0 { 1.0 } else { -1.0 };
                ds.push(
                    Mts::from_dims(vec![(0..8)
                        .map(|t| base * t as f64 + normal(&mut rng, 0.0, 0.3))
                        .collect()]),
                    c,
                );
            }
        }
        let mut rocket = Rocket::new(RocketConfig { n_kernels: 100, n_threads: 2, ..RocketConfig::default() });
        let acc = rocket.fit_score(&ds, None, &ds, &mut seeded(13));
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
