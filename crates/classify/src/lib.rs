//! Time series classifiers: the paper's two baselines — ROCKET with a
//! ridge classifier, and InceptionTime — plus a 1-NN DTW reference.
//!
//! * [`rocket`] — random convolutional kernel transform (Dempster et
//!   al. 2020): thousands of random dilated kernels, PPV + max pooled
//!   features, transform parallelised on the shared workspace pool;
//! * [`ridge`] — multi-class ridge classifier with exact LOOCV alpha
//!   selection (the scikit-learn `RidgeClassifierCV` the paper pairs
//!   with ROCKET, Table I/II);
//! * [`inception`] — InceptionTime (Ismail Fawzi et al. 2020): an
//!   ensemble of deep 1-D CNNs with inception modules and residual
//!   connections, trained with the paper's §IV-D protocol (2:1
//!   train/val split, early stopping, cyclical LR range test);
//! * [`minirocket`] — MiniRocket (Dempster et al. 2021), the (almost)
//!   deterministic ROCKET successor, included as the ROCKET-family
//!   extension the paper's related work points to;
//! * [`knn_dtw`] — 1-nearest-neighbour DTW, the classic reference.

#![forbid(unsafe_code)]

pub mod encode;
pub mod inception;
pub mod knn_dtw;
pub mod minirocket;
pub mod persist;
pub mod ridge;
pub mod rocket;
pub mod traits;

pub use inception::{InceptionTime, InceptionTimeConfig};
pub use knn_dtw::{dtw_distance_matrix, KnnDtw};
pub use minirocket::{MiniRocket, MiniRocketConfig};
pub use persist::{load_model, load_model_bytes, save_model, SavedModel};
pub use ridge::RidgeClassifier;
pub use rocket::{Rocket, RocketConfig};
pub use traits::Classifier;
