//! Multi-class ridge classifier with exact LOOCV alpha selection — the
//! scikit-learn `RidgeClassifierCV` that the paper pairs with ROCKET.
//!
//! One-vs-rest ±1 targets, features standardised with training
//! statistics, alpha swept over `logspace(−3, 3, 10)` scored by exact
//! leave-one-out error (see [`tsda_linalg::solve::RidgeLoocv`]), argmax
//! decision.

use tsda_core::Label;
use tsda_linalg::matrix::Matrix;
use tsda_linalg::solve::{RidgeLoocv, RidgeSolution};

/// Fitted ridge classifier state.
#[derive(Default)]
pub struct RidgeClassifier {
    solution: Option<RidgeSolution>,
    feature_mean: Vec<f64>,
    feature_std: Vec<f64>,
    n_classes: usize,
}

impl RidgeClassifier {
    /// Fit on raw feature rows.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn fit_features(&mut self, features: &[Vec<f64>], labels: &[Label], n_classes: usize) {
        assert_eq!(features.len(), labels.len(), "feature/label mismatch");
        assert!(!features.is_empty(), "ridge classifier needs data");
        let n = features.len();
        let p = features[0].len();
        // Standardise features (ROCKET features have wildly different
        // scales: PPV in [0,1], max unbounded).
        self.feature_mean = vec![0.0; p];
        self.feature_std = vec![0.0; p];
        for row in features {
            for (j, &v) in row.iter().enumerate() {
                self.feature_mean[j] += v / n as f64;
            }
        }
        for row in features {
            for (j, &v) in row.iter().enumerate() {
                let d = v - self.feature_mean[j];
                self.feature_std[j] += d * d / n as f64;
            }
        }
        for s in &mut self.feature_std {
            *s = s.sqrt().max(1e-8);
        }
        let x = Matrix::from_fn(n, p, |i, j| {
            (features[i][j] - self.feature_mean[j]) / self.feature_std[j]
        });
        // One-vs-rest ±1 targets.
        let y = Matrix::from_fn(n, n_classes, |i, c| if labels[i] == c { 1.0 } else { -1.0 });
        self.solution = Some(RidgeLoocv::default().fit(&x, &y));
        self.n_classes = n_classes;
    }

    /// Predict labels for raw feature rows.
    pub fn predict_features(&self, features: &[Vec<f64>]) -> Vec<Label> {
        let sol = self.solution.as_ref().expect("predict before fit");
        features
            .iter()
            .map(|row| {
                let x: Vec<f64> = row
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v - self.feature_mean[j]) / self.feature_std[j])
                    .collect();
                let scores = sol.predict(&x);
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The alpha the LOOCV sweep selected (None before fit).
    pub fn selected_alpha(&self) -> Option<f64> {
        self.solution.as_ref().map(|s| s.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tsda_core::rng::seeded;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Label>) {
        let mut rng = seeded(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let centre = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)][c];
            x.push(vec![
                centre.0 + rng.gen_range(-1.0..1.0),
                centre.1 + rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn classifies_three_blobs() {
        let (xt, yt) = blobs(90, 1);
        let (xs, ys) = blobs(30, 2);
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&xt, &yt, 3);
        let pred = clf.predict_features(&xs);
        let acc = pred.iter().zip(&ys).filter(|(a, b)| a == b).count() as f64 / 30.0;
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn alpha_is_selected_from_the_grid() {
        let (xt, yt) = blobs(60, 3);
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&xt, &yt, 3);
        let alpha = clf.selected_alpha().unwrap();
        assert!((1e-3..=1e3).contains(&alpha));
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        // Zero-variance feature: standardisation must guard the division.
        let x = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0], vec![4.0, 5.0]];
        let y = vec![0, 0, 1, 1];
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&x, &y, 2);
        let pred = clf.predict_features(&x);
        assert_eq!(pred, y);
    }

    #[test]
    fn overparameterised_regime_works() {
        // p >> n exercises the dual LOOCV path end to end.
        let mut rng = seeded(4);
        let n = 12;
        let p = 60;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let row: Vec<f64> = (0..p)
                .map(|j| {
                    let sig = if j < 5 { (c as f64) * 2.0 - 1.0 } else { 0.0 };
                    sig + rng.gen_range(-0.3..0.3)
                })
                .collect();
            x.push(row);
            y.push(c);
        }
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&x, &y, 2);
        let pred = clf.predict_features(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(acc >= 11, "{acc}/12");
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_fit_panics() {
        RidgeClassifier::default().fit_features(&[], &[], 2);
    }
}
