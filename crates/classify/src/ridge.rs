//! Multi-class ridge classifier with exact LOOCV alpha selection — the
//! scikit-learn `RidgeClassifierCV` that the paper pairs with ROCKET.
//!
//! One-vs-rest ±1 targets, features standardised with training
//! statistics, alpha swept over `logspace(−3, 3, 10)` scored by exact
//! leave-one-out error (see [`tsda_linalg::solve::RidgeLoocv`]), argmax
//! decision.

use tsda_core::codec::{ByteReader, ByteWriter, CodecReader, CodecWriter};
use tsda_core::{Label, TsdaError};
use tsda_linalg::matrix::Matrix;
use tsda_linalg::solve::{RidgeLoocv, RidgeSolution};

/// Codec kind tag for saved ridge classifiers.
pub const RIDGE_KIND: &str = "ridge";

/// Fitted ridge classifier state.
#[derive(Default)]
pub struct RidgeClassifier {
    solution: Option<RidgeSolution>,
    feature_mean: Vec<f64>,
    feature_std: Vec<f64>,
    n_classes: usize,
}

impl RidgeClassifier {
    /// Fit on raw feature rows.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn fit_features(&mut self, features: &[Vec<f64>], labels: &[Label], n_classes: usize) {
        assert_eq!(features.len(), labels.len(), "feature/label mismatch");
        assert!(!features.is_empty(), "ridge classifier needs data");
        let n = features.len();
        let p = features[0].len();
        // Standardise features (ROCKET features have wildly different
        // scales: PPV in [0,1], max unbounded).
        self.feature_mean = vec![0.0; p];
        self.feature_std = vec![0.0; p];
        for row in features {
            for (j, &v) in row.iter().enumerate() {
                self.feature_mean[j] += v / n as f64;
            }
        }
        for row in features {
            for (j, &v) in row.iter().enumerate() {
                let d = v - self.feature_mean[j];
                self.feature_std[j] += d * d / n as f64;
            }
        }
        for s in &mut self.feature_std {
            *s = s.sqrt().max(1e-8);
        }
        let x = Matrix::from_fn(n, p, |i, j| {
            (features[i][j] - self.feature_mean[j]) / self.feature_std[j]
        });
        // One-vs-rest ±1 targets.
        let y = Matrix::from_fn(n, n_classes, |i, c| if labels[i] == c { 1.0 } else { -1.0 });
        self.solution = Some(RidgeLoocv::default().fit(&x, &y));
        self.n_classes = n_classes;
    }

    /// Predict labels for raw feature rows.
    pub fn predict_features(&self, features: &[Vec<f64>]) -> Vec<Label> {
        self.try_predict_features(features).expect("predict before fit")
    }

    /// Fallible [`Self::predict_features`]: errors instead of panicking
    /// on an unfitted model or a feature-width mismatch, which is what
    /// the serving layer needs when the input comes off the wire.
    pub fn try_predict_features(&self, features: &[Vec<f64>]) -> Result<Vec<Label>, TsdaError> {
        let sol = self
            .solution
            .as_ref()
            .ok_or_else(|| TsdaError::InvalidParameter("predict before fit".into()))?;
        let p = self.feature_mean.len();
        if let Some(bad) = features.iter().find(|row| row.len() != p) {
            return Err(TsdaError::Shape(format!(
                "feature row has {} values, model expects {p}",
                bad.len()
            )));
        }
        Ok(features
            .iter()
            .map(|row| {
                let x: Vec<f64> = row
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v - self.feature_mean[j]) / self.feature_std[j])
                    .collect();
                let scores = sol.predict(&x);
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// The alpha the LOOCV sweep selected (None before fit).
    pub fn selected_alpha(&self) -> Option<f64> {
        self.solution.as_ref().map(|s| s.alpha)
    }

    /// True once `fit_features` has run.
    pub fn is_fitted(&self) -> bool {
        self.solution.is_some()
    }

    /// Number of input features the fitted model expects.
    pub fn n_features(&self) -> Option<usize> {
        self.solution.as_ref().map(|_| self.feature_mean.len())
    }

    /// Number of output classes (0 before fit).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Serialise the fitted state into a [`tsda_core::codec`] container.
    ///
    /// Weights, standardisation statistics, and intercepts are stored as
    /// raw f64 bit patterns, so a load restores bit-identical predictions.
    pub fn save_bytes(&self) -> Result<Vec<u8>, TsdaError> {
        let sol = self
            .solution
            .as_ref()
            .ok_or_else(|| TsdaError::InvalidParameter("cannot save an unfitted ridge model".into()))?;
        let mut w = CodecWriter::new(RIDGE_KIND);
        let mut meta = ByteWriter::new();
        meta.usize(self.n_classes);
        meta.usize(self.feature_mean.len());
        w.section("meta", meta.into_bytes());
        let mut st = ByteWriter::new();
        st.f64_slice(&self.feature_mean);
        st.f64_slice(&self.feature_std);
        w.section("standardise", st.into_bytes());
        let mut s = ByteWriter::new();
        s.f64(sol.alpha);
        s.f64(sol.loocv_mse);
        s.usize(sol.weights.rows());
        s.usize(sol.weights.cols());
        s.f64_slice(sol.weights.as_slice());
        s.f64_slice(&sol.intercepts);
        w.section("solution", s.into_bytes());
        Ok(w.finish())
    }

    /// Rebuild a fitted classifier from [`Self::save_bytes`] output.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, TsdaError> {
        let r = CodecReader::parse(bytes)?;
        Self::load_codec(&r)
    }

    /// Rebuild from an already-parsed container (used when the ridge
    /// state is nested inside a ROCKET/MiniRocket file).
    pub(crate) fn load_codec(r: &CodecReader) -> Result<Self, TsdaError> {
        r.expect_kind(RIDGE_KIND)?;
        let mut meta = ByteReader::new(r.section("meta")?);
        let n_classes = meta.usize()?;
        let p = meta.usize()?;
        meta.finish()?;
        let mut st = ByteReader::new(r.section("standardise")?);
        let feature_mean = st.f64_vec()?;
        let feature_std = st.f64_vec()?;
        st.finish()?;
        if feature_mean.len() != p || feature_std.len() != p {
            return Err(TsdaError::Codec("standardisation length disagrees with meta".into()));
        }
        let mut s = ByteReader::new(r.section("solution")?);
        let alpha = s.f64()?;
        let loocv_mse = s.f64()?;
        let rows = s.usize()?;
        let cols = s.usize()?;
        let data = s.f64_vec()?;
        let intercepts = s.f64_vec()?;
        s.finish()?;
        if data.len() != rows.saturating_mul(cols) {
            return Err(TsdaError::Codec("weight matrix shape disagrees with payload".into()));
        }
        if rows != p || cols != n_classes || intercepts.len() != n_classes {
            return Err(TsdaError::Codec("solution shape disagrees with meta".into()));
        }
        let weights = Matrix::from_vec(rows, cols, data);
        Ok(Self {
            solution: Some(RidgeSolution { weights, intercepts, alpha, loocv_mse }),
            feature_mean,
            feature_std,
            n_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tsda_core::rng::seeded;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Label>) {
        let mut rng = seeded(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let centre = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)][c];
            x.push(vec![
                centre.0 + rng.gen_range(-1.0..1.0),
                centre.1 + rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn classifies_three_blobs() {
        let (xt, yt) = blobs(90, 1);
        let (xs, ys) = blobs(30, 2);
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&xt, &yt, 3);
        let pred = clf.predict_features(&xs);
        let acc = pred.iter().zip(&ys).filter(|(a, b)| a == b).count() as f64 / 30.0;
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn alpha_is_selected_from_the_grid() {
        let (xt, yt) = blobs(60, 3);
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&xt, &yt, 3);
        let alpha = clf.selected_alpha().unwrap();
        assert!((1e-3..=1e3).contains(&alpha));
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        // Zero-variance feature: standardisation must guard the division.
        let x = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0], vec![4.0, 5.0]];
        let y = vec![0, 0, 1, 1];
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&x, &y, 2);
        let pred = clf.predict_features(&x);
        assert_eq!(pred, y);
    }

    #[test]
    fn overparameterised_regime_works() {
        // p >> n exercises the dual LOOCV path end to end.
        let mut rng = seeded(4);
        let n = 12;
        let p = 60;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let row: Vec<f64> = (0..p)
                .map(|j| {
                    let sig = if j < 5 { (c as f64) * 2.0 - 1.0 } else { 0.0 };
                    sig + rng.gen_range(-0.3..0.3)
                })
                .collect();
            x.push(row);
            y.push(c);
        }
        let mut clf = RidgeClassifier::default();
        clf.fit_features(&x, &y, 2);
        let pred = clf.predict_features(&x);
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(acc >= 11, "{acc}/12");
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_fit_panics() {
        RidgeClassifier::default().fit_features(&[], &[], 2);
    }
}
