//! The classifier interface shared by the harness.

use rand::rngs::StdRng;
use tsda_core::{Dataset, Label};

/// A trainable time series classifier.
///
/// The paper's protocol (§IV-D) gives deep models a validation split cut
/// from the *original* training data before augmentation; `fit` therefore
/// takes an optional validation set. Models that do not use validation
/// (ROCKET, 1-NN) ignore it.
pub trait Classifier {
    /// Stable model name for reports.
    fn name(&self) -> &'static str;

    /// Train on `train`, optionally monitoring `validation`.
    fn fit(&mut self, train: &Dataset, validation: Option<&Dataset>, rng: &mut StdRng);

    /// Predict a label for every series of `test`.
    fn predict(&mut self, test: &Dataset) -> Vec<Label>;

    /// Convenience: fit then score accuracy on `test`.
    fn fit_score(
        &mut self,
        train: &Dataset,
        validation: Option<&Dataset>,
        test: &Dataset,
        rng: &mut StdRng,
    ) -> f64 {
        self.fit(train, validation, rng);
        let pred = self.predict(test);
        tsda_core::metrics::accuracy(&pred, test.labels())
    }
}
