//! The classifier interface shared by the harness.

use rand::rngs::StdRng;
use tsda_core::{Dataset, Label};

/// A trainable time series classifier.
///
/// The paper's protocol (§IV-D) gives deep models a validation split cut
/// from the *original* training data before augmentation; `fit` therefore
/// takes an optional validation set. Models that do not use validation
/// (ROCKET, 1-NN) ignore it.
pub trait Classifier {
    /// Stable model name for reports.
    fn name(&self) -> &'static str;

    /// Train on `train`, optionally monitoring `validation`.
    fn fit(&mut self, train: &Dataset, validation: Option<&Dataset>, rng: &mut StdRng);

    /// Predict a label for every series of `test`.
    ///
    /// Takes `&mut self` only because deep models cache activations
    /// during forward passes. The feature-based models (ROCKET,
    /// MiniRocket, ridge) additionally expose an equivalent `&self`
    /// prediction path (`predict_fitted` / `try_predict_features`) so
    /// serving threads can share one fitted model without locking; this
    /// trait method is a thin wrapper around it for those types.
    fn predict(&mut self, test: &Dataset) -> Vec<Label>;

    /// Convenience: fit then score accuracy on `test`.
    fn fit_score(
        &mut self,
        train: &Dataset,
        validation: Option<&Dataset>,
        test: &Dataset,
        rng: &mut StdRng,
    ) -> f64 {
        self.fit(train, validation, rng);
        let pred = self.predict(test);
        tsda_core::metrics::accuracy(&pred, test.labels())
    }
}
