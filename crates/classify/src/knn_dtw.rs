//! 1-nearest-neighbour DTW — the classic time series classification
//! reference baseline, kept here to sanity-check the two paper models.

use crate::encode::preprocess_dataset;
use crate::traits::Classifier;
use rand::rngs::StdRng;
use tsda_core::parallel::Pool;
use tsda_core::{Dataset, Label};
use tsda_signal::dtw::{dtw_distance, DtwOptions};

/// 1-NN classifier under (optionally banded) DTW distance.
pub struct KnnDtw {
    /// Sakoe-Chiba band fraction; `None` for unconstrained DTW.
    pub band_fraction: Option<f64>,
    train: Option<Dataset>,
}

impl KnnDtw {
    /// New 1-NN DTW with the given band.
    pub fn new(band_fraction: Option<f64>) -> Self {
        Self { band_fraction, train: None }
    }
}

/// The full `queries × references` DTW distance matrix (row-major,
/// one row per query), computed on the shared pool — one row per work
/// unit, so the matrix is bit-identical for any thread count.
pub fn dtw_distance_matrix(queries: &Dataset, references: &Dataset, opts: DtwOptions) -> Vec<f64> {
    let n_ref = references.len();
    let mut matrix = vec![0.0f64; queries.len() * n_ref];
    Pool::global().par_chunks_mut(&mut matrix, n_ref.max(1), |q, row| {
        let s = &queries.series()[q];
        for (cell, t) in row.iter_mut().zip(references.series()) {
            *cell = dtw_distance(s, t, opts);
        }
    });
    matrix
}

impl Default for KnnDtw {
    fn default() -> Self {
        Self::new(Some(0.1))
    }
}

impl Classifier for KnnDtw {
    fn name(&self) -> &'static str {
        "1NN-DTW"
    }

    fn fit(&mut self, train: &Dataset, _validation: Option<&Dataset>, _rng: &mut StdRng) {
        self.train = Some(preprocess_dataset(train));
    }

    fn predict(&mut self, test: &Dataset) -> Vec<Label> {
        let train = self.train.as_ref().expect("predict before fit");
        let opts = DtwOptions { band_fraction: self.band_fraction };
        let clean = preprocess_dataset(test);
        let n_train = train.len();
        if n_train == 0 {
            return vec![0; clean.len()];
        }
        let matrix = dtw_distance_matrix(&clean, train, opts);
        matrix
            .chunks(n_train)
            .map(|row| {
                row.iter()
                    .zip(train.labels())
                    .min_by(|a, b| a.0.total_cmp(b.0))
                    .map(|(_, &l)| l)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::{normal, seeded};
    use tsda_core::Mts;

    fn shifted_pattern_problem(n: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(seed);
        for c in 0..2 {
            for _ in 0..n {
                use rand::Rng;
                let shift: usize = rng.gen_range(0..6);
                let series: Vec<f64> = (0..32)
                    .map(|t| {
                        let x = (t + 32 - shift) % 32;
                        let bump = if c == 0 { (8..12).contains(&x) } else { (20..24).contains(&x) };
                        (if bump { 2.0 } else { 0.0 }) + normal(&mut rng, 0.0, 0.1)
                    })
                    .collect();
                ds.push(Mts::from_dims(vec![series]), c);
            }
        }
        ds
    }

    #[test]
    fn classifies_shift_invariant_patterns() {
        let train = shifted_pattern_problem(8, 1);
        let test = shifted_pattern_problem(4, 2);
        let mut knn = KnnDtw::new(Some(0.3));
        let acc = knn.fit_score(&train, None, &test, &mut seeded(3));
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn perfect_on_training_data() {
        let train = shifted_pattern_problem(5, 4);
        let mut knn = KnnDtw::default();
        let acc = knn.fit_score(&train, None, &train, &mut seeded(5));
        assert_eq!(acc, 1.0);
    }
}
