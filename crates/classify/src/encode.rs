//! Dataset → tensor/feature encoding shared by the classifiers.

use tsda_core::preprocess::{impute_linear, znormalize_series};
use tsda_core::Dataset;
use tsda_neuro::tensor::Tensor;

/// Convert a dataset to a `[n, channels, time]` `f32` tensor after
/// imputation and per-series z-normalisation — the standard archive
/// preprocessing both baselines assume.
pub fn dataset_to_tensor3(ds: &Dataset) -> Tensor {
    let n = ds.len();
    let c = ds.n_dims();
    let t = ds.series_len();
    let mut data = Vec::with_capacity(n * c * t);
    for (s, _) in ds.iter() {
        let clean = znormalize_series(&impute_linear(s));
        for v in clean.as_flat() {
            data.push(*v as f32);
        }
    }
    Tensor::from_flat(&[n, c, t], data)
}

/// Preprocess one dataset into per-series cleaned `f64` series (imputed,
/// z-normalised) for the non-neural classifiers.
pub fn preprocess_dataset(ds: &Dataset) -> Dataset {
    let mut out = Dataset::empty(ds.n_classes());
    for (s, l) in ds.iter() {
        out.push(znormalize_series(&impute_linear(s)), l);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::Mts;

    #[test]
    fn tensor_shape_and_normalisation() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::from_dims(vec![vec![1.0, 2.0, 3.0, 4.0]]), 0);
        let t = dataset_to_tensor3(&ds);
        assert_eq!(t.shape(), &[1, 1, 4]);
        let mean: f32 = t.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn missing_values_are_gone_after_preprocess() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::from_dims(vec![vec![1.0, f64::NAN, 3.0]]), 0);
        let clean = preprocess_dataset(&ds);
        assert!(!clean.series()[0].has_missing());
    }
}
