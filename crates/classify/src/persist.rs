//! Save / load dispatch over every persistable classifier.
//!
//! Each model serialises itself into the [`tsda_core::codec`] container
//! (magic + version + section table + CRC); this module adds the
//! kind-tag dispatch so callers — the serving layer above all — can load
//! a file without knowing in advance which model it holds:
//!
//! ```no_run
//! use tsda_classify::persist::{load_model, SavedModel};
//! match load_model(std::path::Path::new("models/rocket.tsda")).unwrap() {
//!     SavedModel::Rocket(m) => drop(m),
//!     other => panic!("expected ROCKET, got {}", other.kind()),
//! }
//! ```
//!
//! All round trips are bit-exact: a loaded model produces predictions
//! identical to the fitted original (asserted by the persistence test
//! suite for all four model types).

use crate::inception::{InceptionTime, INCEPTION_KIND};
use crate::minirocket::{MiniRocket, MINIROCKET_KIND};
use crate::ridge::{RidgeClassifier, RIDGE_KIND};
use crate::rocket::{Rocket, ROCKET_KIND};
use std::path::Path;
use tsda_core::codec::CodecReader;
use tsda_core::TsdaError;

/// A loaded model of any persistable kind.
pub enum SavedModel {
    /// ROCKET: random kernels + ridge head.
    Rocket(Rocket),
    /// MiniRocket: fixed kernel bank + ridge head.
    MiniRocket(MiniRocket),
    /// Standalone ridge classifier over raw feature vectors.
    Ridge(RidgeClassifier),
    /// InceptionTime ensemble.
    InceptionTime(InceptionTime),
}

impl SavedModel {
    /// The codec kind tag of the wrapped model.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Rocket(_) => ROCKET_KIND,
            Self::MiniRocket(_) => MINIROCKET_KIND,
            Self::Ridge(_) => RIDGE_KIND,
            Self::InceptionTime(_) => INCEPTION_KIND,
        }
    }

    /// Serialise the wrapped model (takes `&mut self` because the
    /// InceptionTime parameter visitor does; nothing is modified).
    pub fn save_bytes(&mut self) -> Result<Vec<u8>, TsdaError> {
        match self {
            Self::Rocket(m) => m.save_bytes(),
            Self::MiniRocket(m) => m.save_bytes(),
            Self::Ridge(m) => m.save_bytes(),
            Self::InceptionTime(m) => m.save_bytes(),
        }
    }
}

/// Load a model from serialised bytes, dispatching on the kind tag.
pub fn load_model_bytes(bytes: &[u8]) -> Result<SavedModel, TsdaError> {
    let kind = CodecReader::parse(bytes)?.kind().to_string();
    match kind.as_str() {
        ROCKET_KIND => Rocket::load_bytes(bytes).map(SavedModel::Rocket),
        MINIROCKET_KIND => MiniRocket::load_bytes(bytes).map(SavedModel::MiniRocket),
        RIDGE_KIND => RidgeClassifier::load_bytes(bytes).map(SavedModel::Ridge),
        INCEPTION_KIND => InceptionTime::load_bytes(bytes).map(SavedModel::InceptionTime),
        other => Err(TsdaError::Codec(format!("unknown model kind {other:?}"))),
    }
}

/// Load a model file, dispatching on the kind tag.
pub fn load_model(path: &Path) -> Result<SavedModel, TsdaError> {
    let bytes = std::fs::read(path)?;
    load_model_bytes(&bytes)
}

/// Save a model to a file.
pub fn save_model(model: &mut SavedModel, path: &Path) -> Result<(), TsdaError> {
    std::fs::write(path, model.save_bytes()?)?;
    Ok(())
}
