//! MiniRocket (Dempster, Schmidt & Webb, KDD 2021) — the (almost)
//! deterministic successor of ROCKET the paper's related work points to.
//!
//! Differences from ROCKET: a *fixed* kernel set (length 9, weights in
//! {−1, 2} with exactly three 2s → 84 kernels), dilations spread on a
//! log scale to cover the series, biases drawn from the empirical
//! quantiles of the convolution output on training samples, and PPV-only
//! features. The only randomness left is which training sample supplies
//! each bias (and the channel subset per kernel in the multivariate
//! case).

use crate::encode::preprocess_dataset;
use crate::ridge::RidgeClassifier;
use crate::traits::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::codec::{ByteReader, ByteWriter, CodecReader, CodecWriter};
use tsda_core::{Dataset, Label, Mts, TsdaError};

/// Codec kind tag for saved MiniRocket models.
pub const MINIROCKET_KIND: &str = "minirocket";

/// MiniRocket configuration.
#[derive(Debug, Clone)]
pub struct MiniRocketConfig {
    /// Target number of features (kernel × dilation × bias triples).
    /// The reference default is 9 996 (= 84 × 119).
    pub n_features: usize,
}

impl Default for MiniRocketConfig {
    /// Laptop-scale default (the paper-faithful value is 9 996).
    fn default() -> Self {
        Self { n_features: 504 }
    }
}

impl MiniRocketConfig {
    /// The reference configuration: 9 996 features.
    pub fn paper() -> Self {
        Self { n_features: 9_996 }
    }
}

const KERNEL_LEN: usize = 9;

/// The 84 fixed kernels: weight 2 at three of nine positions, −1
/// elsewhere (each kernel sums to zero: 3·2 + 6·(−1) = 0).
fn fixed_kernels() -> Vec<[f64; KERNEL_LEN]> {
    let mut kernels = Vec::with_capacity(84);
    for a in 0..KERNEL_LEN {
        for b in (a + 1)..KERNEL_LEN {
            for c in (b + 1)..KERNEL_LEN {
                let mut k = [-1.0; KERNEL_LEN];
                k[a] = 2.0;
                k[b] = 2.0;
                k[c] = 2.0;
                kernels.push(k);
            }
        }
    }
    kernels
}

/// One fitted feature: kernel index, dilation, channel subset, bias.
#[derive(Debug, Clone)]
struct Feature {
    kernel: usize,
    dilation: usize,
    channels: Vec<usize>,
    bias: f64,
}

/// Convolve one series with a fixed kernel at a dilation, summed over
/// the selected channels, "same" padding; returns the raw outputs.
fn convolve(s: &Mts, kernel: &[f64; KERNEL_LEN], dilation: usize, channels: &[usize]) -> Vec<f64> {
    let t_len = s.len();
    let pad = (KERNEL_LEN - 1) * dilation / 2;
    let mut out = vec![0.0; t_len];
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &w) in kernel.iter().enumerate() {
            let idx = t as isize + (k * dilation) as isize - pad as isize;
            if idx >= 0 && (idx as usize) < t_len {
                for &ch in channels {
                    acc += w * s.dim(ch)[idx as usize];
                }
            }
        }
        *o = acc;
    }
    out
}

/// The MiniRocket classifier: fixed-kernel transform + ridge with LOOCV.
pub struct MiniRocket {
    config: MiniRocketConfig,
    features: Vec<Feature>,
    kernels: Vec<[f64; KERNEL_LEN]>,
    ridge: RidgeClassifier,
    /// Input shape seen at fit time, `(n_dims, series_len)`; `(0, 0)`
    /// while unfitted.
    input_shape: (usize, usize),
}

impl MiniRocket {
    /// New MiniRocket with the given configuration.
    pub fn new(config: MiniRocketConfig) -> Self {
        Self {
            config,
            features: Vec::new(),
            kernels: fixed_kernels(),
            ridge: RidgeClassifier::default(),
            input_shape: (0, 0),
        }
    }

    /// Number of fitted features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// `(n_dims, series_len)` seen at fit time; `None` while unfitted.
    pub fn input_shape(&self) -> Option<(usize, usize)> {
        (!self.features.is_empty()).then_some(self.input_shape)
    }

    /// Number of classes the fitted ridge head separates (0 before fit).
    pub fn n_classes(&self) -> usize {
        self.ridge.n_classes()
    }

    /// Predict from an immutably borrowed fitted model (serving path;
    /// see [`crate::rocket::Rocket::predict_fitted`]).
    pub fn predict_fitted(&self, test: &Dataset) -> Result<Vec<Label>, TsdaError> {
        if self.features.is_empty() {
            return Err(TsdaError::InvalidParameter("predict before fit".into()));
        }
        let clean = preprocess_dataset(test);
        let features = self.transform(&clean);
        self.ridge.try_predict_features(&features)
    }

    /// Serialise the fitted state into a [`tsda_core::codec`] container.
    /// The fixed 84-kernel bank is reconstructed on load, so only the
    /// dilation/channel/bias triples and the ridge head are stored.
    pub fn save_bytes(&self) -> Result<Vec<u8>, TsdaError> {
        if self.features.is_empty() {
            return Err(TsdaError::InvalidParameter(
                "cannot save an unfitted MiniRocket model".into(),
            ));
        }
        let mut w = CodecWriter::new(MINIROCKET_KIND);
        let mut cfg = ByteWriter::new();
        cfg.usize(self.config.n_features);
        w.section("config", cfg.into_bytes());
        let mut meta = ByteWriter::new();
        meta.usize(self.input_shape.0);
        meta.usize(self.input_shape.1);
        w.section("meta", meta.into_bytes());
        let mut fs = ByteWriter::new();
        fs.usize(self.features.len());
        for f in &self.features {
            fs.usize(f.kernel);
            fs.usize(f.dilation);
            fs.f64(f.bias);
            fs.usize_slice(&f.channels);
        }
        w.section("features", fs.into_bytes());
        w.section("ridge", self.ridge.save_bytes()?);
        Ok(w.finish())
    }

    /// Rebuild a fitted model from [`Self::save_bytes`] output.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, TsdaError> {
        let r = CodecReader::parse(bytes)?;
        r.expect_kind(MINIROCKET_KIND)?;
        let mut cfg = ByteReader::new(r.section("config")?);
        let n_features = cfg.usize()?;
        cfg.finish()?;
        let mut meta = ByteReader::new(r.section("meta")?);
        let input_shape = (meta.usize()?, meta.usize()?);
        meta.finish()?;
        let kernels = fixed_kernels();
        let mut fs = ByteReader::new(r.section("features")?);
        let count = fs.usize()?;
        let mut features = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let kernel = fs.usize()?;
            let dilation = fs.usize()?;
            let bias = fs.f64()?;
            let channels = fs.usize_vec()?;
            if kernel >= kernels.len() {
                return Err(TsdaError::Codec(format!("kernel index {kernel} out of range")));
            }
            if dilation == 0 {
                return Err(TsdaError::Codec("feature with zero dilation".into()));
            }
            features.push(Feature { kernel, dilation, channels, bias });
        }
        fs.finish()?;
        let ridge = RidgeClassifier::load_codec(&CodecReader::parse(r.section("ridge")?)?)?;
        Ok(Self { config: MiniRocketConfig { n_features }, features, kernels, ridge, input_shape })
    }

    /// PPV features for every series.
    pub fn transform(&self, ds: &Dataset) -> Vec<Vec<f64>> {
        ds.series()
            .iter()
            .map(|s| {
                self.features
                    .iter()
                    .map(|f| {
                        let conv = convolve(s, &self.kernels[f.kernel], f.dilation, &f.channels);
                        let pos = conv.iter().filter(|&&v| v > f.bias).count();
                        pos as f64 / conv.len().max(1) as f64
                    })
                    .collect()
            })
            .collect()
    }

    fn fit_features(&mut self, ds: &Dataset, rng: &mut StdRng) {
        let t_len = ds.series_len();
        let n_ch = ds.n_dims();
        // Dilations on a log scale, as many as needed for the feature
        // budget: features = 84 kernels × dilations × biases_per_pair.
        let max_exp = (((t_len - 1) as f64 / (KERNEL_LEN - 1) as f64).max(1.0)).log2();
        let n_dilations = ((self.config.n_features as f64 / 84.0).ceil() as usize).clamp(1, 32);
        let dilations: Vec<usize> = (0..n_dilations)
            .map(|i| {
                let e = max_exp * i as f64 / n_dilations.max(2).saturating_sub(1) as f64;
                (2f64.powf(e).floor() as usize).max(1)
            })
            .collect();
        self.features.clear();
        'outer: for &dilation in &dilations {
            for kernel in 0..self.kernels.len() {
                if self.features.len() >= self.config.n_features {
                    break 'outer;
                }
                // Random channel subset (multivariate MiniRocket).
                let n_sel = if n_ch <= 1 {
                    1
                } else {
                    let max_ch_exp = ((n_ch as f64 + 1.0).log2()).max(0.0);
                    (2f64.powf(rng.gen_range(0.0..max_ch_exp)).floor() as usize).clamp(1, n_ch)
                };
                let mut channels: Vec<usize> = (0..n_ch).collect();
                for i in 0..n_sel {
                    let j = rng.gen_range(i..n_ch);
                    channels.swap(i, j);
                }
                channels.truncate(n_sel);
                // Bias: a random quantile of the convolution output on a
                // random training sample.
                let sample = &ds.series()[rng.gen_range(0..ds.len())];
                let mut conv = convolve(sample, &self.kernels[kernel], dilation, &channels);
                conv.sort_by(|a, b| a.total_cmp(b));
                let q: f64 = rng.gen_range(0.1..0.9);
                let bias = conv[((conv.len() - 1) as f64 * q) as usize];
                self.features.push(Feature { kernel, dilation, channels, bias });
            }
        }
    }
}

impl Classifier for MiniRocket {
    fn name(&self) -> &'static str {
        "MiniRocket"
    }

    fn fit(&mut self, train: &Dataset, _validation: Option<&Dataset>, rng: &mut StdRng) {
        let clean = preprocess_dataset(train);
        self.input_shape = (clean.n_dims(), clean.series_len());
        self.fit_features(&clean, rng);
        let features = self.transform(&clean);
        self.ridge.fit_features(&features, clean.labels(), clean.n_classes());
    }

    fn predict(&mut self, test: &Dataset) -> Vec<Label> {
        self.predict_fitted(test).expect("predict before fit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsda_core::rng::{normal, seeded};

    #[test]
    fn there_are_exactly_84_fixed_kernels() {
        let ks = fixed_kernels();
        assert_eq!(ks.len(), 84);
        for k in &ks {
            let sum: f64 = k.iter().sum();
            assert_eq!(sum, 0.0);
            assert_eq!(k.iter().filter(|&&w| w == 2.0).count(), 3);
        }
    }

    fn sine_problem(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(seed);
        for c in 0..2 {
            let freq = if c == 0 { 0.3 } else { 0.8 };
            for _ in 0..n_per_class {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..len)
                        .map(|t| (t as f64 * freq + phase).sin() + normal(&mut rng, 0.0, 0.2))
                        .collect()]),
                    c,
                );
            }
        }
        ds
    }

    #[test]
    fn separates_frequency_classes() {
        let train = sine_problem(20, 50, 1);
        let test = sine_problem(10, 50, 2);
        let mut mr = MiniRocket::new(MiniRocketConfig { n_features: 336 });
        let acc = mr.fit_score(&train, None, &test, &mut seeded(3));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn features_are_ppv_proportions() {
        let ds = sine_problem(4, 30, 4);
        let mut mr = MiniRocket::new(MiniRocketConfig { n_features: 168 });
        mr.fit(&ds, None, &mut seeded(5));
        for row in mr.transform(&ds) {
            assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn respects_feature_budget() {
        let ds = sine_problem(4, 40, 6);
        let mut mr = MiniRocket::new(MiniRocketConfig { n_features: 100 });
        mr.fit(&ds, None, &mut seeded(7));
        assert!(mr.n_features() <= 100);
        assert!(mr.n_features() >= 84); // at least one full kernel pass
    }
}
