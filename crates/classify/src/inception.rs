//! InceptionTime (Ismail Fawaz et al., DMKD 2020).
//!
//! Each network stacks `depth` inception modules — a 1×1 bottleneck
//! feeding three parallel wide convolutions plus a max-pool → 1×1
//! branch, concatenated, batch-normalised and ReLU-activated — with a
//! residual shortcut every three modules, global average pooling and a
//! linear head. The model is an *ensemble*: several networks with
//! different initialisations vote by averaging softmax outputs.
//!
//! Training follows the paper's §IV-D protocol: a 2:1 train/validation
//! split (augmented data never enter validation), up to `max_epochs`
//! epochs with early stopping, best-by-validation checkpointing, and a
//! cyclical learning-rate range test per dataset whose "valley" sets the
//! training rate.

use crate::encode::dataset_to_tensor3;
use crate::traits::Classifier;
use rand::rngs::StdRng;
use tsda_core::codec::{ByteReader, ByteWriter, CodecReader, CodecWriter};
use tsda_core::{Dataset, Label, TsdaError};
use tsda_neuro::layers::{
    Activation, BatchNorm1d, Conv1d, Dense, GlobalAvgPool1d, Layer, MaxPool1dSame,
};
use tsda_neuro::loss::softmax;
use tsda_neuro::tensor::Tensor;
use tsda_neuro::train::{lr_range_test, train_classifier, TrainConfig};

/// Codec kind tag for saved InceptionTime ensembles.
pub const INCEPTION_KIND: &str = "inceptiontime";

/// Hyper-parameters of the InceptionTime ensemble.
#[derive(Debug, Clone)]
pub struct InceptionTimeConfig {
    /// Filters per branch (paper: 32); the module outputs `4 × filters`
    /// channels.
    pub filters: usize,
    /// Number of inception modules (paper: 6; residual every 3).
    pub depth: usize,
    /// The three branch kernel sizes (paper: 39/19/9; clamped to the
    /// series length and forced odd).
    pub kernel_sizes: [usize; 3],
    /// Ensemble size (paper: 5).
    pub ensemble: usize,
    /// Fraction of training data kept for training when the caller
    /// supplies no validation set (paper: 2:1 split → 2/3).
    pub train_fraction: f64,
    /// Epoch/early-stopping configuration (paper: 200 epochs, patience 30).
    pub train: TrainConfig,
    /// Run the LR range test before training (paper protocol); when
    /// false, `train.lr` is used as-is.
    pub use_lr_range_test: bool,
}

impl Default for InceptionTimeConfig {
    /// Laptop-scale profile: same architecture shape, smaller widths.
    fn default() -> Self {
        Self {
            filters: 4,
            depth: 3,
            kernel_sizes: [19, 9, 5],
            ensemble: 2,
            train_fraction: 2.0 / 3.0,
            train: TrainConfig { max_epochs: 40, batch_size: 16, patience: 12, lr: 1e-3 },
            use_lr_range_test: true,
        }
    }
}

impl InceptionTimeConfig {
    /// The paper's configuration: 32 filters, depth 6, kernels 39/19/9,
    /// ensemble of 5, 200 epochs, patience 30.
    pub fn paper() -> Self {
        Self {
            filters: 32,
            depth: 6,
            kernel_sizes: [39, 19, 9],
            ensemble: 5,
            train_fraction: 2.0 / 3.0,
            train: TrainConfig { max_epochs: 200, batch_size: 64, patience: 30, lr: 1e-3 },
            use_lr_range_test: true,
        }
    }
}

/// Concatenate rank-3 tensors along the channel axis.
fn concat_channels(parts: &[Tensor]) -> Tensor {
    let n = parts[0].shape()[0];
    let t = parts[0].shape()[2];
    let total_c: usize = parts.iter().map(|p| p.shape()[1]).sum();
    let mut out = Tensor::zeros(&[n, total_c, t]);
    let mut offset = 0;
    for p in parts {
        let c = p.shape()[1];
        for b in 0..n {
            for ch in 0..c {
                for step in 0..t {
                    *out.at3_mut(b, offset + ch, step) = p.at3(b, ch, step);
                }
            }
        }
        offset += c;
    }
    out
}

/// Split a rank-3 gradient along channels into the given widths.
fn split_channels(grad: &Tensor, widths: &[usize]) -> Vec<Tensor> {
    let n = grad.shape()[0];
    let t = grad.shape()[2];
    let mut out = Vec::with_capacity(widths.len());
    let mut offset = 0;
    for &c in widths {
        let mut g = Tensor::zeros(&[n, c, t]);
        for b in 0..n {
            for ch in 0..c {
                for step in 0..t {
                    *g.at3_mut(b, ch, step) = grad.at3(b, offset + ch, step);
                }
            }
        }
        offset += c;
        out.push(g);
    }
    out
}

/// One inception module.
struct InceptionModule {
    bottleneck: Option<Conv1d>,
    convs: Vec<Conv1d>,
    pool: MaxPool1dSame,
    pool_conv: Conv1d,
    bn: BatchNorm1d,
    act: Activation,
    filters: usize,
}

impl InceptionModule {
    fn new(in_ch: usize, filters: usize, kernels: &[usize; 3], series_len: usize, rng: &mut StdRng) -> Self {
        let odd = |k: usize| {
            let k = k.min(series_len.max(2));
            if k.is_multiple_of(2) {
                (k - 1).max(1)
            } else {
                k
            }
        };
        let bottleneck = (in_ch > 1).then(|| Conv1d::new(in_ch, filters, 1, false, rng));
        let branch_in = if in_ch > 1 { filters } else { in_ch };
        let convs = kernels
            .iter()
            .map(|&k| Conv1d::new(branch_in, filters, odd(k), false, rng))
            .collect();
        Self {
            bottleneck,
            convs,
            pool: MaxPool1dSame::new(3),
            pool_conv: Conv1d::new(in_ch, filters, 1, false, rng),
            bn: BatchNorm1d::new(4 * filters),
            act: Activation::relu(),
            filters,
        }
    }

    fn out_channels(&self) -> usize {
        4 * self.filters
    }

    /// Swap the ReLU for a smooth activation so finite-difference
    /// gradient checks do not trip on kinks (batch-norm centres the
    /// pre-activations on zero, right where ReLU is non-differentiable).
    #[cfg(test)]
    fn use_tanh_for_gradcheck(&mut self) {
        self.act = Activation::tanh();
    }
}

impl Layer for InceptionModule {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let bottlenecked = match &mut self.bottleneck {
            Some(b) => b.forward(x, train),
            None => x.clone(),
        };
        let mut parts: Vec<Tensor> = self
            .convs
            .iter_mut()
            .map(|c| c.forward(&bottlenecked, train))
            .collect();
        let pooled = self.pool.forward(x, train);
        parts.push(self.pool_conv.forward(&pooled, train));
        let z = concat_channels(&parts);
        let z = self.bn.forward(&z, train);
        self.act.forward(&z, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.act.backward(grad_out);
        let g = self.bn.backward(&g);
        let widths = vec![self.filters; 4];
        let parts = split_channels(&g, &widths);
        // Conv branches accumulate into the bottleneck output gradient.
        let mut g_bottleneck: Option<Tensor> = None;
        for (conv, gp) in self.convs.iter_mut().zip(&parts[..3]) {
            let gb = conv.backward(gp);
            match &mut g_bottleneck {
                Some(acc) => acc.add_assign(&gb),
                None => g_bottleneck = Some(gb),
            }
        }
        let g_bottleneck = g_bottleneck.expect("three conv branches");
        let mut gx = match &mut self.bottleneck {
            Some(b) => b.backward(&g_bottleneck),
            None => g_bottleneck,
        };
        // Pool branch.
        let gp = self.pool_conv.backward(&parts[3]);
        gx.add_assign(&self.pool.backward(&gp));
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        if let Some(b) = &mut self.bottleneck {
            b.visit_params(f);
        }
        for c in &mut self.convs {
            c.visit_params(f);
        }
        self.pool_conv.visit_params(f);
        self.bn.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.bn.visit_buffers(f);
    }
}

/// Residual shortcut: 1×1 conv + batch norm.
struct Shortcut {
    conv: Conv1d,
    bn: BatchNorm1d,
}

impl Shortcut {
    fn new(in_ch: usize, out_ch: usize, rng: &mut StdRng) -> Self {
        Self { conv: Conv1d::new(in_ch, out_ch, 1, false, rng), bn: BatchNorm1d::new(out_ch) }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.conv.forward(x, train);
        self.bn.forward(&y, train)
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        let g = self.bn.backward(g);
        self.conv.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.conv.visit_params(f);
        self.bn.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.bn.visit_buffers(f);
    }
}

/// One ensemble member: the full InceptionTime network.
struct InceptionNet {
    modules: Vec<InceptionModule>,
    shortcuts: Vec<Shortcut>,
    res_acts: Vec<Activation>,
    gap: GlobalAvgPool1d,
    head: Dense,
    depth: usize,
}

impl InceptionNet {
    fn new(cfg: &InceptionTimeConfig, in_ch: usize, series_len: usize, n_classes: usize, rng: &mut StdRng) -> Self {
        let mut modules = Vec::with_capacity(cfg.depth);
        let mut shortcuts = Vec::new();
        let mut res_acts = Vec::new();
        let mut cur_ch = in_ch;
        let mut res_ch = in_ch;
        for d in 0..cfg.depth {
            let m = InceptionModule::new(cur_ch, cfg.filters, &cfg.kernel_sizes, series_len, rng);
            cur_ch = m.out_channels();
            modules.push(m);
            if d % 3 == 2 {
                shortcuts.push(Shortcut::new(res_ch, cur_ch, rng));
                res_acts.push(Activation::relu());
                res_ch = cur_ch;
            }
        }
        let head = Dense::new(cur_ch, n_classes, rng);
        Self { modules, shortcuts, res_acts, gap: GlobalAvgPool1d::new(), head, depth: cfg.depth }
    }
}

impl Layer for InceptionNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        let mut res_input = x.clone();
        let mut si = 0;
        for d in 0..self.depth {
            cur = self.modules[d].forward(&cur, train);
            if d % 3 == 2 {
                let s = self.shortcuts[si].forward(&res_input, train);
                let mut sum = cur;
                sum.add_assign(&s);
                cur = self.res_acts[si].forward(&sum, train);
                res_input = cur.clone();
                si += 1;
            }
        }
        let pooled = self.gap.forward(&cur, train);
        self.head.forward(&pooled, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.head.backward(grad_out);
        let mut g = self.gap.backward(&g);
        let mut si = self.shortcuts.len();
        // Shortcut gradients to inject at each residual segment start
        // (segment s starts at module 3s).
        let mut stash: Vec<Option<Tensor>> = vec![None; self.shortcuts.len()];
        for d in (0..self.depth).rev() {
            if d % 3 == 2 {
                si -= 1;
                g = self.res_acts[si].backward(&g);
                stash[si] = Some(self.shortcuts[si].backward(&g));
            }
            g = self.modules[d].backward(&g);
            if d % 3 == 0 && d / 3 < stash.len() {
                if let Some(extra) = &stash[d / 3] {
                    g.add_assign(extra);
                }
            }
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        let mut si = 0;
        for d in 0..self.depth {
            self.modules[d].visit_params(f);
            if d % 3 == 2 {
                self.shortcuts[si].visit_params(f);
                si += 1;
            }
        }
        self.head.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        let mut si = 0;
        for d in 0..self.depth {
            self.modules[d].visit_buffers(f);
            if d % 3 == 2 {
                self.shortcuts[si].visit_buffers(f);
                si += 1;
            }
        }
    }
}

/// The InceptionTime ensemble classifier.
pub struct InceptionTime {
    config: InceptionTimeConfig,
    members: Vec<InceptionNet>,
    n_classes: usize,
    /// Input shape seen at fit time, `(n_dims, series_len)`; needed to
    /// rebuild the architecture on load and to validate serving inputs.
    input_shape: (usize, usize),
}

impl InceptionTime {
    /// New (unfitted) ensemble.
    pub fn new(config: InceptionTimeConfig) -> Self {
        Self { config, members: Vec::new(), n_classes: 0, input_shape: (0, 0) }
    }

    /// `(n_dims, series_len)` seen at fit time; `None` while unfitted.
    pub fn input_shape(&self) -> Option<(usize, usize)> {
        (!self.members.is_empty()).then_some(self.input_shape)
    }

    /// Number of output classes (0 before fit).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Serialise the fitted ensemble into a [`tsda_core::codec`]
    /// container: the architecture hyper-parameters plus, per member,
    /// every parameter tensor and batch-norm running buffer as raw f32
    /// bit patterns. Takes `&mut self` because [`Layer::visit_params`]
    /// does; nothing is modified.
    pub fn save_bytes(&mut self) -> Result<Vec<u8>, TsdaError> {
        if self.members.is_empty() {
            return Err(TsdaError::InvalidParameter(
                "cannot save an unfitted InceptionTime model".into(),
            ));
        }
        let mut w = CodecWriter::new(INCEPTION_KIND);
        let mut cfg = ByteWriter::new();
        cfg.usize(self.config.filters);
        cfg.usize(self.config.depth);
        for k in self.config.kernel_sizes {
            cfg.usize(k);
        }
        cfg.usize(self.config.ensemble);
        cfg.f64(self.config.train_fraction);
        cfg.usize(self.config.train.max_epochs);
        cfg.usize(self.config.train.batch_size);
        cfg.usize(self.config.train.patience);
        cfg.f32(self.config.train.lr);
        cfg.u8(self.config.use_lr_range_test as u8);
        w.section("config", cfg.into_bytes());
        let mut meta = ByteWriter::new();
        meta.usize(self.input_shape.0);
        meta.usize(self.input_shape.1);
        meta.usize(self.n_classes);
        meta.usize(self.members.len());
        w.section("meta", meta.into_bytes());
        let mut ms = ByteWriter::new();
        for member in &mut self.members {
            let mut params: Vec<f32> = Vec::new();
            member.visit_params(&mut |p, _| params.extend_from_slice(p));
            let mut buffers: Vec<f32> = Vec::new();
            member.visit_buffers(&mut |b| buffers.extend_from_slice(b));
            ms.f32_slice(&params);
            ms.f32_slice(&buffers);
        }
        w.section("members", ms.into_bytes());
        Ok(w.finish())
    }

    /// Rebuild a fitted ensemble from [`Self::save_bytes`] output.
    ///
    /// The networks are reconstructed from the stored hyper-parameters
    /// (which fully determine the layer layout) and every parameter and
    /// running-statistics buffer is overwritten with the stored bits, so
    /// eval-mode predictions are bit-identical to the saved model.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, TsdaError> {
        let r = CodecReader::parse(bytes)?;
        r.expect_kind(INCEPTION_KIND)?;
        let mut c = ByteReader::new(r.section("config")?);
        let config = InceptionTimeConfig {
            filters: c.usize()?,
            depth: c.usize()?,
            kernel_sizes: [c.usize()?, c.usize()?, c.usize()?],
            ensemble: c.usize()?,
            train_fraction: c.f64()?,
            train: TrainConfig {
                max_epochs: c.usize()?,
                batch_size: c.usize()?,
                patience: c.usize()?,
                lr: c.f32()?,
            },
            use_lr_range_test: c.u8()? != 0,
        };
        c.finish()?;
        let mut meta = ByteReader::new(r.section("meta")?);
        let input_shape = (meta.usize()?, meta.usize()?);
        let n_classes = meta.usize()?;
        let n_members = meta.usize()?;
        meta.finish()?;
        if input_shape.0 == 0 || input_shape.1 == 0 || n_classes == 0 {
            return Err(TsdaError::Codec("saved model has a degenerate shape".into()));
        }
        if n_members == 0 || n_members > 1 << 10 {
            return Err(TsdaError::Codec(format!("implausible member count {n_members}")));
        }
        let mut ms = ByteReader::new(r.section("members")?);
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let params = ms.f32_vec()?;
            let buffers = ms.f32_vec()?;
            // Rebuild the architecture (the init RNG is irrelevant: every
            // parameter is overwritten below), then restore the bits.
            let mut net = InceptionNet::new(
                &config,
                input_shape.0,
                input_shape.1,
                n_classes,
                &mut tsda_core::rng::seeded(0),
            );
            let mut off = 0usize;
            let mut overrun = false;
            net.visit_params(&mut |p, _| {
                if off + p.len() <= params.len() {
                    p.copy_from_slice(&params[off..off + p.len()]);
                } else {
                    overrun = true;
                }
                off += p.len();
            });
            if overrun || off != params.len() {
                return Err(TsdaError::Codec(format!(
                    "member parameter count mismatch: file has {}, architecture needs {off}",
                    params.len()
                )));
            }
            let mut boff = 0usize;
            let mut boverrun = false;
            net.visit_buffers(&mut |b| {
                if boff + b.len() <= buffers.len() {
                    b.copy_from_slice(&buffers[boff..boff + b.len()]);
                } else {
                    boverrun = true;
                }
                boff += b.len();
            });
            if boverrun || boff != buffers.len() {
                return Err(TsdaError::Codec(format!(
                    "member buffer count mismatch: file has {}, architecture needs {boff}",
                    buffers.len()
                )));
            }
            members.push(net);
        }
        ms.finish()?;
        Ok(Self { config, members, n_classes, input_shape })
    }

    /// Averaged softmax probabilities over the ensemble.
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        assert!(!self.members.is_empty(), "predict before fit");
        let n = x.shape()[0];
        let mut acc = Tensor::zeros(&[n, self.n_classes]);
        for m in &mut self.members {
            let p = softmax(&m.forward(x, false));
            acc.add_assign(&p);
        }
        acc.scale(1.0 / self.members.len() as f32);
        acc
    }
}

impl Classifier for InceptionTime {
    fn name(&self) -> &'static str {
        "InceptionTime"
    }

    fn fit(&mut self, train: &Dataset, validation: Option<&Dataset>, rng: &mut StdRng) {
        self.n_classes = train.n_classes();
        self.input_shape = (train.n_dims(), train.series_len());
        // Build train/val tensors per the §IV-D protocol.
        let (train_ds, val_ds) = match validation {
            Some(v) => (train.clone(), v.clone()),
            None => train.stratified_split(self.config.train_fraction, rng),
        };
        let x_train = dataset_to_tensor3(&train_ds);
        let y_train: Vec<usize> = train_ds.labels().to_vec();
        let x_val = dataset_to_tensor3(&val_ds);
        let y_val: Vec<usize> = val_ds.labels().to_vec();

        self.members = (0..self.config.ensemble)
            .map(|_| {
                InceptionNet::new(
                    &self.config,
                    train.n_dims(),
                    train.series_len(),
                    self.n_classes,
                    rng,
                )
            })
            .collect();
        for member in &mut self.members {
            let mut cfg = self.config.train.clone();
            if self.config.use_lr_range_test {
                // The valley pick is clamped to the band where this
                // architecture actually trains within the epoch budget;
                // on tiny datasets the 15-step range test is noisy enough
                // to otherwise return rates that never converge.
                cfg.lr = lr_range_test(
                    member,
                    &x_train,
                    &y_train,
                    cfg.batch_size,
                    1e-4,
                    1e-1,
                    15,
                    rng,
                )
                .clamp(3e-3, 5e-2);
            }
            let _ = train_classifier(member, &x_train, &y_train, &x_val, &y_val, &cfg, rng);
        }
    }

    fn predict(&mut self, test: &Dataset) -> Vec<Label> {
        let x = dataset_to_tensor3(test);
        let probs = self.predict_proba(&x);
        let c = probs.shape()[1];
        (0..probs.shape()[0])
            .map(|i| {
                let row = &probs.data()[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tsda_core::rng::{normal, seeded};
    use tsda_core::Mts;
    use tsda_neuro::layers::gradcheck;

    fn sine_problem(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::empty(2);
        let mut rng = seeded(seed);
        for c in 0..2 {
            let freq = if c == 0 { 0.3 } else { 0.9 };
            for _ in 0..n_per_class {
                let phase: f64 = rng.gen_range(0.0..1.0);
                ds.push(
                    Mts::from_dims(vec![(0..len)
                        .map(|t| (t as f64 * freq + phase).sin() + normal(&mut rng, 0.0, 0.15))
                        .collect()]),
                    c,
                );
            }
        }
        ds
    }

    #[test]
    fn module_forward_shape() {
        let mut rng = seeded(0);
        let mut m = InceptionModule::new(3, 4, &[9, 5, 3], 20, &mut rng);
        let x = Tensor::zeros(&[2, 3, 20]);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, 16, 20]);
    }

    #[test]
    fn module_gradcheck() {
        let mut rng = seeded(1);
        let mut m = InceptionModule::new(2, 2, &[5, 3, 3], 6, &mut rng);
        m.use_tanh_for_gradcheck();
        let x = Tensor::from_flat(
            &[1, 2, 6],
            (0..12).map(|v| ((v * 7 % 13) as f32 - 6.0) * 0.2).collect(),
        );
        gradcheck::check_input_grad(&mut m, &x, 5e-2);
    }

    #[test]
    fn full_net_gradcheck() {
        let mut rng = seeded(0);
        let cfg = InceptionTimeConfig {
            filters: 2,
            depth: 3,
            kernel_sizes: [5, 3, 3],
            ensemble: 1,
            ..InceptionTimeConfig::default()
        };
        let mut net = InceptionNet::new(&cfg, 2, 6, 2, &mut rng);
        let x = Tensor::from_flat(
            &[1, 2, 6],
            (0..12).map(|v| ((v * 5 % 11) as f32 - 5.0) * 0.15).collect(),
        );
        gradcheck::check_input_grad(&mut net, &x, 8e-2);
    }

    #[test]
    fn concat_split_round_trip() {
        let a = Tensor::from_flat(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_flat(&[1, 1, 2], vec![5.0, 6.0]);
        let z = concat_channels(&[a.clone(), b.clone()]);
        assert_eq!(z.shape(), &[1, 3, 2]);
        let parts = split_channels(&z, &[2, 1]);
        assert_eq!(parts[0].data(), a.data());
        assert_eq!(parts[1].data(), b.data());
    }

    #[test]
    fn learns_frequency_discrimination() {
        let train = sine_problem(25, 32, 3);
        let test = sine_problem(10, 32, 4);
        let cfg = InceptionTimeConfig {
            filters: 3,
            depth: 3,
            kernel_sizes: [9, 5, 3],
            ensemble: 1,
            train: TrainConfig { max_epochs: 40, batch_size: 16, patience: 15, lr: 2e-2 },
            use_lr_range_test: false,
            ..InceptionTimeConfig::default()
        };
        let mut model = InceptionTime::new(cfg);
        let acc = model.fit_score(&train, None, &test, &mut seeded(5));
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn ensemble_probabilities_sum_to_one() {
        let train = sine_problem(10, 16, 6);
        let cfg = InceptionTimeConfig {
            filters: 2,
            depth: 3,
            kernel_sizes: [5, 3, 3],
            ensemble: 2,
            train: TrainConfig { max_epochs: 3, batch_size: 8, patience: 3, lr: 1e-3 },
            use_lr_range_test: false,
            ..InceptionTimeConfig::default()
        };
        let mut model = InceptionTime::new(cfg);
        model.fit(&train, None, &mut seeded(7));
        let x = dataset_to_tensor3(&train);
        let p = model.predict_proba(&x);
        for i in 0..p.shape()[0] {
            let s: f32 = p.data()[i * 2..(i + 1) * 2].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "{s}");
        }
    }

    #[test]
    fn respects_supplied_validation_set() {
        let train = sine_problem(10, 16, 8);
        let val = sine_problem(4, 16, 9);
        let cfg = InceptionTimeConfig {
            filters: 2,
            depth: 3,
            kernel_sizes: [5, 3, 3],
            ensemble: 1,
            train: TrainConfig { max_epochs: 3, batch_size: 8, patience: 3, lr: 1e-3 },
            use_lr_range_test: false,
            ..InceptionTimeConfig::default()
        };
        let mut model = InceptionTime::new(cfg);
        model.fit(&train, Some(&val), &mut seeded(10));
        let pred = model.predict(&val);
        assert_eq!(pred.len(), val.len());
    }

    #[test]
    fn paper_config_matches_protocol() {
        let cfg = InceptionTimeConfig::paper();
        assert_eq!(cfg.train.max_epochs, 200);
        assert_eq!(cfg.train.patience, 30);
        assert_eq!(cfg.ensemble, 5);
        assert_eq!(cfg.depth, 6);
        assert_eq!(cfg.kernel_sizes, [39, 19, 9]);
        assert!((cfg.train_fraction - 2.0 / 3.0).abs() < 1e-12);
    }
}
