//! Property-based tests of the core invariants.

use proptest::prelude::*;
use tsda_core::characteristics::{hellinger_distance, imbalance_degree_hellinger};
use tsda_core::metrics::{accuracy, confusion_matrix, macro_f1, relative_gain};
use tsda_core::preprocess::{decimate_series, impute_linear, znormalize_series};
use tsda_core::{Dataset, Mts};

fn series(dims: usize, len: usize) -> impl Strategy<Value = Mts> {
    proptest::collection::vec(-100.0f64..100.0, dims * len)
        .prop_map(move |data| Mts::from_flat(dims, len, data))
}

fn labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accuracy_is_a_proportion(pred in labels(20, 4), actual in labels(20, 4)) {
        let a = accuracy(&pred, &actual);
        prop_assert!((0.0..=1.0).contains(&a));
        // Confusion-matrix diagonal agrees with accuracy.
        let m = confusion_matrix(&pred, &actual, 4);
        let diag: usize = (0..4).map(|c| m[c][c]).sum();
        prop_assert!((a - diag as f64 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_bounded_and_perfect_on_equality(y in labels(15, 3)) {
        prop_assert_eq!(macro_f1(&y, &y, 3), 1.0);
        let shifted: Vec<usize> = y.iter().map(|&l| (l + 1) % 3).collect();
        let f1 = macro_f1(&shifted, &y, 3);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn relative_gain_is_antisymmetric_in_sign(base in 0.01f64..1.0, aug in 0.01f64..1.0) {
        let g = relative_gain(base, aug);
        prop_assert_eq!(g > 0.0, aug > base);
        prop_assert!((g - (aug - base) / base).abs() < 1e-12);
    }

    #[test]
    fn hellinger_is_a_bounded_metric(
        p in proptest::collection::vec(0.0f64..1.0, 5),
        q in proptest::collection::vec(0.0f64..1.0, 5),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-9);
            v.iter().map(|x| x / s).collect()
        };
        let p = norm(&p);
        let q = norm(&q);
        let d = hellinger_distance(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((d - hellinger_distance(&q, &p)).abs() < 1e-12);
        prop_assert!(hellinger_distance(&p, &p) < 1e-12);
    }

    #[test]
    fn imbalance_degree_in_band(counts in proptest::collection::vec(1usize..50, 2..8)) {
        let total: usize = counts.iter().sum();
        let dist: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        let k = dist.len();
        let m = dist.iter().filter(|&&p| p < 1.0 / k as f64 - 1e-12).count();
        let id = imbalance_degree_hellinger(&dist);
        if m == 0 {
            prop_assert_eq!(id, 0.0);
        } else {
            prop_assert!(id > m as f64 - 1.0 - 1e-9 && id <= m as f64 + 1e-9, "id {} m {}", id, m);
        }
    }

    #[test]
    fn znormalize_is_idempotent_up_to_tolerance(s in series(2, 16)) {
        let once = znormalize_series(&s);
        let twice = znormalize_series(&once);
        for (a, b) in once.as_flat().iter().zip(twice.as_flat()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn impute_removes_all_missing(mut data in proptest::collection::vec(-5.0f64..5.0, 24),
                                  holes in proptest::collection::vec(0usize..24, 0..10)) {
        for &h in &holes {
            data[h] = f64::NAN;
        }
        let s = Mts::from_flat(2, 12, data);
        let filled = impute_linear(&s);
        prop_assert!(!filled.has_missing());
        // Observed positions are untouched.
        for m in 0..2 {
            for t in 0..12 {
                let orig = s.value(m, t);
                if !orig.is_nan() {
                    prop_assert_eq!(filled.value(m, t), orig);
                }
            }
        }
    }

    #[test]
    fn decimate_preserves_mean_approximately(s in series(1, 32)) {
        let d = decimate_series(&s, 8);
        prop_assert_eq!(d.len(), 8);
        let mean_orig = s.dim_mean(0);
        let mean_dec = d.dim_mean(0);
        prop_assert!((mean_orig - mean_dec).abs() < 1e-9, "{} vs {}", mean_orig, mean_dec);
    }

    #[test]
    fn stratified_split_partitions_exactly(counts in proptest::collection::vec(2usize..12, 2..5)) {
        let mut ds = Dataset::empty(counts.len());
        for (c, &n) in counts.iter().enumerate() {
            for i in 0..n {
                ds.push(Mts::constant(1, 4, (c * 100 + i) as f64), c);
            }
        }
        let mut rng = tsda_core::rng::seeded(1);
        let (a, b) = ds.stratified_split(0.5, &mut rng);
        prop_assert_eq!(a.len() + b.len(), ds.len());
        for (ca, cb) in a.class_counts().iter().zip(b.class_counts()) {
            prop_assert!(*ca >= 1 && cb >= 1);
        }
    }
}
