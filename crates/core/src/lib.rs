//! Core types for the `tsda` workspace: multivariate time series,
//! labelled datasets, the dataset characteristics of the paper's
//! Table III, and the evaluation metrics (accuracy, relative gain Eq. 3).
//!
//! Everything downstream — the augmentation taxonomy, the classifiers,
//! the UCR/UEA archive simulator, and the experiment harness — builds on
//! the two containers defined here:
//!
//! * [`Mts`]: one multivariate time series, `M` dimensions × `T` steps,
//!   dimension-major storage, `NaN` encoding missing observations;
//! * [`Dataset`]: a labelled collection of equally-shaped series.
//!
//! # Example
//! ```
//! use tsda_core::{Mts, Dataset};
//!
//! let a = Mts::from_dims(vec![vec![0.0, 1.0, 2.0], vec![5.0, 5.0, 5.0]]);
//! let b = Mts::constant(2, 3, 1.0);
//! let ds = Dataset::from_parts(vec![a, b], vec![0, 1], 2).unwrap();
//! assert_eq!(ds.len(), 2);
//! assert_eq!(ds.class_counts(), vec![1, 1]);
//! ```

#![forbid(unsafe_code)]

pub mod characteristics;
pub mod codec;
pub mod dataset;
pub mod error;
pub mod math;
pub mod metrics;
pub mod parallel;
pub mod preprocess;
pub mod rng;
pub mod series;

pub use characteristics::DatasetCharacteristics;
pub use dataset::{Dataset, TrainTest};
pub use error::TsdaError;
pub use metrics::{accuracy, confusion_matrix, macro_f1, relative_gain};
pub use parallel::{Pool, ThreadLimit};
pub use series::Mts;

/// A class label. Labels are dense indices `0..n_classes`.
pub type Label = usize;
