//! The dataset characteristics of the paper's Table III.
//!
//! Nine properties are computed for every dataset: class count, training
//! size, dimensionality, series length, the multivariate variance of
//! Eqs. 4–5 for both splits, the imbalance degree with Hellinger distance
//! (Ortigosa-Hernández et al. 2017, as the paper recommends), the
//! Euclidean train/test mean distance, and the missing-value proportion.

use crate::dataset::{Dataset, TrainTest};
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetCharacteristics {
    /// Number of classes (`n_classes`).
    pub n_classes: usize,
    /// Training set size (`Train_size`).
    pub train_size: usize,
    /// Number of variables per series (`Dim`).
    pub dim: usize,
    /// Series length (`Length`).
    pub length: usize,
    /// Eq. 5 multivariate variance of the training split (`Var_train`).
    pub var_train: f64,
    /// Eq. 5 multivariate variance of the test split (`Var_test`).
    pub var_test: f64,
    /// Hellinger imbalance degree (`Im_ratio`).
    pub imbalance_degree: f64,
    /// Euclidean distance between split mean vectors (`d_train_test`).
    pub train_test_distance: f64,
    /// Missing-value proportion over the whole dataset (`prop_miss`).
    pub missing_proportion: f64,
}

impl DatasetCharacteristics {
    /// Compute every Table III column for a train/test pair.
    pub fn compute(data: &TrainTest) -> Self {
        let train = &data.train;
        let test = &data.test;
        let train_mean = train.mean_vector();
        let test_mean = test.mean_vector();
        let d: f64 = crate::math::sum_stable(
            train_mean.iter().zip(&test_mean).map(|(a, b)| (a - b) * (a - b)),
        )
        .sqrt();
        let total_cells: usize = (train.len() + test.len())
            * train.n_dims().max(test.n_dims())
            * train.series_len().max(test.series_len());
        let missing = if total_cells == 0 {
            0.0
        } else {
            let miss: usize = train
                .series()
                .iter()
                .chain(test.series())
                .map(crate::series::Mts::missing_count)
                .sum();
            miss as f64 / total_cells as f64
        };
        Self {
            n_classes: train.n_classes(),
            train_size: train.len(),
            dim: train.n_dims(),
            length: train.series_len(),
            var_train: multivariate_variance(train),
            var_test: multivariate_variance(test),
            imbalance_degree: imbalance_degree_hellinger(&train.class_distribution()),
            train_test_distance: d,
            missing_proportion: missing,
        }
    }
}

/// Eq. 4–5: per-(dimension, time-step) variance across series, averaged
/// over all positions. Missing values are skipped position-wise.
pub fn multivariate_variance(ds: &Dataset) -> f64 {
    let m = ds.n_dims();
    let t = ds.series_len();
    if ds.is_empty() || m == 0 || t == 0 {
        return 0.0;
    }
    let mut pos_vars = Vec::new();
    for dim in 0..m {
        for step in 0..t {
            let vals: Vec<f64> = ds
                .series()
                .iter()
                .map(|s| s.value(dim, step))
                .filter(|v| !v.is_nan())
                .collect();
            if vals.len() < 2 {
                continue;
            }
            let mean = crate::math::sum_stable(vals.iter().copied()) / vals.len() as f64;
            pos_vars.push(
                crate::math::sum_stable(vals.iter().map(|v| (v - mean) * (v - mean)))
                    / vals.len() as f64,
            );
        }
    }
    crate::math::sum_stable(pos_vars.iter().copied()) / (m * t) as f64
}

/// Hellinger distance between two discrete distributions.
///
/// `d_H(p, q) = (1/√2) · ‖√p − √q‖₂`, bounded in `[0, 1]`.
pub fn hellinger_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "hellinger length mismatch");
    let s: f64 = p
        .iter()
        .zip(q)
        .map(|(&a, &b)| {
            let d = a.max(0.0).sqrt() - b.max(0.0).sqrt();
            d * d
        })
        .sum();
    (s / 2.0).sqrt()
}

/// Imbalance degree (ID) of Ortigosa-Hernández et al. 2017 with the
/// Hellinger distance, the variant Table III reports as `Im_ratio`.
///
/// With `K` classes and empirical distribution ζ, let `m` be the number
/// of *minority* classes (probability strictly below `1/K`). Then
///
/// `ID(ζ) = d(ζ, e) / d(ι_m, e) + (m − 1)`
///
/// where `e` is the balanced distribution and `ι_m` the most imbalanced
/// distribution with exactly `m` minority classes (`m` classes at 0,
/// `K−m−1` at `1/K`, one at `(m+1)/K`). A perfectly balanced
/// distribution has `m = 0` and ID defined as 0.
pub fn imbalance_degree_hellinger(zeta: &[f64]) -> f64 {
    let k = zeta.len();
    if k <= 1 {
        return 0.0;
    }
    let e = vec![1.0 / k as f64; k];
    let m = zeta.iter().filter(|&&p| p < 1.0 / k as f64 - 1e-12).count();
    if m == 0 {
        return 0.0;
    }
    // ι_m: m zeros, K−m−1 at 1/K, one at (m+1)/K.
    let mut iota = vec![0.0; k];
    for (i, v) in iota.iter_mut().enumerate().take(k) {
        if i < m {
            *v = 0.0;
        } else if i < k - 1 {
            *v = 1.0 / k as f64;
        } else {
            *v = (m + 1) as f64 / k as f64;
        }
    }
    let d_zeta = hellinger_distance(zeta, &e);
    let d_iota = hellinger_distance(&iota, &e);
    if d_iota == 0.0 {
        return (m - 1) as f64;
    }
    d_zeta / d_iota + (m as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Mts;

    fn ds_with_counts(counts: &[usize]) -> Dataset {
        let mut ds = Dataset::empty(counts.len());
        for (c, &n) in counts.iter().enumerate() {
            for i in 0..n {
                ds.push(Mts::constant(1, 2, (c + i) as f64), c);
            }
        }
        ds
    }

    #[test]
    fn hellinger_bounds() {
        assert_eq!(hellinger_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        let d = hellinger_distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_distribution_has_zero_id() {
        assert_eq!(imbalance_degree_hellinger(&[0.25; 4]), 0.0);
        assert_eq!(imbalance_degree_hellinger(&[0.5, 0.5]), 0.0);
    }

    #[test]
    fn id_lies_in_expected_band() {
        // ID with m minority classes lies in (m−1, m].
        let zeta = [0.1, 0.1, 0.8]; // K=3, minorities: 2 classes below 1/3
        let id = imbalance_degree_hellinger(&zeta);
        assert!(id > 1.0 && id <= 2.0, "{id}");
    }

    #[test]
    fn id_increases_with_skew() {
        let mild = imbalance_degree_hellinger(&[0.3, 0.7]);
        let severe = imbalance_degree_hellinger(&[0.05, 0.95]);
        assert!(severe > mild, "{severe} <= {mild}");
    }

    #[test]
    fn extreme_distribution_hits_band_top() {
        // All mass on one class of two: ζ = ι_1, so ID = 1·1 + 0 = 1.
        let id = imbalance_degree_hellinger(&[0.0, 1.0]);
        assert!((id - 1.0).abs() < 1e-9, "{id}");
    }

    #[test]
    fn variance_of_identical_series_is_zero() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(2, 3, 1.0), 0);
        ds.push(Mts::constant(2, 3, 1.0), 0);
        assert_eq!(multivariate_variance(&ds), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::from_dims(vec![vec![0.0, 0.0]]), 0);
        ds.push(Mts::from_dims(vec![vec![2.0, 4.0]]), 0);
        // Position variances: 1.0 and 4.0, averaged = 2.5.
        assert_eq!(multivariate_variance(&ds), 2.5);
    }

    #[test]
    fn characteristics_fill_all_fields() {
        let train = ds_with_counts(&[4, 2]);
        let test = ds_with_counts(&[2, 2]);
        let tt = TrainTest::new(train, test).unwrap();
        let c = DatasetCharacteristics::compute(&tt);
        assert_eq!(c.n_classes, 2);
        assert_eq!(c.train_size, 6);
        assert_eq!(c.dim, 1);
        assert_eq!(c.length, 2);
        assert!(c.imbalance_degree > 0.0);
        assert!(c.train_test_distance >= 0.0);
        assert_eq!(c.missing_proportion, 0.0);
    }

    #[test]
    fn missing_proportion_detected() {
        let mut train = Dataset::empty(1);
        train.push(Mts::from_dims(vec![vec![f64::NAN, 1.0]]), 0);
        let mut test = Dataset::empty(1);
        test.push(Mts::from_dims(vec![vec![1.0, 1.0]]), 0);
        let tt = TrainTest::new(train, test).unwrap();
        let c = DatasetCharacteristics::compute(&tt);
        assert_eq!(c.missing_proportion, 0.25);
    }
}
