//! Labelled time series datasets and train/test pairs.

use crate::error::TsdaError;
use crate::series::Mts;
use crate::Label;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled collection of multivariate time series.
///
/// Invariants (enforced by [`Dataset::from_parts`] and `push`):
/// * every series has the same `(n_dims, len)` shape;
/// * every label is `< n_classes`;
/// * `series.len() == labels.len()`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    series: Vec<Mts>,
    labels: Vec<Label>,
    n_classes: usize,
}

impl Dataset {
    /// An empty dataset expecting `n_classes` classes.
    pub fn empty(n_classes: usize) -> Self {
        Self { series: Vec::new(), labels: Vec::new(), n_classes }
    }

    /// Build from parallel vectors of series and labels.
    pub fn from_parts(
        series: Vec<Mts>,
        labels: Vec<Label>,
        n_classes: usize,
    ) -> Result<Self, TsdaError> {
        if series.len() != labels.len() {
            return Err(TsdaError::Shape(format!(
                "{} series but {} labels",
                series.len(),
                labels.len()
            )));
        }
        if let Some(first) = series.first() {
            let shape = first.shape();
            if let Some(bad) = series.iter().find(|s| s.shape() != shape) {
                return Err(TsdaError::Shape(format!(
                    "mixed series shapes: {:?} vs {:?}",
                    shape,
                    bad.shape()
                )));
            }
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= n_classes) {
            return Err(TsdaError::Label { label: bad, n_classes });
        }
        Ok(Self { series, labels, n_classes })
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when there are no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The declared number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Dimensions of the series (0 when empty).
    pub fn n_dims(&self) -> usize {
        self.series.first().map_or(0, Mts::n_dims)
    }

    /// Time length of the series (0 when empty).
    pub fn series_len(&self) -> usize {
        self.series.first().map_or(0, Mts::len)
    }

    /// Borrow the series.
    pub fn series(&self) -> &[Mts] {
        &self.series
    }

    /// Borrow the labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The `i`-th (series, label) pair.
    pub fn get(&self, i: usize) -> (&Mts, Label) {
        (&self.series[i], self.labels[i])
    }

    /// Append a series with its label.
    ///
    /// # Panics
    /// Panics on a shape mismatch with existing series or an out-of-range
    /// label — these are programming errors in augmentation code.
    pub fn push(&mut self, series: Mts, label: Label) {
        if let Some(first) = self.series.first() {
            assert_eq!(series.shape(), first.shape(), "pushed series shape mismatch");
        }
        assert!(label < self.n_classes, "label {label} >= n_classes {}", self.n_classes);
        self.series.push(series);
        self.labels.push(label);
    }

    /// Append every pair from `other` (must agree on shape and classes).
    pub fn extend_from(&mut self, pairs: Vec<(Mts, Label)>) {
        for (s, l) in pairs {
            self.push(s, l);
        }
    }

    /// Count of series per class (length `n_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Empirical class distribution (sums to 1; all-zero when empty).
    pub fn class_distribution(&self) -> Vec<f64> {
        let counts = self.class_counts();
        let n = self.len();
        if n == 0 {
            return vec![0.0; self.n_classes];
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// Indices of the series belonging to `class`.
    pub fn indices_of_class(&self, class: Label) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Clone the series of one class into a new vector.
    pub fn series_of_class(&self, class: Label) -> Vec<&Mts> {
        self.indices_of_class(class)
            .into_iter()
            .map(|i| &self.series[i])
            .collect()
    }

    /// Iterate over `(series, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Mts, Label)> {
        self.series.iter().zip(self.labels.iter().copied())
    }

    /// Total missing-value proportion across the whole dataset.
    pub fn missing_proportion(&self) -> f64 {
        let total: usize = self.series.iter().map(|s| s.n_dims() * s.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let missing: usize = self.series.iter().map(Mts::missing_count).sum();
        missing as f64 / total as f64
    }

    /// Stratified split into `(first, second)` where `first` receives
    /// `ratio` of each class (rounded, at least 1 per non-empty class when
    /// possible). Used by the InceptionTime protocol's 2:1
    /// train/validation split.
    pub fn stratified_split<R: Rng>(&self, ratio: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&ratio), "split ratio must be in [0,1]");
        let mut first = Dataset::empty(self.n_classes);
        let mut second = Dataset::empty(self.n_classes);
        for class in 0..self.n_classes {
            let mut idx = self.indices_of_class(class);
            idx.shuffle(rng);
            let take = if idx.is_empty() {
                0
            } else {
                ((idx.len() as f64 * ratio).round() as usize).clamp(
                    usize::from(ratio > 0.0),
                    idx.len() - usize::from(ratio < 1.0 && idx.len() > 1),
                )
            };
            for (k, &i) in idx.iter().enumerate() {
                if k < take {
                    first.push(self.series[i].clone(), class);
                } else {
                    second.push(self.series[i].clone(), class);
                }
            }
        }
        (first, second)
    }

    /// Randomly drop series until each class keeps at most
    /// `ceil(fraction · count)`. Used for the paper's "downsampled
    /// training set" protocol variant.
    pub fn downsample<R: Rng>(&self, fraction: f64, rng: &mut R) -> Dataset {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
        let mut out = Dataset::empty(self.n_classes);
        for class in 0..self.n_classes {
            let mut idx = self.indices_of_class(class);
            idx.shuffle(rng);
            let keep = ((idx.len() as f64 * fraction).ceil() as usize).max(1).min(idx.len());
            for &i in idx.iter().take(keep) {
                out.push(self.series[i].clone(), class);
            }
        }
        out
    }

    /// Mean vector of the dataset: the element-wise mean over all series
    /// of the flattened `M·T` representation, skipping missing values.
    pub fn mean_vector(&self) -> Vec<f64> {
        let d = self.n_dims() * self.series_len();
        let mut sums = vec![0.0; d];
        let mut counts = vec![0usize; d];
        for s in &self.series {
            for (j, &v) in s.as_flat().iter().enumerate() {
                if !v.is_nan() {
                    sums[j] += v;
                    counts[j] += 1;
                }
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }
}

/// A dataset with the archive's fixed train/test division.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainTest {
    /// Training split.
    pub train: Dataset,
    /// Testing split (never augmented).
    pub test: Dataset,
}

impl TrainTest {
    /// Construct, checking the two splits agree on shape and classes.
    pub fn new(train: Dataset, test: Dataset) -> Result<Self, TsdaError> {
        if train.n_classes() != test.n_classes() {
            return Err(TsdaError::Shape(format!(
                "train has {} classes, test has {}",
                train.n_classes(),
                test.n_classes()
            )));
        }
        if !train.is_empty()
            && !test.is_empty()
            && (train.n_dims() != test.n_dims() || train.series_len() != test.series_len())
        {
            return Err(TsdaError::Shape(format!(
                "train shape {}x{} vs test shape {}x{}",
                train.n_dims(),
                train.series_len(),
                test.n_dims(),
                test.series_len()
            )));
        }
        Ok(Self { train, test })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(counts: &[usize]) -> Dataset {
        let mut ds = Dataset::empty(counts.len());
        for (class, &c) in counts.iter().enumerate() {
            for k in 0..c {
                ds.push(Mts::constant(2, 4, (class * 10 + k) as f64), class);
            }
        }
        ds
    }

    #[test]
    fn class_counts_and_distribution() {
        let ds = toy(&[3, 1]);
        assert_eq!(ds.class_counts(), vec![3, 1]);
        assert_eq!(ds.class_distribution(), vec![0.75, 0.25]);
    }

    #[test]
    fn from_parts_rejects_mismatched_lengths() {
        let err = Dataset::from_parts(vec![Mts::zeros(1, 2)], vec![0, 1], 2);
        assert!(err.is_err());
    }

    #[test]
    fn from_parts_rejects_bad_label() {
        let err = Dataset::from_parts(vec![Mts::zeros(1, 2)], vec![5], 2);
        assert!(matches!(err, Err(TsdaError::Label { label: 5, .. })));
    }

    #[test]
    fn from_parts_rejects_mixed_shapes() {
        let err = Dataset::from_parts(vec![Mts::zeros(1, 2), Mts::zeros(2, 2)], vec![0, 0], 1);
        assert!(err.is_err());
    }

    #[test]
    fn stratified_split_keeps_class_ratios() {
        let ds = toy(&[30, 60]);
        let mut rng = StdRng::seed_from_u64(0);
        let (a, b) = ds.stratified_split(2.0 / 3.0, &mut rng);
        assert_eq!(a.class_counts(), vec![20, 40]);
        assert_eq!(b.class_counts(), vec![10, 20]);
        assert_eq!(a.len() + b.len(), ds.len());
    }

    #[test]
    fn stratified_split_never_empties_a_class() {
        let ds = toy(&[2, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = ds.stratified_split(0.9, &mut rng);
        assert!(a.class_counts().iter().all(|&c| c >= 1));
        assert!(b.class_counts().iter().all(|&c| c >= 1));
    }

    #[test]
    fn downsample_keeps_fraction_per_class() {
        let ds = toy(&[10, 4]);
        let mut rng = StdRng::seed_from_u64(2);
        let down = ds.downsample(0.5, &mut rng);
        assert_eq!(down.class_counts(), vec![5, 2]);
    }

    #[test]
    fn downsample_keeps_at_least_one() {
        let ds = toy(&[1, 8]);
        let mut rng = StdRng::seed_from_u64(3);
        let down = ds.downsample(0.1, &mut rng);
        assert_eq!(down.class_counts()[0], 1);
    }

    #[test]
    fn mean_vector_skips_missing() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::from_dims(vec![vec![1.0, f64::NAN]]), 0);
        ds.push(Mts::from_dims(vec![vec![3.0, 8.0]]), 0);
        assert_eq!(ds.mean_vector(), vec![2.0, 8.0]);
    }

    #[test]
    fn missing_proportion_counts_nans() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::from_dims(vec![vec![1.0, f64::NAN, 3.0, f64::NAN]]), 0);
        assert_eq!(ds.missing_proportion(), 0.5);
    }

    #[test]
    fn train_test_rejects_class_mismatch() {
        let t = TrainTest::new(toy(&[1]), toy(&[1, 1]));
        assert!(t.is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn push_rejects_wrong_shape() {
        let mut ds = toy(&[1]);
        ds.push(Mts::zeros(3, 3), 0);
    }
}
