//! The multivariate time series container.

use serde::{Deserialize, Serialize};

/// A multivariate time series: `M` dimensions, each a sequence of `T`
/// values.
///
/// Storage is dimension-major (`data[m * len + t]`), matching how the
/// UCR/UEA archive lays out `.ts` files and how every augmenter in this
/// workspace iterates (whole dimensions at a time). Missing observations
/// are encoded as `NaN`, again matching the archive convention.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mts {
    n_dims: usize,
    len: usize,
    data: Vec<f64>,
}

impl Mts {
    /// A series of `n_dims × len` zeros.
    pub fn zeros(n_dims: usize, len: usize) -> Self {
        Self { n_dims, len, data: vec![0.0; n_dims * len] }
    }

    /// A series where every value is `v`.
    pub fn constant(n_dims: usize, len: usize, v: f64) -> Self {
        Self { n_dims, len, data: vec![v; n_dims * len] }
    }

    /// Build from per-dimension vectors.
    ///
    /// # Panics
    /// Panics if dimensions have unequal lengths or `dims` is empty.
    pub fn from_dims(dims: Vec<Vec<f64>>) -> Self {
        assert!(!dims.is_empty(), "Mts::from_dims with no dimensions");
        let len = dims[0].len();
        let n_dims = dims.len();
        let mut data = Vec::with_capacity(n_dims * len);
        for d in dims {
            assert_eq!(d.len(), len, "ragged dimensions in Mts::from_dims");
            data.extend_from_slice(&d);
        }
        Self { n_dims, len, data }
    }

    /// Build from a flat dimension-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n_dims * len`.
    pub fn from_flat(n_dims: usize, len: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_dims * len, "Mts::from_flat length mismatch");
        Self { n_dims, len, data }
    }

    /// A univariate series.
    pub fn univariate(values: Vec<f64>) -> Self {
        let len = values.len();
        Self { n_dims: 1, len, data: values }
    }

    /// Number of dimensions (variables) `M`.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Number of time steps `T`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the series has zero time steps.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow dimension `m` as a slice of `T` values.
    pub fn dim(&self, m: usize) -> &[f64] {
        assert!(m < self.n_dims, "dimension {m} out of range");
        &self.data[m * self.len..(m + 1) * self.len]
    }

    /// Mutably borrow dimension `m`.
    pub fn dim_mut(&mut self, m: usize) -> &mut [f64] {
        assert!(m < self.n_dims, "dimension {m} out of range");
        &mut self.data[m * self.len..(m + 1) * self.len]
    }

    /// Value at dimension `m`, time `t`.
    #[inline]
    pub fn value(&self, m: usize, t: usize) -> f64 {
        debug_assert!(m < self.n_dims && t < self.len);
        self.data[m * self.len + t]
    }

    /// Set the value at dimension `m`, time `t`.
    #[inline]
    pub fn set(&mut self, m: usize, t: usize, v: f64) {
        debug_assert!(m < self.n_dims && t < self.len);
        self.data[m * self.len + t] = v;
    }

    /// The observation at time `t` across all dimensions.
    pub fn observation(&self, t: usize) -> Vec<f64> {
        (0..self.n_dims).map(|m| self.value(m, t)).collect()
    }

    /// Iterate over dimensions as slices.
    pub fn dims(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.len.max(1)).take(self.n_dims)
    }

    /// The flat dimension-major buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_flat_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Count of missing (`NaN`) values.
    pub fn missing_count(&self) -> usize {
        self.data.iter().filter(|v| v.is_nan()).count()
    }

    /// True when any value is missing.
    pub fn has_missing(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }

    /// Mean of dimension `m`, ignoring missing values; 0 if all missing.
    pub fn dim_mean(&self, m: usize) -> f64 {
        let vals: Vec<f64> = self.dim(m).iter().copied().filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            0.0
        } else {
            crate::math::sum_stable(vals.iter().copied()) / vals.len() as f64
        }
    }

    /// Population standard deviation of dimension `m`, ignoring missing
    /// values.
    pub fn dim_std(&self, m: usize) -> f64 {
        let vals: Vec<f64> = self.dim(m).iter().copied().filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            return 0.0;
        }
        let mean = crate::math::sum_stable(vals.iter().copied()) / vals.len() as f64;
        (crate::math::sum_stable(vals.iter().map(|v| (v - mean) * (v - mean)))
            / vals.len() as f64)
            .sqrt()
    }

    /// Extract the sub-series covering time steps `[start, end)` in every
    /// dimension.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_time(&self, start: usize, end: usize) -> Mts {
        assert!(start <= end && end <= self.len, "bad slice {start}..{end} of {}", self.len);
        let seg = end - start;
        let mut data = Vec::with_capacity(self.n_dims * seg);
        for m in 0..self.n_dims {
            data.extend_from_slice(&self.dim(m)[start..end]);
        }
        Mts { n_dims: self.n_dims, len: seg, data }
    }

    /// Euclidean distance to another series of the same shape, treating
    /// the series as a point in `M·T` space and skipping positions where
    /// either side is missing.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn euclidean_distance(&self, other: &Mts) -> f64 {
        assert_eq!(self.shape(), other.shape(), "distance shape mismatch");
        crate::math::sum_stable(
            self.data
                .iter()
                .zip(&other.data)
                .filter(|(a, b)| !a.is_nan() && !b.is_nan())
                .map(|(a, b)| (a - b) * (a - b)),
        )
        .sqrt()
    }

    /// `(n_dims, len)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_dims, self.len)
    }
}

impl std::fmt::Debug for Mts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mts[{}x{}]", self.n_dims, self.len)?;
        if self.len <= 8 && self.n_dims <= 4 {
            write!(f, " {:?}", self.dims().collect::<Vec<_>>())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dims_round_trips() {
        let s = Mts::from_dims(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.dim(0), &[1.0, 2.0]);
        assert_eq!(s.dim(1), &[3.0, 4.0]);
        assert_eq!(s.value(1, 0), 3.0);
    }

    #[test]
    fn observation_gathers_across_dims() {
        let s = Mts::from_dims(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(s.observation(1), vec![2.0, 4.0]);
    }

    #[test]
    fn missing_values_are_counted() {
        let s = Mts::from_dims(vec![vec![1.0, f64::NAN], vec![f64::NAN, 4.0]]);
        assert_eq!(s.missing_count(), 2);
        assert!(s.has_missing());
    }

    #[test]
    fn dim_stats_skip_missing() {
        let s = Mts::from_dims(vec![vec![1.0, f64::NAN, 3.0]]);
        assert_eq!(s.dim_mean(0), 2.0);
        assert_eq!(s.dim_std(0), 1.0);
    }

    #[test]
    fn all_missing_dim_stats_are_zero() {
        let s = Mts::from_dims(vec![vec![f64::NAN, f64::NAN]]);
        assert_eq!(s.dim_mean(0), 0.0);
        assert_eq!(s.dim_std(0), 0.0);
    }

    #[test]
    fn slice_time_extracts_all_dims() {
        let s = Mts::from_dims(vec![vec![0.0, 1.0, 2.0, 3.0], vec![10.0, 11.0, 12.0, 13.0]]);
        let sub = s.slice_time(1, 3);
        assert_eq!(sub.dim(0), &[1.0, 2.0]);
        assert_eq!(sub.dim(1), &[11.0, 12.0]);
    }

    #[test]
    fn distance_skips_missing_pairs() {
        let a = Mts::from_dims(vec![vec![0.0, f64::NAN]]);
        let b = Mts::from_dims(vec![vec![3.0, 100.0]]);
        assert_eq!(a.euclidean_distance(&b), 3.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Mts::from_dims(vec![vec![1.0, 2.0], vec![-1.0, 0.5]]);
        assert_eq!(a.euclidean_distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged dimensions")]
    fn ragged_dims_rejected() {
        let _ = Mts::from_dims(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn set_and_value_round_trip() {
        let mut s = Mts::zeros(2, 3);
        s.set(1, 2, 9.0);
        assert_eq!(s.value(1, 2), 9.0);
        assert_eq!(s.value(0, 2), 0.0);
    }
}
