//! Preprocessing: z-normalisation, missing-value imputation, length
//! adjustment.
//!
//! The archive protocol z-normalises per dimension and imputes the
//! sparse missing stretches (CharacterTrajectories, SpokenArabicDigits)
//! by linear interpolation before feeding any classifier.

use crate::dataset::Dataset;
use crate::series::Mts;

/// Z-normalise each dimension of a series to zero mean / unit variance
/// (missing values are ignored in the statistics and left missing).
/// Dimensions with zero variance are centred only.
pub fn znormalize_series(s: &Mts) -> Mts {
    let mut out = s.clone();
    for m in 0..s.n_dims() {
        let mean = s.dim_mean(m);
        let std = s.dim_std(m);
        for v in out.dim_mut(m) {
            if v.is_nan() {
                continue;
            }
            *v = if std > 0.0 { (*v - mean) / std } else { *v - mean };
        }
    }
    out
}

/// Z-normalise every series of a dataset independently.
pub fn znormalize_dataset(ds: &Dataset) -> Dataset {
    let mut out = Dataset::empty(ds.n_classes());
    for (s, l) in ds.iter() {
        out.push(znormalize_series(s), l);
    }
    out
}

/// Replace missing values by linear interpolation between the nearest
/// observed neighbours in the same dimension; leading/trailing gaps take
/// the nearest observed value; an all-missing dimension becomes zeros.
pub fn impute_linear(s: &Mts) -> Mts {
    let mut out = s.clone();
    let t = s.len();
    for m in 0..s.n_dims() {
        let dim = out.dim_mut(m);
        let observed: Vec<usize> = (0..t).filter(|&i| !dim[i].is_nan()).collect();
        if observed.is_empty() {
            for v in dim.iter_mut() {
                *v = 0.0;
            }
            continue;
        }
        for i in 0..t {
            if !dim[i].is_nan() {
                continue;
            }
            // Nearest observed indices on each side.
            let left = observed.iter().rev().find(|&&j| j < i).copied();
            let right = observed.iter().find(|&&j| j > i).copied();
            dim[i] = match (left, right) {
                (Some(l), Some(r)) => {
                    let w = (i - l) as f64 / (r - l) as f64;
                    dim[l] * (1.0 - w) + dim[r] * w
                }
                (Some(l), None) => dim[l],
                (None, Some(r)) => dim[r],
                // Unreachable — `observed` is non-empty and `i` is not
                // in it, so one side always exists — but a total match
                // keeps this library panic-free; 0.0 matches the
                // all-missing convention above.
                (None, None) => 0.0,
            };
        }
    }
    out
}

/// Impute every series of a dataset.
pub fn impute_dataset(ds: &Dataset) -> Dataset {
    let mut out = Dataset::empty(ds.n_classes());
    for (s, l) in ds.iter() {
        out.push(impute_linear(s), l);
    }
    out
}

/// Shorten a series to `target_len` by averaging equal strides (simple
/// anti-aliased decimation). A no-op when already short enough.
pub fn decimate_series(s: &Mts, target_len: usize) -> Mts {
    assert!(target_len > 0, "decimate to zero length");
    if s.len() <= target_len {
        return s.clone();
    }
    let mut dims = Vec::with_capacity(s.n_dims());
    for m in 0..s.n_dims() {
        let src = s.dim(m);
        let mut d = Vec::with_capacity(target_len);
        for k in 0..target_len {
            let start = k * s.len() / target_len;
            let end = ((k + 1) * s.len() / target_len).max(start + 1);
            let window = &src[start..end];
            let vals: Vec<f64> = window.iter().copied().filter(|v| !v.is_nan()).collect();
            d.push(if vals.is_empty() {
                f64::NAN
            } else {
                crate::math::sum_stable(vals.iter().copied()) / vals.len() as f64
            });
        }
        dims.push(d);
    }
    Mts::from_dims(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znormalize_gives_zero_mean_unit_std() {
        let s = Mts::from_dims(vec![vec![1.0, 2.0, 3.0, 4.0]]);
        let z = znormalize_series(&s);
        assert!(z.dim_mean(0).abs() < 1e-12);
        assert!((z.dim_std(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_constant_dim_centres_only() {
        let s = Mts::from_dims(vec![vec![5.0, 5.0, 5.0]]);
        let z = znormalize_series(&s);
        assert_eq!(z.dim(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn znormalize_preserves_missing() {
        let s = Mts::from_dims(vec![vec![1.0, f64::NAN, 3.0]]);
        let z = znormalize_series(&s);
        assert!(z.value(0, 1).is_nan());
    }

    #[test]
    fn impute_interpolates_interior_gap() {
        let s = Mts::from_dims(vec![vec![0.0, f64::NAN, f64::NAN, 3.0]]);
        let i = impute_linear(&s);
        assert_eq!(i.dim(0), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn impute_extends_edges() {
        let s = Mts::from_dims(vec![vec![f64::NAN, 2.0, f64::NAN]]);
        let i = impute_linear(&s);
        assert_eq!(i.dim(0), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn impute_all_missing_becomes_zero() {
        let s = Mts::from_dims(vec![vec![f64::NAN, f64::NAN]]);
        let i = impute_linear(&s);
        assert_eq!(i.dim(0), &[0.0, 0.0]);
    }

    #[test]
    fn decimate_halves_length_with_averaging() {
        let s = Mts::from_dims(vec![vec![1.0, 3.0, 5.0, 7.0]]);
        let d = decimate_series(&s, 2);
        assert_eq!(d.dim(0), &[2.0, 6.0]);
    }

    #[test]
    fn decimate_noop_when_short() {
        let s = Mts::from_dims(vec![vec![1.0, 2.0]]);
        assert_eq!(decimate_series(&s, 5), s);
    }
}
