//! Evaluation metrics: accuracy, confusion matrix, macro-F1, and the
//! paper's relative gain `G_r` (Eq. 3).

use crate::Label;

/// Fraction of positions where `predicted == actual`.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predicted: &[Label], actual: &[Label]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "accuracy length mismatch");
    assert!(!predicted.is_empty(), "accuracy of empty predictions");
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    correct as f64 / predicted.len() as f64
}

/// `n_classes × n_classes` confusion matrix; `counts[actual][predicted]`.
pub fn confusion_matrix(predicted: &[Label], actual: &[Label], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(predicted.len(), actual.len(), "confusion length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &a) in predicted.iter().zip(actual) {
        assert!(p < n_classes && a < n_classes, "label out of range");
        m[a][p] += 1;
    }
    m
}

/// Macro-averaged F1 score. Classes absent from both `actual` and
/// `predicted` are skipped (scikit-learn's behaviour with
/// `zero_division=0` averages over all classes; we average over classes
/// with any support or prediction, which is more informative on the
/// archive's very imbalanced test sets).
pub fn macro_f1(predicted: &[Label], actual: &[Label], n_classes: usize) -> f64 {
    let m = confusion_matrix(predicted, actual, n_classes);
    let mut used = 0usize;
    let sum = crate::math::sum_stable(m.iter().enumerate().filter_map(|(c, row)| {
        let tp = row[c] as f64;
        let fn_: f64 =
            crate::math::sum_stable((0..n_classes).filter(|&j| j != c).map(|j| row[j] as f64));
        let fp: f64 =
            crate::math::sum_stable((0..n_classes).filter(|&i| i != c).map(|i| m[i][c] as f64));
        if tp + fn_ + fp == 0.0 {
            return None;
        }
        used += 1;
        let denom = 2.0 * tp + fp + fn_;
        Some(if denom > 0.0 { 2.0 * tp / denom } else { 0.0 })
    }));
    if used == 0 {
        0.0
    } else {
        sum / used as f64
    }
}

/// The paper's relative gain (Eq. 3):
/// `G_r = (acc(model_aug) − acc(model)) / acc(model)`.
///
/// Returns 0 when the baseline accuracy is 0 (undefined in the paper;
/// every dataset there has a positive baseline).
pub fn relative_gain(baseline_acc: f64, augmented_acc: f64) -> f64 {
    if baseline_acc == 0.0 {
        0.0
    } else {
        (augmented_acc - baseline_acc) / baseline_acc
    }
}

/// Mean of a slice of run accuracies — the paper averages over five runs.
pub fn mean_accuracy(runs: &[f64]) -> f64 {
    if runs.is_empty() {
        0.0
    } else {
        crate::math::sum_stable(runs.iter().copied()) / runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn confusion_matrix_rows_are_actual() {
        let m = confusion_matrix(&[0, 1, 1], &[0, 0, 1], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 1]]);
    }

    #[test]
    fn macro_f1_perfect_prediction_is_one() {
        let y = [0, 1, 2, 1, 0];
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        // Class 2 never appears in actual or predicted: ignored.
        let f1 = macro_f1(&[0, 1], &[0, 1], 3);
        assert_eq!(f1, 1.0);
    }

    #[test]
    fn macro_f1_penalises_one_sided_errors() {
        // Everything predicted as class 0.
        let f1 = macro_f1(&[0, 0, 0, 0], &[0, 0, 1, 1], 2);
        // class0: tp=2 fp=2 fn=0 → f1 = 4/6; class1: tp=0 → 0.
        assert!((f1 - (2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_gain_matches_eq3() {
        // Table IV EigenWorms: 89.16 → 91.15 is +2.23%.
        let g = relative_gain(89.16, 91.15);
        assert!((g * 100.0 - 2.23).abs() < 0.01, "{g}");
    }

    #[test]
    fn relative_gain_negative_when_worse() {
        assert!(relative_gain(0.9, 0.8) < 0.0);
        assert_eq!(relative_gain(0.0, 0.5), 0.0);
    }

    #[test]
    fn mean_accuracy_averages_runs() {
        assert!((mean_accuracy(&[0.8, 0.9]) - 0.85).abs() < 1e-12);
        assert_eq!(mean_accuracy(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        let _ = accuracy(&[0], &[0, 1]);
    }
}
