//! Workspace-wide error type.

/// Errors surfaced by the `tsda` crates.
#[derive(Debug, Clone, PartialEq)]
pub enum TsdaError {
    /// Incompatible shapes (series, datasets, matrices).
    Shape(String),
    /// A label outside `0..n_classes`.
    Label {
        /// The offending label.
        label: usize,
        /// The declared class count.
        n_classes: usize,
    },
    /// A technique received parameters it cannot work with (e.g. SMOTE on
    /// a class with a single member and no neighbours).
    InvalidParameter(String),
    /// Numerical failure (non-converging factorisation, singular system).
    Numerical(String),
    /// Parse failure in dataset file IO.
    Parse {
        /// 1-based line number when known.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying IO failure, stringified to keep the error `Clone`.
    Io(String),
    /// Malformed model file: bad magic, unsupported format version,
    /// checksum mismatch, or a truncated/garbled section.
    Codec(String),
    /// A bounded queue refused new work; the caller should back off for
    /// roughly the hinted number of milliseconds and retry.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_ms: u64,
    },
}

impl std::fmt::Display for TsdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shape(msg) => write!(f, "shape error: {msg}"),
            Self::Label { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::Numerical(msg) => write!(f, "numerical error: {msg}"),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::Io(msg) => write!(f, "io error: {msg}"),
            Self::Codec(msg) => write!(f, "codec error: {msg}"),
            Self::Overloaded { retry_ms } => {
                write!(f, "overloaded: retry in {retry_ms}ms")
            }
        }
    }
}

impl std::error::Error for TsdaError {}

impl From<std::io::Error> for TsdaError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TsdaError::Label { label: 7, n_classes: 3 };
        assert_eq!(e.to_string(), "label 7 out of range for 3 classes");
        let p = TsdaError::Parse { line: 12, message: "bad float".into() };
        assert!(p.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TsdaError = io.into();
        assert!(matches!(e, TsdaError::Io(_)));
    }
}
