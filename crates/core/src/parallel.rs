//! The workspace-wide parallel compute layer.
//!
//! Every hot path in the workspace — GEMM row blocks, `Conv1d` batches,
//! ROCKET's kernel transform, DTW distance matrices, the experiment
//! grid — funnels through this module instead of hand-rolling threads.
//! Design rules:
//!
//! * **Determinism.** Work is split into contiguous index ranges and
//!   every unit writes a disjoint output slice; there are no
//!   atomics-based reductions and no work stealing. Results are
//!   therefore bit-identical for *any* thread count, which the
//!   determinism tests in `tsda-classify`/`tsda-neuro` assert.
//! * **One knob.** The worker count resolves, in order: an explicit
//!   [`ThreadLimit::set`] override, the `TSDA_THREADS` environment
//!   variable, then [`std::thread::available_parallelism`].
//! * **No oversubscription.** A pool call made from inside another pool
//!   worker runs serially on that worker; nesting (e.g. the bench grid
//!   parallelising cells whose classifiers parallelise batches) can
//!   never multiply thread counts.
//!
//! Threads are scoped ([`std::thread::scope`]), so borrowed data flows
//! in without `'static` bounds and panics propagate to the caller.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit global worker-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `TSDA_THREADS` parsed once at first use.
static ENV_LIMIT: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// True on threads spawned by a [`Pool`]; nested calls go serial.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The process-wide worker-count configuration.
///
/// ```
/// use tsda_core::parallel::ThreadLimit;
/// ThreadLimit::set(2);
/// assert_eq!(ThreadLimit::get(), 2);
/// ThreadLimit::clear();
/// ```
pub struct ThreadLimit;

impl ThreadLimit {
    /// Force the default worker count for all subsequent pool work
    /// (clamped to at least 1). Tests use this to pin thread counts.
    pub fn set(threads: usize) {
        OVERRIDE.store(threads.max(1), Ordering::SeqCst);
    }

    /// Remove an explicit override, falling back to `TSDA_THREADS` /
    /// available parallelism.
    pub fn clear() {
        OVERRIDE.store(0, Ordering::SeqCst);
    }

    /// The resolved default worker count.
    pub fn get() -> usize {
        let over = OVERRIDE.load(Ordering::SeqCst);
        if over != 0 {
            return over;
        }
        let env = ENV_LIMIT.get_or_init(|| {
            std::env::var("TSDA_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        });
        if let Some(n) = env {
            return *n;
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// The resolved default worker count (shorthand for [`ThreadLimit::get`]).
pub fn num_threads() -> usize {
    ThreadLimit::get()
}

/// A scoped worker pool with a fixed worker budget.
///
/// Pools are cheap value types — no threads live between calls; each
/// parallel method spawns scoped workers for its own duration.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// The shared pool: worker budget from [`ThreadLimit::get`].
    pub fn global() -> Pool {
        Pool { threads: 0 }
    }

    /// A pool with an explicit budget; `0` defers to the global limit.
    pub fn with_threads(threads: usize) -> Pool {
        Pool { threads }
    }

    /// The worker budget this pool would use right now (1 when called
    /// from inside another pool worker).
    pub fn threads(&self) -> usize {
        if IN_POOL_WORKER.with(Cell::get) {
            return 1;
        }
        if self.threads != 0 {
            self.threads
        } else {
            ThreadLimit::get()
        }
    }

    /// Run `f(chunk_index, chunk)` over `data.chunks_mut(chunk_size)`,
    /// chunks distributed contiguously across workers.
    ///
    /// Chunk indices match a serial `chunks_mut` enumeration, so output
    /// is independent of the worker count.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = data.len().div_ceil(chunk_size);
        let workers = self.threads().min(n_chunks);
        if workers <= 1 {
            for (i, c) in data.chunks_mut(chunk_size).enumerate() {
                f(i, c);
            }
            return;
        }
        let stride = n_chunks.div_ceil(workers) * chunk_size;
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let take = stride.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let start = first_chunk;
                first_chunk += head.len().div_ceil(chunk_size);
                scope.spawn(move || {
                    IN_POOL_WORKER.with(|w| w.set(true));
                    for (i, c) in head.chunks_mut(chunk_size).enumerate() {
                        f(start + i, c);
                    }
                });
            }
        });
    }

    /// Run `f(index, &mut item)` for every element, elements distributed
    /// contiguously across workers.
    pub fn par_for_each_indexed<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let workers = self.threads().max(1);
        let chunk = items.len().div_ceil(workers).max(1);
        self.par_chunks_mut(items, chunk, |chunk_idx, slice| {
            for (off, item) in slice.iter_mut().enumerate() {
                f(chunk_idx * chunk + off, item);
            }
        });
    }

    /// Collect `(0..n).map(f)` in index order, evaluated in parallel.
    pub fn par_map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        self.par_for_each_indexed(&mut slots, |i, slot| *slot = Some(f(i)));
        slots
            .into_iter()
            .map(|s| s.expect("pool worker filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_matches_serial_enumeration() {
        let mut serial: Vec<usize> = vec![0; 103];
        for (i, c) in serial.chunks_mut(10).enumerate() {
            for v in c.iter_mut() {
                *v = i;
            }
        }
        for threads in [1, 2, 5, 64] {
            let mut par = vec![0usize; 103];
            Pool::with_threads(threads).par_chunks_mut(&mut par, 10, |i, c| {
                for v in c.iter_mut() {
                    *v = i;
                }
            });
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_for_each_sees_every_index_once() {
        let mut items = vec![0usize; 1001];
        Pool::with_threads(7).par_for_each_indexed(&mut items, |i, v| *v = i * 3);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn par_map_preserves_order() {
        let out = Pool::with_threads(4).par_map_indexed(57, |i| i * i);
        assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        Pool::global().par_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks"));
        assert!(Pool::with_threads(8).par_map_indexed(0, |_| 0u8).is_empty());
        let one = Pool::with_threads(8).par_map_indexed(1, |i| i + 1);
        assert_eq!(one, vec![1]);
    }

    #[test]
    fn nested_calls_degrade_to_serial_without_deadlock() {
        let mut outer = vec![0usize; 16];
        Pool::with_threads(4).par_for_each_indexed(&mut outer, |i, v| {
            // Inside a worker the pool reports a single thread and the
            // nested call runs inline.
            assert_eq!(Pool::global().threads(), 1);
            let inner = Pool::with_threads(4).par_map_indexed(8, |j| j + i);
            *v = inner.iter().sum();
        });
        assert_eq!(outer[0], (0..8).sum::<usize>());
    }

    #[test]
    fn thread_limit_override_wins() {
        ThreadLimit::set(3);
        assert_eq!(ThreadLimit::get(), 3);
        assert_eq!(Pool::global().threads(), 3);
        assert_eq!(Pool::with_threads(2).threads(), 2);
        ThreadLimit::clear();
        assert!(ThreadLimit::get() >= 1);
    }
}
