//! Order-pinned floating-point reductions.
//!
//! The paper's tables are averages of accuracies that are themselves
//! produced by long float reductions; the workspace promises those
//! numbers are *bit-identical* across thread counts and refactors. A
//! plain `iter().sum()` keeps that promise only as long as nobody
//! reorders the loop — which is exactly the kind of silent change the
//! analyzer's R4 rule guards against. Result-producing reductions route
//! through [`sum_stable`] instead: Kahan (compensated) summation in a
//! fixed left-to-right order, so the result is a function of the value
//! *sequence* alone and carries an error bound of `O(1)` ulps instead
//! of the naive `O(n)`.
//!
//! Determinism first, accuracy second: for the same input order,
//! compensated and naive summation are each bit-stable — the reason R4
//! standardises on one helper is so there is exactly one accumulation
//! order to reason about (and to re-pin goldens against) workspace-wide.

/// Float scalar that [`sum_stable`] can reduce. Implemented for `f32`
/// and `f64`; the arithmetic is performed in the type itself, so an
/// `f32` sum stays comparable with a hand-written `f32` loop.
pub trait StableFloat: Copy {
    /// Additive identity.
    const ZERO: Self;
    /// `self + other`.
    fn add(self, other: Self) -> Self;
    /// `self - other`.
    fn sub(self, other: Self) -> Self;
}

impl StableFloat for f32 {
    const ZERO: Self = 0.0;
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn sub(self, other: Self) -> Self {
        self - other
    }
}

impl StableFloat for f64 {
    const ZERO: Self = 0.0;
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn sub(self, other: Self) -> Self {
        self - other
    }
}

/// Kahan-compensated sum of `values`, strictly left to right.
///
/// Bit-deterministic for a given input sequence and within ~1 ulp of
/// the exact sum for well-scaled inputs. Accepts anything iterable over
/// `f32`/`f64` values (`sum_stable(xs.iter().copied())`).
pub fn sum_stable<T, I>(values: I) -> T
where
    T: StableFloat,
    I: IntoIterator<Item = T>,
{
    let mut sum = T::ZERO;
    let mut comp = T::ZERO; // running compensation (lost low-order bits)
    for v in values {
        let y = v.sub(comp);
        let t = sum.add(y);
        comp = t.sub(sum).sub(y);
        sum = t;
    }
    sum
}

/// [`sum_stable`] divided by the count; 0 for an empty input.
pub fn mean_stable<T, I>(values: I) -> f64
where
    T: StableFloat + Into<f64>,
    I: IntoIterator<Item = T>,
{
    let mut n = 0usize;
    let sum = sum_stable(values.into_iter().inspect(|_| n += 1));
    if n == 0 {
        0.0
    } else {
        sum.into() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_sum_on_benign_inputs() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let naive: f64 = xs.iter().sum();
        assert_eq!(sum_stable(xs.iter().copied()), naive);
    }

    #[test]
    fn compensates_catastrophic_cancellation() {
        // 1.0 is far below f64 resolution at 1e16: the naive running
        // sum drops every one of the 1000 increments; Kahan keeps them.
        let mut xs = vec![1e16];
        xs.extend(std::iter::repeat_n(1.0, 1000));
        xs.push(-1e16);
        let naive: f64 = xs.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(sum_stable(xs.iter().copied()), 1000.0);
    }

    #[test]
    fn f32_sum_runs_in_f32() {
        let xs: Vec<f32> = vec![0.1, 0.2, 0.3];
        let s: f32 = sum_stable(xs.iter().copied());
        let naive: f32 = xs.iter().sum();
        assert!((s - naive).abs() <= f32::EPSILON);
    }

    #[test]
    fn deterministic_across_repeated_calls() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 2654435761_usize) % 1009) as f64 / 7.0).collect();
        let a = sum_stable(xs.iter().copied());
        let b = sum_stable(xs.iter().copied());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(sum_stable(std::iter::empty::<f64>()), 0.0);
        assert_eq!(sum_stable([3.5f64]), 3.5);
        assert_eq!(mean_stable(std::iter::empty::<f64>()), 0.0);
        assert_eq!(mean_stable([1.0f64, 2.0]), 1.5);
    }
}
