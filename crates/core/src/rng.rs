//! Deterministic RNG plumbing.
//!
//! Every experiment in the harness is seeded so that a table can be
//! regenerated bit-for-bit. Components derive sub-seeds from a master
//! seed with [`derive_seed`] (SplitMix64 over a label hash) so that
//! adding a new random consumer never perturbs the streams of existing
//! ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded standard RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a stable sub-seed from `(master, label)`.
///
/// Uses FxHash-style mixing of the label bytes followed by a SplitMix64
/// finaliser; two different labels virtually never collide and the same
/// pair always yields the same seed on every platform.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h = master ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        h = h.rotate_left(23);
    }
    splitmix64(h)
}

/// Derive the seed for the `index`-th event of a labelled stream.
///
/// Fault-injection plans and other per-event deciders need a value that
/// depends only on `(master, label, index)` — never on thread timing —
/// so the n-th decision at a site is identical across runs even though
/// threads interleave differently. Built from [`derive_seed`] plus a
/// SplitMix64 finalise over the index.
pub fn derive_stream(master: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, label) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// SplitMix64 finaliser.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sample a standard normal via Box-Muller using any `Rng`.
///
/// `rand` 0.8's `StandardNormal` lives in `rand_distr`, which is not in
/// the offline crate set; this avoids the dependency.
pub fn standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Sample `N(mean, std²)`.
pub fn normal<R: rand::Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(1, "smote"), derive_seed(1, "smote"));
        assert_ne!(derive_seed(1, "smote"), derive_seed(1, "noise"));
        assert_ne!(derive_seed(1, "smote"), derive_seed(2, "smote"));
    }

    #[test]
    fn derive_stream_is_deterministic_and_index_sensitive() {
        assert_eq!(derive_stream(7, "drop", 3), derive_stream(7, "drop", 3));
        assert_ne!(derive_stream(7, "drop", 3), derive_stream(7, "drop", 4));
        assert_ne!(derive_stream(7, "drop", 3), derive_stream(7, "stall", 3));
        assert_ne!(derive_stream(7, "drop", 3), derive_stream(8, "drop", 3));
        // Consecutive indices decorrelate: low bits differ across a run
        // of indices (a plain XOR without the finaliser would not).
        let lows: std::collections::BTreeSet<u64> =
            (0..32).map(|i| derive_stream(1, "s", i) % 1000).collect();
        assert!(lows.len() > 16, "low bits collapse: {lows:?}");
    }

    #[test]
    fn seeded_rng_reproduces_stream() {
        let a: Vec<u32> = {
            let mut r = seeded(99);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(99);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut r = seeded(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
    }
}
