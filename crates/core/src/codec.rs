//! Versioned, checksummed binary container for fitted-model state.
//!
//! Every model the workspace can persist (ROCKET, MiniRocket, the ridge
//! classifier, InceptionTime) serialises into the same envelope so the
//! serving layer can sniff a file before committing to a decoder:
//!
//! ```text
//! magic  b"TSDA"                      4 bytes
//! version u32 LE                      format revision (currently 1)
//! kind    string                      model kind tag, e.g. "rocket"
//! n_sections u32 LE
//! per section: name string, payload length u64 LE
//! payloads, concatenated in table order
//! crc32  u32 LE                       IEEE CRC-32 of every prior byte
//! ```
//!
//! A *string* is a u32 LE byte length followed by UTF-8 bytes. All
//! floating-point payloads are stored as raw IEEE-754 bit patterns
//! ([`f64::to_le_bytes`]), so a save → load round trip is bit-exact and
//! loaded models predict identically to the fitted originals.
//!
//! Decoding never panics on malformed input: wrong magic, an unknown
//! version, a checksum mismatch, or a truncated buffer all surface as
//! [`TsdaError::Codec`].
//!
//! # Example
//! ```
//! use tsda_core::codec::{CodecReader, CodecWriter};
//!
//! let mut w = CodecWriter::new("demo");
//! w.section("weights", vec![1, 2, 3]);
//! let bytes = w.finish();
//! let r = CodecReader::parse(&bytes).unwrap();
//! assert_eq!(r.kind(), "demo");
//! assert_eq!(r.section("weights").unwrap(), &[1, 2, 3]);
//! ```

use crate::error::TsdaError;
use std::path::Path;

/// File magic: the first four bytes of every model file.
pub const MAGIC: [u8; 4] = *b"TSDA";

/// Current container format version.
pub const VERSION: u32 = 1;

/// Upper bound on the section count a container header may declare. A
/// corrupt or hostile header must not size an allocation; real models
/// use single-digit section counts.
pub const MAX_SECTIONS: usize = 1 << 20;

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn codec_err(msg: impl Into<String>) -> TsdaError {
    TsdaError::Codec(msg.into())
}

/// Builds one container file: a kind tag plus named binary sections.
pub struct CodecWriter {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl CodecWriter {
    /// New container for the given model kind tag.
    pub fn new(kind: &str) -> Self {
        Self { kind: kind.to_string(), sections: Vec::new() }
    }

    /// Append a named section. Section order is preserved; names must be
    /// unique (readers return the first match).
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push((name.to_string(), payload));
    }

    /// Serialise the container, appending the trailing checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        write_string(&mut out, &self.kind);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            write_string(&mut out, name);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Serialise and write to a file.
    pub fn write_file(self, path: &Path) -> Result<(), TsdaError> {
        std::fs::write(path, self.finish())?;
        Ok(())
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A parsed, checksum-verified container.
#[derive(Debug)]
pub struct CodecReader {
    kind: String,
    sections: Vec<(String, Vec<u8>)>,
}

impl CodecReader {
    /// Parse and verify a serialised container.
    pub fn parse(bytes: &[u8]) -> Result<Self, TsdaError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(codec_err(format!("file too short ({} bytes)", bytes.len())));
        }
        if bytes[..4] != MAGIC {
            return Err(codec_err("bad magic: not a TSDA model file"));
        }
        // Checksum covers everything up to the trailing 4 bytes.
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(
            crc_bytes
                .try_into()
                .map_err(|_| codec_err("truncated checksum trailer"))?,
        );
        let actual = crc32(body);
        if stored != actual {
            return Err(codec_err(format!(
                "checksum mismatch (stored {stored:#010x}, computed {actual:#010x}): file is corrupted"
            )));
        }
        let mut r = ByteReader::new(&body[4..]);
        let version = r.u32()?;
        if version != VERSION {
            return Err(codec_err(format!(
                "unsupported format version {version} (this build reads version {VERSION})"
            )));
        }
        let kind = r.string()?;
        let n_sections = usize::try_from(r.u32()?)
            .map_err(|_| codec_err("section count overflows usize"))?;
        if n_sections > MAX_SECTIONS {
            return Err(codec_err(format!("implausible section count {n_sections}")));
        }
        let mut table = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = r.string()?;
            let len = r.usize()?;
            table.push((name, len));
        }
        let mut sections = Vec::with_capacity(n_sections);
        for (name, len) in table {
            let payload = r.bytes(len)?;
            sections.push((name, payload.to_vec()));
        }
        if r.remaining() != 0 {
            return Err(codec_err(format!("{} trailing bytes after sections", r.remaining())));
        }
        Ok(Self { kind, sections })
    }

    /// Read and parse a container file.
    pub fn read_file(path: &Path) -> Result<Self, TsdaError> {
        let bytes = std::fs::read(path)?;
        Self::parse(&bytes)
    }

    /// The model kind tag the file was written with.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Borrow a section payload by name.
    pub fn section(&self, name: &str) -> Result<&[u8], TsdaError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| codec_err(format!("missing section {name:?}")))
    }

    /// Error unless the kind tag matches `expected`.
    pub fn expect_kind(&self, expected: &str) -> Result<(), TsdaError> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(codec_err(format!(
                "model kind mismatch: file holds {:?}, expected {expected:?}",
                self.kind
            )))
        }
    }
}

/// Little-endian primitive encoder for section payloads.
#[derive(Default)]
pub struct ByteWriter(Vec<u8>);

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resume writing at the end of an existing buffer, so encoders can
    /// reuse one allocation across messages (pair with
    /// [`Self::into_bytes`] to hand the buffer back).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self(buf)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consume into the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Write a u32.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a u64.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a usize as u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an f32 bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an f64 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        write_string(&mut self.0, s);
    }

    /// Write a length-prefixed f64 slice.
    pub fn f64_slice(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Write a length-prefixed f32 slice.
    pub fn f32_slice(&mut self, vs: &[f32]) {
        self.usize(vs.len());
        for &v in vs {
            self.f32(v);
        }
    }

    /// Write a length-prefixed usize slice (as u64s).
    pub fn usize_slice(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }
}

/// Bounds-checked little-endian primitive decoder.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over a payload slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Error unless every byte was consumed.
    pub fn finish(&self) -> Result<(), TsdaError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(codec_err(format!("{} unread bytes at end of section", self.remaining())))
        }
    }

    /// Borrow the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], TsdaError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| codec_err(format!("truncated: wanted {n} bytes, have {}", self.remaining())))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read exactly `N` bytes as an array. `bytes(N)` already
    /// guarantees the length, so the conversion error is unreachable,
    /// but mapping it keeps the reader panic-free on any input.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], TsdaError> {
        self.bytes(N)?
            .try_into()
            .map_err(|_| codec_err("internal: short slice from bytes()"))
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, TsdaError> {
        Ok(self.array::<1>()?[0])
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32, TsdaError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64, TsdaError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Read a u64 into a usize.
    pub fn usize(&mut self) -> Result<usize, TsdaError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| codec_err(format!("value {v} overflows usize")))
    }

    /// Read an f32 bit pattern.
    pub fn f32(&mut self) -> Result<f32, TsdaError> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    /// Read an f64 bit pattern.
    pub fn f64(&mut self) -> Result<f64, TsdaError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, TsdaError> {
        let len = usize::try_from(self.u32()?)
            .map_err(|_| codec_err("string length overflows usize"))?;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| codec_err("invalid UTF-8 in string"))
    }

    /// Read a length-prefixed f64 slice.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, TsdaError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed f32 slice.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, TsdaError> {
        let n = self.checked_len(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Read a length-prefixed usize slice.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, TsdaError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    /// Read a slice length and reject lengths that cannot fit in the
    /// remaining bytes (guards `Vec::with_capacity` against hostile
    /// headers on corrupted files).
    fn checked_len(&mut self, item_bytes: usize) -> Result<usize, TsdaError> {
        let n = self.usize()?;
        if n.saturating_mul(item_bytes) > self.remaining() {
            return Err(codec_err(format!(
                "declared length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = CodecWriter::new("test-model");
        let mut b = ByteWriter::new();
        b.usize(3);
        b.f64(1.5);
        b.f64_slice(&[0.25, -2.0, f64::NAN]);
        b.string("hello");
        w.section("alpha", b.into_bytes());
        w.section("beta", vec![9, 8, 7]);
        w.finish()
    }

    #[test]
    fn round_trip_sections_and_primitives() {
        let bytes = sample();
        let r = CodecReader::parse(&bytes).unwrap();
        assert_eq!(r.kind(), "test-model");
        assert_eq!(r.section_names().collect::<Vec<_>>(), vec!["alpha", "beta"]);
        let mut b = ByteReader::new(r.section("alpha").unwrap());
        assert_eq!(b.usize().unwrap(), 3);
        assert_eq!(b.f64().unwrap(), 1.5);
        let vs = b.f64_vec().unwrap();
        assert_eq!(vs[..2], [0.25, -2.0]);
        assert!(vs[2].is_nan()); // NaN bit pattern survives
        assert_eq!(b.string().unwrap(), "hello");
        b.finish().unwrap();
        assert_eq!(r.section("beta").unwrap(), &[9, 8, 7]);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                CodecReader::parse(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the checksum so only the version is wrong.
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let err = CodecReader::parse(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            assert!(CodecReader::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(CodecReader::parse(b"not a model file at all").is_err());
        assert!(CodecReader::parse(&[]).is_err());
    }

    #[test]
    fn missing_section_and_kind_mismatch() {
        let r = CodecReader::parse(&sample()).unwrap();
        assert!(r.section("gamma").is_err());
        assert!(r.expect_kind("other").is_err());
        assert!(r.expect_kind("test-model").is_ok());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
