//! The paper's augmentation protocol (§IV-C): synthesize minority-class
//! series until the training set is perfectly balanced.

use crate::Augmenter;
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::{Dataset, Mts, TsdaError};

/// Augment `ds` with `aug` until every class has as many series as the
/// current majority class. The original series are kept verbatim;
/// synthetic ones are appended.
///
/// If a technique fails on a class (e.g. SMOTE on a singleton class),
/// the driver falls back to random oversampling with replacement for that
/// class, mirroring how the reference implementations degrade.
pub fn augment_to_balance(
    ds: &Dataset,
    aug: &dyn Augmenter,
    rng: &mut StdRng,
) -> Result<Dataset, TsdaError> {
    let counts = ds.class_counts();
    let target = counts.iter().copied().max().unwrap_or(0);
    let mut out = ds.clone();
    for (class, &count) in counts.iter().enumerate() {
        if count == 0 || count >= target {
            continue;
        }
        let need = target - count;
        let synth = match aug.synthesize(ds, class, need, rng) {
            Ok(s) => s,
            Err(_) => random_oversample(ds, class, need, rng)?,
        };
        if synth.len() != need {
            return Err(TsdaError::InvalidParameter(format!(
                "{} produced {} series for class {class}, expected {need}",
                aug.name(),
                synth.len()
            )));
        }
        for s in synth {
            out.push(s, class);
        }
    }
    Ok(out)
}

/// Augment `ds` so every class reaches `target_per_class` series (classes
/// already at or above the target are untouched). Used by the oversized
/// augmentation ablations.
pub fn augment_to_target(
    ds: &Dataset,
    aug: &dyn Augmenter,
    target_per_class: usize,
    rng: &mut StdRng,
) -> Result<Dataset, TsdaError> {
    let counts = ds.class_counts();
    let mut out = ds.clone();
    for (class, &count) in counts.iter().enumerate() {
        if count == 0 || count >= target_per_class {
            continue;
        }
        let need = target_per_class - count;
        let synth = match aug.synthesize(ds, class, need, rng) {
            Ok(s) => s,
            Err(_) => random_oversample(ds, class, need, rng)?,
        };
        for s in synth {
            out.push(s, class);
        }
    }
    Ok(out)
}

/// Duplicate random members of `class` with replacement.
pub fn random_oversample(
    ds: &Dataset,
    class: usize,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<Mts>, TsdaError> {
    let members = ds.indices_of_class(class);
    if members.is_empty() {
        return Err(TsdaError::InvalidParameter(format!(
            "class {class} empty: cannot oversample"
        )));
    }
    Ok((0..count)
        .map(|_| ds.series()[members[rng.gen_range(0..members.len())]].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::time::NoiseInjection;
    use tsda_core::rng::seeded;

    fn imbalanced() -> Dataset {
        let mut ds = Dataset::empty(3);
        for i in 0..9 {
            ds.push(Mts::constant(2, 8, i as f64), 0);
        }
        for i in 0..4 {
            ds.push(Mts::constant(2, 8, 100.0 + i as f64), 1);
        }
        ds.push(Mts::constant(2, 8, -50.0), 2);
        ds
    }

    #[test]
    fn balancing_equalises_class_counts() {
        let ds = imbalanced();
        let out = augment_to_balance(&ds, &NoiseInjection::level(1.0), &mut seeded(1)).unwrap();
        assert_eq!(out.class_counts(), vec![9, 9, 9]);
        // Originals preserved at the front.
        assert_eq!(out.series()[0], ds.series()[0]);
        assert_eq!(out.len(), 27);
    }

    #[test]
    fn already_balanced_dataset_is_unchanged() {
        let mut ds = Dataset::empty(2);
        for c in 0..2 {
            for i in 0..3 {
                ds.push(Mts::constant(1, 4, (c * 10 + i) as f64), c);
            }
        }
        let out = augment_to_balance(&ds, &NoiseInjection::level(1.0), &mut seeded(2)).unwrap();
        assert_eq!(out.len(), ds.len());
    }

    #[test]
    fn target_overshoot_works() {
        let ds = imbalanced();
        let out = augment_to_target(&ds, &NoiseInjection::level(1.0), 12, &mut seeded(3)).unwrap();
        assert_eq!(out.class_counts(), vec![12, 12, 12]);
    }

    #[test]
    fn random_oversample_duplicates_members() {
        let ds = imbalanced();
        let picks = random_oversample(&ds, 2, 5, &mut seeded(4)).unwrap();
        assert_eq!(picks.len(), 5);
        for p in &picks {
            assert_eq!(p.value(0, 0), -50.0);
        }
    }

    #[test]
    fn empty_class_is_skipped_not_fatal() {
        let mut ds = Dataset::empty(2);
        for i in 0..3 {
            ds.push(Mts::constant(1, 4, i as f64), 0);
        }
        // Class 1 has no members; balancing should leave it empty rather
        // than erroring (there is nothing to synthesize from).
        let out = augment_to_balance(&ds, &NoiseInjection::level(1.0), &mut seeded(5)).unwrap();
        assert_eq!(out.class_counts(), vec![3, 0]);
    }
}
