//! Time series data augmentation — the paper's taxonomy, implemented.
//!
//! The paper (Ilbert et al., ICDE 2024) organises augmentation techniques
//! into three classes (its Figure 1), all of which this crate implements:
//!
//! * **basic** — time-domain transformations ([`basic::time`]),
//!   frequency-domain perturbations ([`basic::frequency`]), oversampling
//!   ([`oversample`]: SMOTE and friends), and decomposition-based
//!   recombination ([`decompose_aug`]);
//! * **generative** — statistical samplers
//!   ([`generative::statistical`]), probabilistic models
//!   ([`generative::probabilistic`]: Gaussian HMM, autoregressive
//!   factorisation, a small DDPM), and the neural TimeGAN
//!   ([`generative::timegan`]);
//! * **preserving** — label-preserving range noise ([`preserve::label`])
//!   and structure-preserving oversampling ([`preserve::structure`]:
//!   OHIT, INOS).
//!
//! Every technique implements [`Augmenter`]; the paper's protocol —
//! *augment each minority class until the training set is perfectly
//! balanced* (§IV-C) — is the technique-agnostic driver in [`balance`].
//!
//! # Example
//! ```
//! use tsda_augment::{Augmenter, balance::augment_to_balance};
//! use tsda_augment::basic::time::NoiseInjection;
//! use tsda_core::{Dataset, Mts};
//! use tsda_core::rng::seeded;
//!
//! let mut ds = Dataset::empty(2);
//! for i in 0..8 { ds.push(Mts::constant(1, 16, i as f64), 0); }
//! for i in 0..3 { ds.push(Mts::constant(1, 16, -(i as f64)), 1); }
//!
//! let noise = NoiseInjection::level(1.0); // the paper's noise_1
//! let balanced = augment_to_balance(&ds, &noise, &mut seeded(7)).unwrap();
//! assert_eq!(balanced.class_counts(), vec![8, 8]);
//! ```

#![forbid(unsafe_code)]

pub mod averaging;
pub mod balance;
pub mod basic;
pub mod declarative;
pub mod decompose_aug;
pub mod generative;
pub mod oversample;
pub mod pipeline;
pub mod preserve;
pub mod taxonomy;

use rand::rngs::StdRng;
use tsda_core::{Dataset, Label, Mts, TsdaError};

/// A data augmentation technique.
///
/// Given a training dataset, synthesize `count` new series belonging to
/// `class`. The balancing driver decides the counts; techniques decide
/// how the samples are produced.
pub trait Augmenter {
    /// Stable technique name (used in reports and seed derivation).
    fn name(&self) -> &'static str;

    /// Generate `count` synthetic members of `class`.
    ///
    /// Implementations must not mutate the dataset and must be
    /// deterministic given `rng`. An error is returned when the class is
    /// too small for the technique's requirements (the driver falls back
    /// to random oversampling in that case).
    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError>;
}

/// A per-series transformation (noise, warping, masking, …).
///
/// Implementors get [`Augmenter`] for free through the blanket impl:
/// the driver picks a random member of the class and transforms it,
/// repeating until `count` samples exist — exactly the paper's protocol
/// for noise injection.
pub trait SeriesTransform {
    /// Stable technique name.
    fn name(&self) -> &'static str;

    /// Produce a transformed variant of `series`.
    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts;
}

impl<T: SeriesTransform> Augmenter for T {
    fn name(&self) -> &'static str {
        SeriesTransform::name(self)
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        use rand::Rng;
        let members = ds.indices_of_class(class);
        if members.is_empty() {
            return Err(TsdaError::InvalidParameter(format!(
                "class {class} has no members to transform"
            )));
        }
        Ok((0..count)
            .map(|_| {
                let idx = members[rng.gen_range(0..members.len())];
                self.transform(&ds.series()[idx], rng)
            })
            .collect())
    }
}
