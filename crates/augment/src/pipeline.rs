//! Technique composition — the paper's future-work direction: "a
//! conjunctive application of multiple time series augmentation methods
//! could lead to further improvements" (§IV-F), mirroring computer
//! vision pipelines like CutMix.
//!
//! Two composition modes:
//! * [`Chain`] applies per-series transforms in sequence (e.g. time
//!   warp, then noise — one sample passes through every stage);
//! * [`RandomChoice`] draws a different technique from a pool for every
//!   synthetic sample, mixing taxonomy branches inside a single
//!   balanced dataset.

use crate::{Augmenter, SeriesTransform};
use rand::rngs::StdRng;
use rand::Rng;
use tsda_core::{Dataset, Label, Mts, TsdaError};

/// Sequential composition of per-series transforms.
pub struct Chain {
    stages: Vec<Box<dyn SeriesTransform>>,
}

impl Chain {
    /// Compose the given stages (applied front to back).
    ///
    /// Errors when `stages` is empty — a chain with no stages would
    /// silently return its input unchanged.
    pub fn new(stages: Vec<Box<dyn SeriesTransform>>) -> Result<Self, TsdaError> {
        if stages.is_empty() {
            return Err(TsdaError::InvalidParameter(
                "empty augmentation chain".into(),
            ));
        }
        Ok(Self { stages })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl SeriesTransform for Chain {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn transform(&self, series: &Mts, rng: &mut StdRng) -> Mts {
        let mut cur = series.clone();
        for stage in &self.stages {
            cur = stage.transform(&cur, rng);
        }
        cur
    }
}

/// Per-sample random choice from a pool of augmenters (possibly from
/// different taxonomy branches), with optional weights.
pub struct RandomChoice {
    pool: Vec<(f64, Box<dyn Augmenter>)>,
}

impl RandomChoice {
    /// Uniform pool.
    ///
    /// # Panics
    /// Panics when `pool` is empty.
    pub fn uniform(pool: Vec<Box<dyn Augmenter>>) -> Self {
        assert!(!pool.is_empty(), "empty augmentation pool");
        Self { pool: pool.into_iter().map(|a| (1.0, a)).collect() }
    }

    /// Weighted pool (weights need not be normalised).
    ///
    /// # Panics
    /// Panics when `pool` is empty or any weight is non-positive.
    pub fn weighted(pool: Vec<(f64, Box<dyn Augmenter>)>) -> Self {
        assert!(!pool.is_empty(), "empty augmentation pool");
        assert!(pool.iter().all(|(w, _)| *w > 0.0), "non-positive pool weight");
        Self { pool }
    }
}

impl Augmenter for RandomChoice {
    fn name(&self) -> &'static str {
        "random_choice"
    }

    fn synthesize(
        &self,
        ds: &Dataset,
        class: Label,
        count: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Mts>, TsdaError> {
        let total: f64 = tsda_core::math::sum_stable(self.pool.iter().map(|(w, _)| *w));
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let mut u: f64 = rng.gen::<f64>() * total;
            let mut chosen = &self.pool[self.pool.len() - 1].1;
            for (w, aug) in &self.pool {
                if u < *w {
                    chosen = aug;
                    break;
                }
                u -= w;
            }
            match chosen.synthesize(ds, class, 1, rng) {
                Ok(mut s) => out.append(&mut s),
                Err(e) => {
                    // A pool member may be infeasible for this class
                    // (e.g. SMOTE on a singleton); skip it unless every
                    // member fails.
                    let feasible = self.pool.iter().any(|(_, a)| {
                        // Cheap feasibility probe: one attempt each.
                        a.synthesize(ds, class, 1, rng).is_ok()
                    });
                    if !feasible {
                        return Err(e);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::time::{NoiseInjection, Scaling, TimeWarp};
    use crate::oversample::Smote;
    use tsda_core::rng::seeded;

    fn toy() -> Dataset {
        let mut ds = Dataset::empty(2);
        for i in 0..6 {
            ds.push(
                Mts::from_dims(vec![(0..16).map(|t| (t + i) as f64).collect()]),
                0,
            );
        }
        for i in 0..3 {
            ds.push(
                Mts::from_dims(vec![(0..16).map(|t| -((t + i) as f64)).collect()]),
                1,
            );
        }
        ds
    }

    #[test]
    fn chain_applies_all_stages() {
        let chain = Chain::new(vec![
            Box::new(TimeWarp::default()),
            Box::new(NoiseInjection::level(1.0)),
            Box::new(Scaling::default()),
        ])
        .unwrap();
        assert_eq!(chain.len(), 3);
        let ds = toy();
        let s = &ds.series()[0];
        let out = chain.transform(s, &mut seeded(1));
        assert_eq!(out.shape(), s.shape());
        assert_ne!(&out, s);
    }

    #[test]
    fn chain_balances_through_blanket_impl() {
        let chain = Chain::new(vec![
            Box::new(NoiseInjection::level(1.0)),
            Box::new(Scaling::default()),
        ])
        .unwrap();
        let ds = toy();
        let out = crate::balance::augment_to_balance(&ds, &chain, &mut seeded(2)).unwrap();
        assert_eq!(out.class_counts(), vec![6, 6]);
    }

    #[test]
    fn random_choice_mixes_branches() {
        let pool = RandomChoice::uniform(vec![
            Box::new(NoiseInjection::level(1.0)),
            Box::new(Smote::default()),
        ]);
        let ds = toy();
        let out = pool.synthesize(&ds, 1, 20, &mut seeded(3)).unwrap();
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|s| s.as_flat().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn random_choice_skips_infeasible_members() {
        // Singleton class: SMOTE is infeasible, noise is not; the pool
        // must still produce all samples.
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 8, 1.0), 0);
        let pool = RandomChoice::weighted(vec![
            (1.0, Box::new(Smote::default()) as Box<dyn Augmenter>),
            (1.0, Box::new(NoiseInjection::level(1.0))),
        ]);
        let out = pool.synthesize(&ds, 0, 10, &mut seeded(4)).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn random_choice_errors_when_nothing_is_feasible() {
        let mut ds = Dataset::empty(1);
        ds.push(Mts::constant(1, 8, 1.0), 0);
        let pool = RandomChoice::uniform(vec![Box::new(Smote::default()) as Box<dyn Augmenter>]);
        assert!(pool.synthesize(&ds, 0, 3, &mut seeded(5)).is_err());
    }

    #[test]
    fn empty_chain_is_rejected() {
        let chain = Chain::new(vec![]);
        assert!(matches!(chain, Err(TsdaError::InvalidParameter(_))));
    }
}
